"""SQLJ profiles (Part 0 binary portability layer).

A *profile* is the serialized description of every SQL operation a
translated program performs: one :class:`~repro.profiles.model.EntryInfo`
per ``#sql`` clause, grouped per connection-context type, written next to
the generated host code as ``<Program>_SJProfile<N>.ser``.

At deployment time a vendor *customizer* installs
:class:`~repro.profiles.customization.Customization` objects into the
profile — rewriting SQL into the vendor dialect and optionally
pre-compiling plans.  At run time a
:class:`~repro.profiles.customization.ConnectedProfile` binds the profile
to a connection and yields
:class:`~repro.profiles.customization.RTStatement` objects that execute
each entry, through the best customization that accepts the connection
(falling back to the default JDBC-style dynamic path).
"""

from repro.profiles.customization import (
    ConnectedProfile,
    Customization,
    DefaultCustomization,
    DialectCustomization,
    RTStatement,
)
from repro.profiles.customizer import customize_profile, customize_pjar
from repro.profiles.model import EntryInfo, Profile, ProfileData, TypeInfo
from repro.profiles.pjar import build_pjar, read_pjar
from repro.profiles.serialization import load_profile, save_profile

__all__ = [
    "TypeInfo",
    "EntryInfo",
    "ProfileData",
    "Profile",
    "Customization",
    "DefaultCustomization",
    "DialectCustomization",
    "ConnectedProfile",
    "RTStatement",
    "save_profile",
    "load_profile",
    "customize_profile",
    "customize_pjar",
    "build_pjar",
    "read_pjar",
]
