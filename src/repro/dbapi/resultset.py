"""ResultSet: cursor over a materialised rowset.

Mirrors ``java.sql.ResultSet``: ``next()`` advances (returning False at
end), ``get_xxx`` accessors take a 1-based column index or a column name,
``was_null()`` reports whether the last value read was SQL NULL, and
``get_object`` returns Part 2 objects by value ("this just works" — the
paper's objects-by-value slide).
"""

from __future__ import annotations

import datetime
import decimal
from typing import Any, Iterator, List, Optional, Union

from repro import errors
from repro.engine.database import StatementResult
from repro.sqltypes import typecodes

__all__ = ["ResultSet", "ResultSetMetaData"]


class ResultSetMetaData:
    """Column metadata mirroring ``java.sql.ResultSetMetaData``."""

    def __init__(self, result: StatementResult) -> None:
        self._result = result

    def get_column_count(self) -> int:
        return len(self._result.shape) if self._result.shape else 0

    def _column(self, index: int):
        shape = self._result.shape
        if shape is None or not 1 <= index <= len(shape):
            raise errors.DataError(f"column index {index} out of range")
        return shape.columns[index - 1]

    def get_column_name(self, index: int) -> str:
        return self._column(index).name

    def get_column_type(self, index: int) -> int:
        descriptor = self._column(index).descriptor
        if descriptor is None:
            return typecodes.OTHER
        return descriptor.type_code

    def get_column_type_name(self, index: int) -> str:
        descriptor = self._column(index).descriptor
        if descriptor is None:
            return "UNKNOWN"
        return descriptor.sql_spelling()


class ResultSet:
    """Forward-only cursor over a rowset result."""

    def __init__(self, result: StatementResult, statement: Any = None):
        if not result.is_rowset:
            raise errors.DataError("statement did not produce a result set")
        self._result = result
        self._statement = statement
        self._position = -1
        self._was_null = False
        self._closed = False
        self._names = {
            column.name: index + 1
            for index, column in enumerate(
                result.shape.columns if result.shape else []
            )
        }

    # ------------------------------------------------------------------
    # cursor movement
    # ------------------------------------------------------------------
    def next(self) -> bool:
        """Advance to the next row; False once the set is exhausted."""
        self._check_open()
        if self._position + 1 >= len(self._result.rows):
            self._position = len(self._result.rows)
            return False
        self._position += 1
        return True

    # -- JDBC 2.0 scrollable-cursor movement ---------------------------
    def previous(self) -> bool:
        """Move back one row; False when before the first row."""
        self._check_open()
        if self._position <= 0:
            self._position = -1
            return False
        self._position -= 1
        return True

    def first(self) -> bool:
        """Position on the first row; False for an empty set."""
        self._check_open()
        if not self._result.rows:
            return False
        self._position = 0
        return True

    def last(self) -> bool:
        """Position on the last row; False for an empty set."""
        self._check_open()
        if not self._result.rows:
            return False
        self._position = len(self._result.rows) - 1
        return True

    def before_first(self) -> None:
        """Reset the cursor to before the first row."""
        self._check_open()
        self._position = -1

    def after_last(self) -> None:
        self._check_open()
        self._position = len(self._result.rows)

    def absolute(self, row: int) -> bool:
        """Move to row ``row`` (1-based; negative counts from the end,
        JDBC style).  False when the target is outside the set."""
        self._check_open()
        count = len(self._result.rows)
        if row == 0:
            self._position = -1
            return False
        index = row - 1 if row > 0 else count + row
        if 0 <= index < count:
            self._position = index
            return True
        self._position = -1 if row < 0 else count
        return False

    def relative(self, offset: int) -> bool:
        """Move ``offset`` rows from the current position."""
        self._check_open()
        count = len(self._result.rows)
        index = self._position + offset
        if 0 <= index < count:
            self._position = index
            return True
        self._position = -1 if index < 0 else count
        return False

    def get_row(self) -> int:
        """1-based current row number; 0 when not on a row."""
        if 0 <= self._position < len(self._result.rows):
            return self._position + 1
        return 0

    def is_before_first(self) -> bool:
        return self._position < 0 and bool(self._result.rows)

    def is_after_last(self) -> bool:
        return self._position >= len(self._result.rows) and \
            bool(self._result.rows)

    def __iter__(self) -> Iterator["ResultSet"]:
        while self.next():
            yield self

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Remote row containers hold a server-side cursor while pages
        # remain unfetched; closing the result set must release it.
        release = getattr(self._result.rows, "close", None)
        if release is not None:
            release()

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise errors.InvalidCursorStateError("result set is closed")

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def find_column(self, name: str) -> int:
        """1-based index of the named column."""
        try:
            return self._names[name.lower()]
        except KeyError:
            raise errors.UndefinedColumnError(
                f"result set has no column {name!r}"
            ) from None

    def _raw(self, column: Union[int, str]) -> Any:
        self._check_open()
        if not 0 <= self._position < len(self._result.rows):
            raise errors.InvalidCursorStateError(
                "cursor is not positioned on a row"
            )
        index = (
            column if isinstance(column, int) else self.find_column(column)
        )
        row = self._result.rows[self._position]
        if not 1 <= index <= len(row):
            raise errors.DataError(f"column index {index} out of range")
        value = row[index - 1]
        self._was_null = value is None
        return value

    def was_null(self) -> bool:
        """True if the last value read was SQL NULL."""
        return self._was_null

    def get_object(self, column: Union[int, str]) -> Any:
        """Objects-by-value access; returns None for NULL."""
        return self._raw(column)

    def get_string(self, column: Union[int, str]) -> Optional[str]:
        value = self._raw(column)
        if value is None:
            return None
        if isinstance(value, str):
            return value
        return str(value)

    def get_int(self, column: Union[int, str]) -> Optional[int]:
        value = self._raw(column)
        if value is None:
            return None
        try:
            return int(value)
        except (TypeError, ValueError):
            raise errors.InvalidCastError(
                f"cannot read {type(value).__name__} as int"
            ) from None

    def get_float(self, column: Union[int, str]) -> Optional[float]:
        value = self._raw(column)
        if value is None:
            return None
        try:
            return float(value)
        except (TypeError, ValueError):
            raise errors.InvalidCastError(
                f"cannot read {type(value).__name__} as float"
            ) from None

    def get_decimal(
        self, column: Union[int, str]
    ) -> Optional[decimal.Decimal]:
        value = self._raw(column)
        if value is None:
            return None
        if isinstance(value, decimal.Decimal):
            return value
        try:
            return decimal.Decimal(str(value))
        except decimal.InvalidOperation:
            raise errors.InvalidCastError(
                f"cannot read {type(value).__name__} as Decimal"
            ) from None

    def get_boolean(self, column: Union[int, str]) -> Optional[bool]:
        value = self._raw(column)
        if value is None:
            return None
        return bool(value)

    def get_date(self, column: Union[int, str]) -> Optional[datetime.date]:
        value = self._raw(column)
        if value is None or isinstance(value, datetime.date):
            return value
        raise errors.InvalidCastError(
            f"cannot read {type(value).__name__} as date"
        )

    def get_bytes(self, column: Union[int, str]) -> Optional[bytes]:
        value = self._raw(column)
        if value is None or isinstance(value, bytes):
            return value
        raise errors.InvalidCastError(
            f"cannot read {type(value).__name__} as bytes"
        )

    # ------------------------------------------------------------------
    # metadata / interop
    # ------------------------------------------------------------------
    def get_meta_data(self) -> ResultSetMetaData:
        return ResultSetMetaData(self._result)

    def row_count(self) -> int:
        """Number of rows in the (materialised) result."""
        return len(self._result.rows)

    def to_statement_result(self) -> StatementResult:
        """Engine-level view; used for dynamic result-set containers."""
        return self._result

    def fetch_all(self) -> List[List[Any]]:
        """Remaining rows as plain lists (Pythonic convenience)."""
        self._check_open()
        start = max(self._position + 1, 0)
        rows = [list(row) for row in self._result.rows[start:]]
        self._position = len(self._result.rows)
        return rows
