"""Host-variable processing.

SQLJ host variables appear in SQL text as ``:name``, optionally preceded
by a mode keyword: ``:IN x`` (default), ``:OUT x``, ``:INOUT x``.  The
translator rewrites them to ``?`` markers (collecting the Python
expressions/targets to bind, in order) before recording the SQL in a
profile entry.  OUT and INOUT modes are only meaningful in CALL clauses,
where the named variables receive the procedure's output parameters.

``FETCH :iter INTO :a, :b`` is special: the iterator variable and the
INTO targets are host-side, so the whole clause is handled by the
translator rather than shipped to the database.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro import errors

__all__ = [
    "HostVariable",
    "extract_host_variables",
    "parse_fetch",
    "FetchClause",
    "SelectInto",
    "parse_select_into",
]

_HOSTVAR_RE = re.compile(
    r":(?:(?P<mode>IN|OUT|INOUT)\s+)?(?P<name>[A-Za-z_][A-Za-z0-9_]*)",
    re.IGNORECASE,
)


def _is_sql_keyword(word: str) -> bool:
    from repro.engine.lexer import KEYWORDS

    return word.upper() in KEYWORDS


@dataclass
class HostVariable:
    """One ``:name`` reference: Python variable name plus its mode."""

    name: str
    mode: str = "IN"  # IN / OUT / INOUT

    @property
    def is_output(self) -> bool:
        return self.mode in ("OUT", "INOUT")

    @property
    def is_input(self) -> bool:
        return self.mode in ("IN", "INOUT")
_FETCH_RE = re.compile(
    r"^\s*FETCH\s+:(?P<iter>[A-Za-z_][A-Za-z0-9_]*)\s+"
    r"INTO\s+(?P<targets>.+?)\s*$",
    re.IGNORECASE | re.DOTALL,
)


def extract_host_variables(sql: str) -> Tuple[str, List[HostVariable]]:
    """Replace ``:[mode] name`` host variables with ``?``.

    Returns the rewritten SQL and the host variables in marker order.
    Colons inside SQL string literals are left alone.
    """
    out: List[str] = []
    variables: List[HostVariable] = []
    in_string = False
    i = 0
    while i < len(sql):
        ch = sql[i]
        if in_string:
            out.append(ch)
            if ch == "'":
                if sql[i + 1: i + 2] == "'":
                    out.append("'")
                    i += 1
                else:
                    in_string = False
            i += 1
            continue
        if ch == "'":
            in_string = True
            out.append(ch)
            i += 1
            continue
        if ch == ":":
            match = _HOSTVAR_RE.match(sql, i)
            if not match:
                raise errors.TranslationError(
                    f"malformed host variable reference near column {i} "
                    f"of: {sql!r}"
                )
            mode = (match.group("mode") or "IN").upper()
            name = match.group("name")
            if match.group("mode") is not None and _is_sql_keyword(name):
                # ``:out FROM ...`` — "out" is the variable, the keyword
                # belongs to the surrounding SQL.
                mode = "IN"
                name = match.group("mode")
                i += 1 + len(name)
            else:
                i = match.end()
            variables.append(HostVariable(name, mode))
            out.append("?")
            continue
        out.append(ch)
        i += 1
    return "".join(out), variables


@dataclass
class FetchClause:
    """Parsed ``FETCH :iter INTO :a, :b``."""

    iterator_var: str
    targets: List[str]


@dataclass
class SelectInto:
    """Parsed single-row ``SELECT ... INTO :a, :b FROM ...``.

    ``sql`` is the query with the INTO clause removed; executing it must
    yield exactly one row (SQLSTATE 02000 on none, 21000 on several),
    whose columns are assigned to ``targets`` in order.
    """

    sql: str
    targets: List[str]


def parse_select_into(sql: str) -> Optional[SelectInto]:
    """Detect and split a ``SELECT ... INTO :targets FROM ...`` clause.

    Returns None when ``sql`` is not a SELECT or has no top-level INTO.
    """
    if not re.match(r"\s*SELECT\b", sql, re.IGNORECASE):
        return None
    # Find a top-level INTO (outside strings and parentheses).
    depth = 0
    in_string = False
    into_start = None
    i = 0
    upper = sql.upper()
    while i < len(sql):
        ch = sql[i]
        if in_string:
            if ch == "'":
                if sql[i + 1: i + 2] == "'":
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
        elif ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif depth == 0 and upper.startswith("INTO", i) and (
            i == 0 or not (sql[i - 1].isalnum() or sql[i - 1] == "_")
        ) and not (
            i + 4 < len(sql) and (sql[i + 4].isalnum() or sql[i + 4] == "_")
        ):
            into_start = i
            break
        i += 1
    if into_start is None:
        return None

    remainder = sql[into_start + 4:]
    match = re.search(r"\bFROM\b", remainder, re.IGNORECASE)
    if match:
        target_text = remainder[: match.start()]
        tail = " " + remainder[match.start():]
    else:
        target_text = remainder
        tail = ""
    targets: List[str] = []
    for part in target_text.split(","):
        part = part.strip()
        if not part.startswith(":"):
            raise errors.TranslationError(
                f"SELECT INTO target {part!r} must be a :hostvar"
            )
        name = part[1:]
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise errors.TranslationError(
                f"malformed SELECT INTO target {part!r}"
            )
        targets.append(name)
    if not targets:
        raise errors.TranslationError("SELECT INTO requires targets")
    rewritten = sql[:into_start].rstrip() + tail
    return SelectInto(rewritten, targets)


def parse_fetch(sql: str) -> Optional[FetchClause]:
    """Return the parsed FETCH clause, or None if ``sql`` is not one."""
    match = _FETCH_RE.match(sql)
    if not match:
        return None
    targets: List[str] = []
    for part in match.group("targets").split(","):
        part = part.strip()
        if not part.startswith(":"):
            raise errors.TranslationError(
                f"FETCH INTO target {part!r} must be a :hostvar"
            )
        name = part[1:]
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
            raise errors.TranslationError(
                f"malformed FETCH INTO target {part!r}"
            )
        targets.append(name)
    if not targets:
        raise errors.TranslationError("FETCH INTO requires targets")
    return FetchClause(match.group("iter"), targets)
