"""Tests for the Part 0 runtime: contexts and typed iterators."""

import decimal

import pytest

from repro import errors
from repro import DriverManager
from repro import Database
from repro.engine.database import StatementResult
from repro import ConnectionContext
from repro.runtime import (
    NamedIterator,
    PositionalIterator,
)
from repro.runtime.api import resolve_type_name
from repro.runtime.iterators import check_host_type

D = decimal.Decimal


def query_result(session, sql):
    return session.execute(sql)


@pytest.fixture
def people_db():
    database = Database(name="people")
    session = database.create_session(autocommit=True)
    session.execute(
        "create table people (name varchar(50), year integer, "
        "score decimal(6,2))"
    )
    session.execute(
        "insert into people values ('Ann', 1990, 9.5), "
        "('Ben', 1995, 8.25), ('Cal', 1999, null)"
    )
    return database, session


class ByPos(PositionalIterator):
    _column_types = (str, int)


class ByName(NamedIterator):
    _columns = (("year", int), ("name", str))

    def year(self):
        return self._get("year")

    def name(self):
        return self._get("name")


class TestConnectionContext:
    def test_from_database(self, people_db):
        database, _session = people_db
        context = ConnectionContext(database)
        assert context.session.database is database

    def test_from_session(self, people_db):
        _database, session = people_db
        context = ConnectionContext(session)
        assert context.session is session

    def test_from_url(self, people_db):
        context = ConnectionContext("pydbc:standard:ctx_url_db")
        assert context.session.database.name == "ctx_url_db"

    def test_from_dbapi_connection(self, people_db):
        database, _session = people_db
        connection = DriverManager.get_connection(
            "pydbc:standard:x", database=database
        )
        context = ConnectionContext(connection)
        assert context.session is connection.session

    def test_default_context_management(self, people_db):
        database, _session = people_db
        with pytest.raises(errors.ConnectionError_):
            ConnectionContext.get_default_context()
        context = ConnectionContext(database)
        ConnectionContext.set_default_context(context)
        assert ConnectionContext.get_default_context() is context
        context.close()
        with pytest.raises(errors.ConnectionError_):
            ConnectionContext.get_default_context()

    def test_unresolvable_target(self):
        with pytest.raises(errors.ConnectionError_):
            ConnectionContext(42)

    def test_closed_context_rejects_execution(self, people_db):
        database, _session = people_db
        context = ConnectionContext(database)
        context.close()
        with pytest.raises(errors.ConnectionClosedError):
            context.commit()

    def test_context_manager_closes(self, people_db):
        database, _session = people_db
        with ConnectionContext(database) as context:
            pass
        assert context.closed


class TestPositionalIterator:
    def test_fetch_protocol(self, people_db):
        _db, session = people_db
        result = query_result(
            session, "select name, year from people order by year"
        )
        iterator = ByPos(result)
        rows = []
        while True:
            fetched = iterator.fetch_row()
            if fetched is None:
                break
            rows.append(fetched)
        assert rows == [("Ann", 1990), ("Ben", 1995), ("Cal", 1999)]
        assert iterator.endfetch()

    def test_endfetch_false_before_end(self, people_db):
        _db, session = people_db
        iterator = ByPos(
            query_result(session, "select name, year from people")
        )
        iterator.fetch_row()
        assert not iterator.endfetch()

    def test_arity_mismatch_rejected_at_bind(self, people_db):
        _db, session = people_db
        result = query_result(
            session, "select name, year, score from people"
        )
        with pytest.raises(errors.InvalidCastError):
            ByPos(result)

    def test_static_type_mismatch_rejected_at_bind(self, people_db):
        _db, session = people_db
        result = query_result(
            session, "select year, name from people"
        )  # (int, str) against declared (str, int)
        with pytest.raises(errors.InvalidCastError):
            ByPos(result)

    def test_closed_iterator(self, people_db):
        _db, session = people_db
        iterator = ByPos(
            query_result(session, "select name, year from people")
        )
        iterator.close()
        with pytest.raises(errors.InvalidCursorStateError):
            iterator.fetch_row()

    def test_non_rowset_rejected(self):
        with pytest.raises(errors.DataError):
            ByPos(StatementResult("update", update_count=1))


class TestNamedIterator:
    def test_binds_by_name_any_order(self, people_db):
        _db, session = people_db
        # Query produces (name, year); iterator declares (year, name).
        result = query_result(
            session, "select name, year from people order by year"
        )
        iterator = ByName(result)
        seen = []
        while iterator.next():
            seen.append((iterator.year(), iterator.name()))
        assert seen == [(1990, "Ann"), (1995, "Ben"), (1999, "Cal")]

    def test_missing_column_rejected(self, people_db):
        _db, session = people_db
        result = query_result(session, "select name from people")
        with pytest.raises(errors.UndefinedColumnError):
            ByName(result)

    def test_extra_columns_tolerated(self, people_db):
        _db, session = people_db
        result = query_result(
            session, "select name, year, score from people"
        )
        iterator = ByName(result)
        assert iterator.next()

    def test_wrong_type_rejected_at_bind(self, people_db):
        class BadTypes(NamedIterator):
            _columns = (("year", str),)

        _db, session = people_db
        result = query_result(session, "select year from people")
        with pytest.raises(errors.InvalidCastError):
            BadTypes(result)

    def test_alias_binding(self, people_db):
        # The paper binds named iterators through result-column aliases.
        class ByRegion(NamedIterator):
            _columns = (("region", int),)

            def region(self):
                return self._get("region")

        _db, session = people_db
        result = query_result(
            session, "select year as region from people order by year"
        )
        iterator = ByRegion(result)
        iterator.next()
        assert iterator.region() == 1990

    def test_access_before_next(self, people_db):
        _db, session = people_db
        iterator = ByName(
            query_result(session, "select name, year from people")
        )
        with pytest.raises(errors.InvalidCursorStateError):
            iterator.name()


class TestHostTypeChecking:
    def test_none_passes(self):
        assert check_host_type(None, int) is None

    def test_int_ok(self):
        assert check_host_type(5, int) == 5

    def test_decimal_to_float_widens(self):
        assert check_host_type(D("2.5"), float) == 2.5

    def test_decimal_to_int_rejected(self):
        with pytest.raises(errors.InvalidCastError):
            check_host_type(D("2.5"), int)

    def test_int_to_decimal_ok(self):
        assert check_host_type(5, D) == 5

    def test_bool_guard(self):
        with pytest.raises(errors.InvalidCastError):
            check_host_type(True, int)
        assert check_host_type(True, bool) is True

    def test_string_mismatch(self):
        with pytest.raises(errors.InvalidCastError):
            check_host_type(5, str)

    def test_udt_class_check(self):
        class Widget:
            pass

        widget = Widget()
        assert check_host_type(widget, Widget) is widget
        with pytest.raises(errors.InvalidCastError):
            check_host_type("nope", Widget)

    def test_object_accepts_anything(self):
        assert check_host_type("x", object) == "x"


class TestTypeNameResolution:
    @pytest.mark.parametrize(
        "name, expected",
        [
            ("int", int),
            ("str", str),
            ("string", str),
            ("FLOAT", float),
            ("bool", bool),
            ("Decimal", D),
            ("bytes", bytes),
            ("object", object),
        ],
    )
    def test_simple_names(self, name, expected):
        assert resolve_type_name(name) is expected

    def test_type_object_passthrough(self):
        assert resolve_type_name(int) is int

    def test_dotted_path(self):
        cls = resolve_type_name("decimal.Decimal")
        assert cls is D

    def test_unknown_name(self):
        with pytest.raises(errors.TranslationError):
            resolve_type_name("frobnicator")

    def test_bad_dotted_path(self):
        with pytest.raises(errors.TranslationError):
            resolve_type_name("nonexistent_module.Thing")


class TestRuntimeApiEdges:
    def test_load_profile_missing_file(self, tmp_path):
        from repro import errors
        from repro.runtime.api import load_profile

        with pytest.raises(errors.ProfileError):
            load_profile(str(tmp_path / "module.py"), "no_such_profile")

    def test_execute_with_non_context(self, people_db):
        from repro import errors
        from repro.profiles.model import EntryInfo, Profile
        from repro.runtime.api import execute

        profile = Profile(name="x", context_type="Default")
        profile.data.add(EntryInfo(0, "SELECT 1", "QUERY"))
        with pytest.raises(errors.ConnectionError_):
            execute(profile, 0, "not-a-context", ())

    def test_fetch_requires_positional(self, people_db):
        from repro import errors
        from repro.runtime.api import fetch

        _db, session = people_db
        iterator = ByName(
            session.execute("select name, year from people")
        )
        with pytest.raises(errors.InvalidCursorStateError):
            fetch(iterator)

    def test_execute_entry_via_context(self, people_db):
        from repro.profiles.model import EntryInfo, Profile

        database, _session = people_db
        profile = Profile(name="p", context_type="Default")
        profile.data.add(
            EntryInfo(0, "select count(*) from people", "QUERY")
        )
        context = ConnectionContext(database)
        result = context.execute_entry(profile, 0, ())
        assert result.rows == [[3]]
