"""Row storage and undo logging.

Tables keep their rows in Python lists (this is an in-memory engine); what
this module adds is *transactional mutation*: every insert/delete/update
goes through a :class:`TransactionLog` that can undo the work on ROLLBACK.

Part 2 objects are stored **by value**: inserting an object deep-copies it
into the heap and fetching copies it back out, so a caller mutating its
own instance never changes stored data — the paper's "objects-by-value"
JDBC semantics.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, List, Optional

from repro import faultpoints
from repro.engine.catalog import Table
from repro.observability import metrics as _metrics
from repro.sqltypes import ObjectType

__all__ = ["TransactionLog", "store_value", "fetch_value", "RowStore"]

#: Heap mutations (rows inserted + deleted + replaced) across every
#: table; pairs with the ``wal.*`` counters to show write amplification.
_ROWS_MUTATED = _metrics.registry.counter("rows.mutated")


def store_value(value: Any, descriptor: Any) -> Any:
    """Prepare ``value`` for storage under ``descriptor``.

    UDT instances are deep-copied (stored by value); scalars are already
    immutable in Python.
    """
    if value is not None and isinstance(descriptor, ObjectType):
        return copy.deepcopy(value)
    return value


def fetch_value(value: Any, descriptor: Any) -> Any:
    """Materialise a stored value for a client (copy-out for objects)."""
    if value is not None and isinstance(descriptor, ObjectType):
        return copy.deepcopy(value)
    return value


class TransactionLog:
    """Undo log for one session's open transaction, with savepoints.

    A savepoint records the current undo-log length; rolling back to it
    unwinds only the mutations performed since, and discards any later
    savepoints (standard SQL savepoint semantics).

    The log is owned by one session, but pooled connections migrate
    sessions across threads, so its mutations are guarded by a reentrant
    lock (cheap insurance next to the engine's statement lock).
    """

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []
        self._savepoints: dict = {}
        self._lock = threading.RLock()
        self.active = False

    def record(self, undo: Callable[[], None]) -> None:
        """Register an undo action for a mutation just performed."""
        with self._lock:
            self.active = True
            self._undo.append(undo)

    def commit(self) -> int:
        """Discard undo actions; returns how many mutations were kept."""
        with self._lock:
            count = len(self._undo)
            self._undo.clear()
            self._savepoints.clear()
            self.active = False
            return count

    def rollback(self) -> int:
        """Apply undo actions in reverse order; returns how many ran."""
        with self._lock:
            count = len(self._undo)
            for undo in reversed(self._undo):
                undo()
            self._undo.clear()
            self._savepoints.clear()
            self.active = False
            return count

    # -- statement-level atomicity ---------------------------------------
    def position(self) -> int:
        """Current undo-log position (a mark for partial rollback)."""
        return len(self._undo)

    def rollback_to_position(self, mark: int) -> int:
        """Undo every mutation recorded after ``mark``.

        Backs out the work of a statement that failed midway, so errors
        (including injected faults) never leave half a statement behind.
        """
        with self._lock:
            count = len(self._undo) - mark
            while len(self._undo) > mark:
                self._undo.pop()()
            self._savepoints = {
                name: position
                for name, position in self._savepoints.items()
                if position <= mark
            }
            self.active = bool(self._undo)
            return count

    # -- savepoints ------------------------------------------------------
    def set_savepoint(self, name: str) -> None:
        """Create (or move) the named savepoint at the current position."""
        with self._lock:
            self._savepoints[name] = len(self._undo)

    def rollback_to(self, name: str) -> int:
        """Undo every mutation after the named savepoint."""
        from repro import errors

        with self._lock:
            if name not in self._savepoints:
                raise errors.TransactionError(
                    f"savepoint {name!r} does not exist"
                )
            mark = self._savepoints[name]
            count = len(self._undo) - mark
            while len(self._undo) > mark:
                self._undo.pop()()
            # Savepoints created after this one are gone.
            self._savepoints = {
                n: position
                for n, position in self._savepoints.items()
                if position <= mark
            }
            return count

    def release(self, name: str) -> None:
        """Forget the named savepoint (its changes remain pending)."""
        from repro import errors

        with self._lock:
            if name not in self._savepoints:
                raise errors.TransactionError(
                    f"savepoint {name!r} does not exist"
                )
            del self._savepoints[name]


class RowStore:
    """Transactional mutation interface over a table's row list.

    Secondary indexes on the table are maintained in step with the heap:
    every mutation updates them on the forward path, and the recorded
    undo action reverses both the heap change *and* the index change, so
    a rollback leaves indexes consistent without a rebuild.
    """

    def __init__(self, table: Table, log: Optional[TransactionLog]) -> None:
        self.table = table
        self.log = log

    def _index_add(self, row: List[Any]) -> None:
        for index in self.table.indexes:
            index.add(row)

    def _index_remove(self, row: List[Any]) -> None:
        for index in self.table.indexes:
            index.remove(row)

    def insert(self, row: List[Any]) -> None:
        faultpoints.trigger("storage.insert")
        rows = self.table.rows
        rows.append(row)
        self._index_add(row)
        _ROWS_MUTATED.increment()
        if self.log is not None:
            def undo(r=row, rs=rows, store=self) -> None:
                # Remove by identity: list.remove would delete the first
                # *equal* row, which reorders the table when the insert
                # duplicated an existing row.
                for index in range(len(rs) - 1, -1, -1):
                    if rs[index] is r:
                        del rs[index]
                        break
                store._index_remove(r)
            self.log.record(undo)

    def delete_at(self, positions: List[int]) -> int:
        """Delete rows at the given positions (any order)."""
        faultpoints.trigger("storage.delete")
        rows = self.table.rows
        saved = [(pos, rows[pos]) for pos in sorted(positions)]
        for pos in sorted(positions, reverse=True):
            del rows[pos]
        for _, row in saved:
            self._index_remove(row)
        _ROWS_MUTATED.increment(len(saved))
        if self.log is not None:
            def undo(saved=saved, rs=rows, store=self) -> None:
                for pos, row in saved:
                    rs.insert(pos, row)
                    store._index_add(row)
            self.log.record(undo)
        return len(positions)

    def update_at(self, position: int, new_row: List[Any]) -> None:
        faultpoints.trigger("storage.update")
        rows = self.table.rows
        old_row = rows[position]
        rows[position] = new_row
        self._index_remove(old_row)
        self._index_add(new_row)
        _ROWS_MUTATED.increment()
        if self.log is not None:
            def undo(pos=position, row=old_row, new=new_row,
                     rs=rows, store=self) -> None:
                rs[pos] = row
                store._index_remove(new)
                store._index_add(row)
            self.log.record(undo)
