"""Scanning ``.psqlj`` sources for ``#sql`` clauses.

A clause starts with ``#sql`` as the first token of a (logical) line and
ends at the first ``;`` outside braces and SQL strings.  Clause forms
(paper, "SQLJ clauses"):

* ``#sql context Department;`` — connection-context declaration,
* ``#sql [public] iterator ByPos (str, int);`` — positional iterator,
* ``#sql [public] iterator ByName (int year, str name);`` — named,
* ``#sql { SQL text with :hostvars };`` — executable,
* ``#sql [ctx] { ... };`` — executable against a context expression,
* ``#sql iter = { SELECT ... };`` — query assigned to a typed iterator,
* ``#sql { FETCH :iter INTO :a, :b };`` — positional fetch.

Everything else in the file is ordinary Python and passes through
untouched.  Because ``#sql`` is a Python comment, a ``.psqlj`` file is
syntactically valid Python before translation, which is also how the
translator finds iterator variable *annotations* (``positer: ByPos``) —
the Python stand-in for Java's declared variable types.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from repro import errors

__all__ = [
    "ContextDecl",
    "IteratorDecl",
    "ExecutableClause",
    "SourceLine",
    "ScannedProgram",
    "scan_source",
]

_SQL_CLAUSE_RE = re.compile(r"^(\s*)#sql\b", re.IGNORECASE)
_ANNOTATION_RE = re.compile(
    r"^\s*(?P<var>[A-Za-z_][A-Za-z0-9_]*)\s*:\s*"
    r"(?P<cls>[A-Za-z_][A-Za-z0-9_\.]*)\s*(?:#.*)?$"
)
_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


@dataclass
class SourceLine:
    """A pass-through Python line."""

    text: str
    line: int


@dataclass
class ContextDecl:
    """``#sql context Name;``"""

    name: str
    indent: str
    line: int
    public: bool = False


@dataclass
class IteratorDecl:
    """``#sql [public] iterator Name (cols);``

    ``columns`` holds ``(column_name_or_None, type_name)`` pairs; a
    declaration is *named* iff every column carries a name.
    """

    name: str
    columns: List[Tuple[Optional[str], str]]
    indent: str
    line: int
    public: bool = False

    @property
    def positional(self) -> bool:
        return any(name is None for name, _ in self.columns)


@dataclass
class ExecutableClause:
    """``#sql [ctx] target = { sql };`` (context/target optional)."""

    sql: str
    indent: str
    line: int
    context_expr: Optional[str] = None
    target: Optional[str] = None


ScannedItem = Union[SourceLine, ContextDecl, IteratorDecl, ExecutableClause]


@dataclass
class ScannedProgram:
    """Result of scanning one source file."""

    items: List[ScannedItem] = field(default_factory=list)
    #: (line, variable, class name) triples, in source order; variables
    #: may be re-annotated (e.g. the same name in two functions), so
    #: resolution picks the nearest annotation preceding the use.
    annotation_entries: List[Tuple[int, str, str]] = field(
        default_factory=list
    )

    @property
    def annotations(self) -> dict:
        """Last-wins view of the annotations (name -> class)."""
        return {var: cls for _line, var, cls in self.annotation_entries}

    def annotation_for(
        self, variable: str, before_line: int
    ) -> Optional[str]:
        """Nearest ``variable: Class`` annotation at or before a line."""
        best: Optional[str] = None
        for line, var, cls in self.annotation_entries:
            if var == variable and line <= before_line:
                best = cls
        return best

    def iterator_decls(self) -> List[IteratorDecl]:
        return [i for i in self.items if isinstance(i, IteratorDecl)]

    def context_decls(self) -> List[ContextDecl]:
        return [i for i in self.items if isinstance(i, ContextDecl)]

    def executable_clauses(self) -> List[ExecutableClause]:
        return [i for i in self.items if isinstance(i, ExecutableClause)]


class _ClauseReader:
    """Reads one clause's text (joined across lines) and parses it."""

    def __init__(self, text: str, line: int, indent: str) -> None:
        self.text = text
        self.pos = 0
        self.line = line
        self.indent = indent

    def error(self, message: str) -> errors.TranslationError:
        return errors.TranslationError(message, line=self.line)

    def skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def peek(self) -> str:
        return self.text[self.pos] if self.pos < len(self.text) else ""

    def take_ident(self) -> Optional[str]:
        self.skip_ws()
        match = _IDENT_RE.match(self.text, self.pos)
        if not match:
            return None
        self.pos = match.end()
        return match.group()

    def take_keyword(self, word: str) -> bool:
        saved = self.pos
        ident = self.take_ident()
        if ident is not None and ident.lower() == word:
            return True
        self.pos = saved
        return False

    def expect(self, char: str) -> None:
        self.skip_ws()
        if self.peek() != char:
            raise self.error(
                f"expected {char!r} in #sql clause, found "
                f"{self.peek() or 'end of clause'!r}"
            )
        self.pos += 1

    def take_bracketed(self) -> str:
        """Consume ``[ ... ]`` (supports nesting) and return the inside."""
        self.expect("[")
        depth = 1
        start = self.pos
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "[":
                depth += 1
            elif ch == "]":
                depth -= 1
                if depth == 0:
                    inside = self.text[start: self.pos].strip()
                    self.pos += 1
                    return inside
            self.pos += 1
        raise self.error("unterminated [context] in #sql clause")

    def take_braced_sql(self) -> str:
        """Consume ``{ sql }`` honouring SQL string literals."""
        self.expect("{")
        start = self.pos
        depth = 1
        in_string = False
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if in_string:
                if ch == "'":
                    if self.text[self.pos + 1: self.pos + 2] == "'":
                        self.pos += 1
                    else:
                        in_string = False
            elif ch == "'":
                in_string = True
            elif ch == "{":
                depth += 1
            elif ch == "}":
                depth -= 1
                if depth == 0:
                    sql = self.text[start: self.pos]
                    self.pos += 1
                    return sql.strip()
            self.pos += 1
        raise self.error("unterminated { sql } in #sql clause")

    def at_end(self) -> bool:
        self.skip_ws()
        return self.pos >= len(self.text)


def _parse_clause(
    text: str, line: int, indent: str
) -> Union[ContextDecl, IteratorDecl, ExecutableClause]:
    reader = _ClauseReader(text, line, indent)
    public = reader.take_keyword("public")

    if reader.take_keyword("context"):
        name = reader.take_ident()
        if name is None:
            raise reader.error("context declaration requires a name")
        if not reader.at_end():
            raise reader.error("unexpected text after context declaration")
        return ContextDecl(name, indent, line, public)

    if reader.take_keyword("iterator"):
        return _parse_iterator(reader, public)

    if public:
        raise reader.error("'public' applies only to declarations")

    context_expr: Optional[str] = None
    reader.skip_ws()
    if reader.peek() == "[":
        context_expr = reader.take_bracketed()
        if not context_expr:
            raise reader.error("empty [context] in #sql clause")

    target: Optional[str] = None
    saved = reader.pos
    ident = reader.take_ident()
    if ident is not None:
        reader.skip_ws()
        if reader.peek() == "=":
            reader.pos += 1
            target = ident
        else:
            reader.pos = saved

    sql = reader.take_braced_sql()
    if not sql:
        raise reader.error("empty SQL text in #sql clause")
    if not reader.at_end():
        raise reader.error("unexpected text after #sql clause")
    return ExecutableClause(sql, indent, line, context_expr, target)


def _parse_iterator(reader: _ClauseReader, public: bool) -> IteratorDecl:
    name = reader.take_ident()
    if name is None:
        raise reader.error("iterator declaration requires a name")
    reader.expect("(")
    columns: List[Tuple[Optional[str], str]] = []
    while True:
        reader.skip_ws()
        if reader.peek() == ")":
            reader.pos += 1
            break
        first = reader.take_ident()
        if first is None:
            raise reader.error("expected a type in iterator declaration")
        # dotted type names
        type_name = first
        while reader.peek() == ".":
            reader.pos += 1
            part = reader.take_ident()
            if part is None:
                raise reader.error("malformed dotted type name")
            type_name += "." + part
        saved = reader.pos
        second = reader.take_ident()
        if second is not None:
            # "type name" pair: first token(s) are the type, second the
            # column name — the paper's ``iterator ByName (int year, ...)``.
            columns.append((second, type_name))
        else:
            reader.pos = saved
            columns.append((None, type_name))
        reader.skip_ws()
        if reader.peek() == ",":
            reader.pos += 1
        elif reader.peek() == ")":
            reader.pos += 1
            break
        else:
            raise reader.error(
                "expected ',' or ')' in iterator declaration"
            )
    if not columns:
        raise reader.error("iterator must declare at least one column")
    named = [c for c, _ in columns if c is not None]
    if named and len(named) != len(columns):
        raise reader.error(
            "iterator columns must be all named or all positional"
        )
    if not reader.at_end():
        raise reader.error("unexpected text after iterator declaration")
    return IteratorDecl(name, columns, reader.indent, reader.line, public)


def scan_source(source: str) -> ScannedProgram:
    """Scan ``.psqlj`` text into pass-through lines and parsed clauses."""
    program = ScannedProgram()
    lines = source.splitlines()
    index = 0
    while index < len(lines):
        raw = lines[index]
        match = _SQL_CLAUSE_RE.match(raw)
        if not match:
            annotation = _ANNOTATION_RE.match(raw)
            if annotation:
                program.annotation_entries.append(
                    (
                        index + 1,
                        annotation.group("var"),
                        annotation.group("cls"),
                    )
                )
            program.items.append(SourceLine(raw, index + 1))
            index += 1
            continue

        indent = match.group(1)
        start_line = index + 1
        # Accumulate clause text until an unquoted ';' outside braces.
        collected: List[str] = []
        text_after = raw[match.end():]
        done = False
        while True:
            chunk = text_after
            collected.append(chunk)
            joined = "\n".join(collected)
            if _clause_complete(joined):
                done = True
                break
            index += 1
            if index >= len(lines):
                break
            text_after = lines[index]
        if not done:
            raise errors.TranslationError(
                "#sql clause is not terminated with ';'", line=start_line
            )
        joined = "\n".join(collected)
        clause_text = joined[: _terminator_pos(joined)]
        program.items.append(
            _parse_clause(clause_text.strip(), start_line, indent)
        )
        index += 1
    return program


def _scan_states(text: str):
    """Yield (position, char, depth, in_string) over clause text."""
    depth = 0
    in_string = False
    position = 0
    while position < len(text):
        ch = text[position]
        if in_string:
            if ch == "'":
                if text[position + 1: position + 2] == "'":
                    position += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
        elif ch == "{":
            depth += 1
        elif ch == "}":
            depth -= 1
        yield position, ch, depth, in_string
        position += 1


def _terminator_pos(text: str) -> int:
    for position, ch, depth, in_string in _scan_states(text):
        if ch == ";" and depth == 0 and not in_string:
            return position
    raise errors.TranslationError("#sql clause is not terminated with ';'")


def _clause_complete(text: str) -> bool:
    for _position, ch, depth, in_string in _scan_states(text):
        if ch == ";" and depth == 0 and not in_string:
            return True
    return False
