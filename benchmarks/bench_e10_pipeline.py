"""E10 — Translation/customization pipeline cost (paper slides 12-19).

Measures the paper's tooling phases on programs of growing clause count:
scanning, checking (offline and online), code generation, profile
serialization, packaging, and per-dialect customization.

Expected shape: every phase scales roughly linearly in the number of
``#sql`` clauses; online checking dominates translation time (it plans
every statement against the exemplar); customization cost is proportional
to clauses x dialects and is paid once per deployment.
"""

import os
import tempfile
import time

import pytest

from benchmarks.common import fresh_name, report
from repro import Database
from repro.profiles.customizer import customize_profile
from repro.profiles.serialization import (
    profile_from_bytes,
    profile_to_bytes,
)
from repro.translator import TranslationOptions, Translator


def exemplar():
    database = Database(name=fresh_name("e10"))
    session = database.create_session(autocommit=True)
    session.execute(
        "create table emps (name varchar(50), id char(5), "
        "state char(20), sales decimal(8,2))"
    )
    return database


def program_with_clauses(count: int) -> str:
    lines = []
    for i in range(count):
        kind = i % 3
        lines.append(f"def op_{i}(x):")
        if kind == 0:
            lines.append(
                "    #sql { UPDATE emps SET sales = sales + :x "
                f"WHERE id = 'E{i:04d}' }};"
            )
        elif kind == 1:
            lines.append(
                "    #sql { DELETE FROM emps "
                f"WHERE sales < :x AND id = 'E{i:04d}' }};"
            )
        else:
            lines.append(
                "    #sql { INSERT INTO emps VALUES "
                "('N', 'E0000', 'CA', :x) };"
            )
        lines.append("    pass")
    return "\n".join(lines) + "\n"


def translate(source, online):
    options = TranslationOptions(
        exemplar=exemplar() if online else None
    )
    translator = Translator(options)
    return translator.translate_source(source, "pipeline_mod")


class TestPipelineShape:
    def test_phase_breakdown_scales_linearly(self):
        rows = []
        timings = {}
        for clause_count in (4, 16, 64):
            source = program_with_clauses(clause_count)

            start = time.perf_counter()
            offline_result = translate(source, online=False)
            offline_time = time.perf_counter() - start

            start = time.perf_counter()
            online_result = translate(source, online=True)
            online_time = time.perf_counter() - start

            profile = online_result.profiles[0]
            start = time.perf_counter()
            payload = profile_to_bytes(profile)
            profile_from_bytes(payload)
            serialise_time = time.perf_counter() - start

            start = time.perf_counter()
            customize_profile(profile, "acme")
            customize_profile(profile, "zenith")
            customize_time = time.perf_counter() - start

            timings[clause_count] = (
                offline_time, online_time, customize_time
            )
            rows.append(
                (
                    clause_count,
                    f"{offline_time * 1000:.1f}ms",
                    f"{online_time * 1000:.1f}ms",
                    f"{serialise_time * 1000:.2f}ms",
                    f"{customize_time * 1000:.1f}ms",
                    len(payload),
                )
            )
            del offline_result
        report(
            "E10: pipeline phases by clause count",
            rows,
            ("clauses", "offline translate", "online translate",
             "ser+deser", "customize x2", "profile bytes"),
        )
        # Roughly linear scaling: 16x the clauses should cost well under
        # 100x any phase (quadratic behaviour would show here).
        for phase_index in range(3):
            small = timings[4][phase_index]
            large = timings[64][phase_index]
            assert large < small * 100

    def test_online_checking_costs_more_than_offline(self):
        source = program_with_clauses(32)

        def best_of(fn, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - start)
            return best

        offline = best_of(lambda: translate(source, online=False))
        online = best_of(lambda: translate(source, online=True))
        # Semantic analysis does strictly more work.
        assert online > offline

    def test_profile_size_grows_with_clauses(self):
        small = translate(program_with_clauses(4), False).profiles[0]
        large = translate(program_with_clauses(64), False).profiles[0]
        assert len(profile_to_bytes(large)) > len(profile_to_bytes(small))

    def test_translate_file_produces_all_artifacts(self):
        with tempfile.TemporaryDirectory() as workdir:
            source_path = os.path.join(workdir, "pipe.psqlj")
            with open(source_path, "w") as handle:
                handle.write(program_with_clauses(8))
            translator = Translator(
                TranslationOptions(exemplar=exemplar())
            )
            result = translator.translate_file(
                source_path, output_dir=workdir, package=True
            )
            assert os.path.exists(result.module_path)
            assert len(result.profile_paths) == 1
            assert os.path.exists(result.pjar_path)


@pytest.mark.benchmark(group="e10-translate")
def test_offline_translation_speed(benchmark):
    source = program_with_clauses(16)
    result = benchmark(translate, source, False)
    assert result.profiles


@pytest.mark.benchmark(group="e10-translate")
def test_online_translation_speed(benchmark):
    source = program_with_clauses(16)
    result = benchmark(translate, source, True)
    assert result.profiles


@pytest.mark.benchmark(group="e10-customize")
def test_customization_speed(benchmark):
    profile = translate(program_with_clauses(16), False).profiles[0]

    def customize():
        customize_profile(profile, "acme")
        customize_profile(profile, "zenith")

    benchmark(customize)
