"""INSERT / UPDATE / DELETE execution.

Each function takes the parsed statement, the executing session and the
dynamic parameter values, performs privilege and constraint checks, and
mutates the target table through the transactional
:class:`~repro.engine.storage.RowStore`.

UPDATE supports the SQLJ Part 2 attribute-path targets from the paper::

    update emps set home_addr>>zip = '99123' where name = 'Bob Smith'

which copy the stored object, mutate the mapped Python field, and store
the result back (value semantics).
"""

from __future__ import annotations

import copy
from typing import Any, List, Optional, Sequence, Tuple

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Column, Table
from repro.engine.expressions import Env, ExpressionCompiler, RowShape
from repro.engine.planner import plan_query, table_shape
from repro.engine.storage import RowStore, store_value
from repro.engine.virtual import VirtualTable
from repro.sqltypes import ObjectType

__all__ = ["execute_insert", "execute_update", "execute_delete"]


def _check_not_null(column: Column, value: Any, table: Table) -> None:
    if value is None and column.not_null:
        raise errors.NotNullViolationError(
            f"column {column.name!r} of table {table.name!r} is NOT NULL"
        )


def _unique_columns(table: Table) -> List[int]:
    return [
        position
        for position, column in enumerate(table.columns)
        if column.unique
    ]


def _values_collide(left: Any, right: Any) -> bool:
    from repro.sqltypes import compare_values

    if left is None or right is None:
        return False  # NULLs never collide (SQL UNIQUE semantics)
    try:
        return compare_values(left, right) == 0
    except errors.SQLException:
        return False


def _check_unique(
    table: Table,
    row: List[Any],
    exclude_positions: Optional[set] = None,
    extra_rows: Sequence[List[Any]] = (),
) -> None:
    """Raise if ``row`` collides with stored (or pending) rows on any
    UNIQUE/PRIMARY KEY column."""
    for position in _unique_columns(table):
        value = row[position]
        if value is None:
            continue
        column = table.columns[position]
        label = "PRIMARY KEY" if column.primary_key else "UNIQUE"
        for index, existing in enumerate(table.rows):
            if exclude_positions and index in exclude_positions:
                continue
            if _values_collide(existing[position], value):
                raise errors.UniqueViolationError(
                    f"duplicate value for {label} column "
                    f"{column.name!r} of table {table.name!r}"
                )
        for pending in extra_rows:
            if pending is not row and _values_collide(
                pending[position], value
            ):
                raise errors.UniqueViolationError(
                    f"duplicate value for {label} column "
                    f"{column.name!r} of table {table.name!r}"
                )


def _default_value(
    column: Column, session: Any, params: Sequence[Any]
) -> Any:
    if column.default is None:
        return None
    compiler = ExpressionCompiler(RowShape([]), session)
    return compiler.compile(column.default).fn(Env([], params, None, session))


def _reject_virtual(table: Table) -> None:
    if isinstance(table, VirtualTable):
        raise table.readonly_error("modify")


def execute_insert(
    stmt: ast.Insert, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("INSERT", stmt.table)
    _reject_virtual(table)

    if stmt.columns is None:
        target_positions = list(range(len(table.columns)))
    else:
        target_positions = [
            table.column_position(name) for name in stmt.columns
        ]
        if len(set(target_positions)) != len(target_positions):
            raise errors.SQLSyntaxError(
                "duplicate column in INSERT column list"
            )

    store = RowStore(table, session.transaction_log)
    inserted = 0

    if isinstance(stmt.source, ast.ValuesSource):
        compiler = ExpressionCompiler(RowShape([]), session)
        for value_row in stmt.source.rows:
            if len(value_row) != len(target_positions):
                raise errors.SQLSyntaxError(
                    f"INSERT expects {len(target_positions)} values, "
                    f"got {len(value_row)}"
                )
            env = Env([], params, None, session)
            values = [compiler.compile(expr).fn(env) for expr in value_row]
            row = _build_row(
                table, target_positions, values, session, params
            )
            _check_unique(table, row)
            store.insert(row)
            inserted += 1
        session.after_mutation(rows=inserted)
        return inserted

    plan, shape = plan_query(stmt.source, session)
    if len(shape) != len(target_positions):
        raise errors.SQLSyntaxError(
            f"INSERT expects {len(target_positions)} columns, the query "
            f"supplies {len(shape)}"
        )
    for source_row in plan.run(session, params):
        row = _build_row(
            table, target_positions, source_row, session, params
        )
        _check_unique(table, row)
        store.insert(row)
        inserted += 1
    session.after_mutation(rows=inserted)
    return inserted


def _build_row(
    table: Table,
    target_positions: List[int],
    values: Sequence[Any],
    session: Any,
    params: Sequence[Any],
) -> List[Any]:
    row: List[Any] = [None] * len(table.columns)
    supplied = set(target_positions)
    for position, value in zip(target_positions, values):
        column = table.columns[position]
        coerced = column.descriptor.coerce(value)
        _check_udt_usage(session, column)
        row[position] = store_value(coerced, column.descriptor)
    for position, column in enumerate(table.columns):
        if position not in supplied:
            default = _default_value(column, session, params)
            row[position] = store_value(
                column.descriptor.coerce(default), column.descriptor
            )
    for position, column in enumerate(table.columns):
        _check_not_null(column, row[position], table)
    return row


def _check_udt_usage(session: Any, column: Column) -> None:
    descriptor = column.descriptor
    if isinstance(descriptor, ObjectType):
        udt = session.catalog.types.get(descriptor.udt_name)
        if udt is not None:
            session.check_usage_privilege(udt)


def _matching_positions(
    table: Table,
    where: Optional[ast.Expression],
    session: Any,
    params: Sequence[Any],
) -> List[int]:
    if where is None:
        return list(range(len(table.rows)))
    shape = table_shape(table)
    compiler = ExpressionCompiler(shape, session)
    predicate = compiler.compile_predicate(where)
    return [
        index
        for index, row in enumerate(table.rows)
        if predicate(Env(row, params, None, session))
    ]


def execute_delete(
    stmt: ast.Delete, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("DELETE", stmt.table)
    _reject_virtual(table)
    positions = _matching_positions(table, stmt.where, session, params)
    if positions:
        RowStore(table, session.transaction_log).delete_at(positions)
    session.after_mutation(rows=len(positions))
    return len(positions)


def execute_update(
    stmt: ast.Update, session: Any, params: Sequence[Any]
) -> int:
    table = session.catalog.get_table(stmt.table)
    session.check_table_privilege("UPDATE", stmt.table)
    _reject_virtual(table)
    shape = table_shape(table)
    compiler = ExpressionCompiler(shape, session)

    # Compile and validate assignments up front, independent of row
    # matches: target columns must exist and value types must be
    # assignable (strong typing at plan time, not first-match time).
    compiled: List[Tuple[ast.Assignment, Any]] = []
    for assignment in stmt.assignments:
        value = compiler.compile(assignment.value)
        target = assignment.target
        if isinstance(target, str):
            position = table.column_position(target)
            column = table.columns[position]
            if isinstance(assignment.value, ast.Literal):
                column.descriptor.coerce(assignment.value.value)
            elif value.descriptor is not None and not \
                    column.descriptor.assignable_from(value.descriptor):
                raise errors.InvalidCastError(
                    f"cannot store {value.descriptor.sql_spelling()} "
                    f"into column {column.name!r} "
                    f"({column.descriptor.sql_spelling()})"
                )
        else:
            position = table.column_position(target.column)
            descriptor = table.columns[position].descriptor
            if not isinstance(descriptor, ObjectType):
                raise errors.SQLSyntaxError(
                    f"column {target.column!r} is not of an object type; "
                    ">> assignment is not applicable"
                )
        compiled.append((assignment, value.fn))

    positions = _matching_positions(table, stmt.where, session, params)
    store = RowStore(table, session.transaction_log)

    # Evaluate all replacement rows against pre-update state, then apply.
    replacements: List[Tuple[int, List[Any]]] = []
    for position in positions:
        old_row = table.rows[position]
        env = Env(old_row, params, None, session)
        new_row = list(old_row)
        for assignment, value_fn in compiled:
            value = value_fn(env)
            _apply_assignment(table, new_row, assignment, value, session)
        for column, cell in zip(table.columns, new_row):
            _check_not_null(column, cell, table)
        replacements.append((position, new_row))

    replaced_positions = {position for position, _row in replacements}
    pending_rows = [row for _position, row in replacements]
    for _position, new_row in replacements:
        _check_unique(
            table,
            new_row,
            exclude_positions=replaced_positions,
            extra_rows=pending_rows,
        )

    for position, new_row in replacements:
        store.update_at(position, new_row)
    session.after_mutation(rows=len(replacements))
    return len(replacements)


def _apply_assignment(
    table: Table,
    row: List[Any],
    assignment: ast.Assignment,
    value: Any,
    session: Any,
) -> None:
    target = assignment.target
    if isinstance(target, str):
        position = table.column_position(target)
        column = table.columns[position]
        _check_udt_usage(session, column)
        row[position] = store_value(
            column.descriptor.coerce(value), column.descriptor
        )
        return

    # Part 2 attribute path: copy object, set the mapped field, store back.
    position = table.column_position(target.column)
    column = table.columns[position]
    descriptor = column.descriptor
    if not isinstance(descriptor, ObjectType):
        raise errors.SQLSyntaxError(
            f"column {target.column!r} is not of an object type; "
            ">> assignment is not applicable"
        )
    current = row[position]
    if current is None:
        raise errors.NullValueError(
            f"cannot assign attribute of NULL value in column "
            f"{target.column!r}"
        )
    updated = copy.deepcopy(current)
    node = updated
    path = target.attributes
    for attr_name in path[:-1]:
        node = _read_attribute(session, node, attr_name)
        if node is None:
            raise errors.NullValueError(
                f"intermediate attribute {attr_name!r} is NULL"
            )
    _write_attribute(session, node, path[-1], value)
    row[position] = updated


def _binding_for(session: Any, obj: Any, attr_name: str):
    udt = session.catalog.type_for_class(type(obj))
    if udt is None:
        raise errors.UndefinedTypeError(
            f"class {type(obj).__name__!r} is not registered as a SQL type"
        )
    binding = udt.find_attribute(attr_name)
    if binding is None:
        raise errors.UndefinedColumnError(
            f"type {udt.name!r} has no attribute {attr_name!r}"
        )
    return binding


def _read_attribute(session: Any, obj: Any, attr_name: str) -> Any:
    return getattr(obj, _binding_for(session, obj, attr_name).field_name)


def _write_attribute(
    session: Any, obj: Any, attr_name: str, value: Any
) -> None:
    binding = _binding_for(session, obj, attr_name)
    setattr(obj, binding.field_name, binding.descriptor.coerce(value))
