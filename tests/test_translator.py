"""Tests for the SQLJ Part 0 translator: scanning, checking, codegen."""

import importlib
import os
import sys

import pytest

from repro import errors
from repro import Database
from repro.profiles.serialization import save_profile
from repro import ConnectionContext
from repro.translator import (
    TranslationOptions,
    Translator,
    translate_file,
    translate_source,
)
from repro.translator.checker import CheckMessage, SQLChecker
from repro.translator.clauses import (
    ContextDecl,
    ExecutableClause,
    IteratorDecl,
    scan_source,
)
from repro.translator.hostvars import extract_host_variables, parse_fetch


class TestScanner:
    def test_passthrough_lines_preserved(self):
        program = scan_source("x = 1\ny = 2\n")
        assert [i.text for i in program.items] == ["x = 1", "y = 2"]

    def test_context_declaration(self):
        program = scan_source("#sql context Department;")
        decl = program.items[0]
        assert isinstance(decl, ContextDecl)
        assert decl.name == "Department"

    def test_positional_iterator(self):
        program = scan_source("#sql iterator ByPos (str, int);")
        decl = program.items[0]
        assert isinstance(decl, IteratorDecl)
        assert decl.positional
        assert decl.columns == [(None, "str"), (None, "int")]

    def test_named_iterator(self):
        program = scan_source(
            "#sql public iterator ByName (int year, str name);"
        )
        decl = program.items[0]
        assert not decl.positional
        assert decl.public
        assert decl.columns == [("year", "int"), ("name", "str")]

    def test_mixed_iterator_columns_rejected(self):
        with pytest.raises(errors.TranslationError):
            scan_source("#sql iterator Bad (int year, str);")

    def test_executable_clause(self):
        program = scan_source(
            "#sql { INSERT INTO emp VALUES (:n) };"
        )
        clause = program.items[0]
        assert isinstance(clause, ExecutableClause)
        assert clause.sql == "INSERT INTO emp VALUES (:n)"

    def test_context_expression(self):
        program = scan_source("#sql [dept] { DELETE FROM emp };")
        assert program.items[0].context_expr == "dept"

    def test_assignment_clause(self):
        program = scan_source(
            "#sql positer = { SELECT name FROM people };"
        )
        assert program.items[0].target == "positer"

    def test_multiline_clause(self):
        program = scan_source(
            "#sql positer = {\n"
            "    SELECT name, year\n"
            "    FROM people\n"
            "};\n"
        )
        clause = program.items[0]
        assert "FROM people" in clause.sql
        assert clause.line == 1

    def test_semicolon_inside_sql_string(self):
        program = scan_source(
            "#sql { INSERT INTO t VALUES ('a;b') };"
        )
        assert program.items[0].sql == "INSERT INTO t VALUES ('a;b')"

    def test_unterminated_clause(self):
        with pytest.raises(errors.TranslationError):
            scan_source("#sql { SELECT 1 }")

    def test_indentation_captured(self):
        program = scan_source("    #sql { DELETE FROM t };")
        assert program.items[0].indent == "    "

    def test_annotations_collected(self):
        program = scan_source("positer: ByPos\nother = 3\n")
        assert program.annotations == {"positer": "ByPos"}

    def test_public_on_executable_rejected(self):
        with pytest.raises(errors.TranslationError):
            scan_source("#sql public { DELETE FROM t };")


class TestHostVariables:
    def test_extraction_order(self):
        sql, variables = extract_host_variables(
            "INSERT INTO t VALUES (:a, :b, :a)"
        )
        assert sql == "INSERT INTO t VALUES (?, ?, ?)"
        assert [v.name for v in variables] == ["a", "b", "a"]
        assert all(v.mode == "IN" for v in variables)

    def test_modes(self):
        _sql, variables = extract_host_variables(
            "CALL best2(:OUT n1, :INOUT x, :IN region, :plain)"
        )
        assert [(v.name, v.mode) for v in variables] == [
            ("n1", "OUT"), ("x", "INOUT"), ("region", "IN"),
            ("plain", "IN"),
        ]

    def test_mode_keyword_as_variable_name(self):
        # ``:out`` alone is a variable named "out", not a mode.
        _sql, variables = extract_host_variables("SELECT :out FROM t")
        assert [(v.name, v.mode) for v in variables] == [("out", "IN")]

    def test_colon_in_string_untouched(self):
        sql, variables = extract_host_variables(
            "SELECT ':notavar' FROM t WHERE a = :x"
        )
        assert [v.name for v in variables] == ["x"]
        assert "':notavar'" in sql

    def test_malformed_hostvar(self):
        with pytest.raises(errors.TranslationError):
            extract_host_variables("SELECT : FROM t")

    def test_fetch_parsing(self):
        fetch = parse_fetch("FETCH :iter INTO :a, :b")
        assert fetch.iterator_var == "iter"
        assert fetch.targets == ["a", "b"]

    def test_fetch_requires_hostvar_targets(self):
        with pytest.raises(errors.TranslationError):
            parse_fetch("FETCH :iter INTO a, b")

    def test_non_fetch_returns_none(self):
        assert parse_fetch("SELECT 1 FROM t") is None


def exemplar_db():
    database = Database(name="exemplar")
    session = database.create_session(autocommit=True)
    session.execute(
        "create table people (name varchar(50), year integer)"
    )
    return database


GOOD_SOURCE = """
#sql iterator ByPos (str, int);
#sql public iterator ByName (int year, str name);

def insert_person(n, y):
    #sql { INSERT INTO people VALUES (:n, :y) };
    pass

def read_positional():
    out = []
    it: ByPos
    #sql it = { SELECT name, year FROM people };
    name = None
    year = 0
    while True:
        #sql { FETCH :it INTO :name, :year };
        if it.endfetch():
            break
        out.append((name, year))
    it.close()
    return out

def read_named():
    out = []
    it: ByName
    #sql it = { SELECT name, year FROM people };
    while it.next():
        out.append((it.year(), it.name()))
    it.close()
    return out
"""


class TestChecking:
    def test_good_source_translates(self):
        options = TranslationOptions(exemplar=exemplar_db())
        result = translate_source(GOOD_SOURCE, "good_mod", options)
        assert result.profiles
        assert not [m for m in result.messages if m.is_error]

    def test_offline_catches_syntax_errors(self):
        source = "#sql { SELEKT name FROM people };\n"
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "bad_syntax")
        assert "syntax" in str(info.value).lower()

    def test_online_catches_unknown_table(self):
        source = "#sql { SELECT name FROM persons };\n"
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "bad_table", options)
        assert "persons" in str(info.value)

    def test_online_catches_unknown_column(self):
        source = "#sql { SELECT wages FROM people };\n"
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError):
            translate_source(source, "bad_col", options)

    def test_online_catches_type_mismatch(self):
        source = "#sql { SELECT name FROM people WHERE year = 'nope' };\n"
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError):
            translate_source(source, "bad_type", options)

    def test_online_catches_insert_arity(self):
        source = "#sql { INSERT INTO people VALUES (:a) };\n"
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError):
            translate_source(source, "bad_arity", options)

    def test_offline_alone_misses_semantic_errors(self):
        source = "#sql { SELECT wages FROM persons };\n"
        result = translate_source(source, "not_checked")
        assert result.python_source  # translates fine without exemplar

    def test_iterator_arity_mismatch_detected(self):
        source = (
            "#sql iterator ByPos (str, int, float);\n"
            "it: ByPos\n"
            "#sql it = { SELECT name, year FROM people };\n"
        )
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "bad_iter", options)
        assert "3 columns" in str(info.value)

    def test_iterator_type_mismatch_detected(self):
        source = (
            "#sql iterator ByPos (int, int);\n"
            "it: ByPos\n"
            "#sql it = { SELECT name, year FROM people };\n"
        )
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError):
            translate_source(source, "bad_iter_types", options)

    def test_named_iterator_missing_column_detected(self):
        source = (
            "#sql iterator ByName (int wages);\n"
            "it: ByName\n"
            "#sql it = { SELECT name, year FROM people };\n"
        )
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError):
            translate_source(source, "bad_named", options)

    def test_unannotated_iterator_variable_rejected(self):
        source = "#sql it = { SELECT name FROM people };\n"
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "no_annotation")
        assert "annotation" in str(info.value)

    def test_undeclared_iterator_class_rejected(self):
        source = (
            "it: SomewhereElse\n"
            "#sql it = { SELECT name FROM people };\n"
        )
        with pytest.raises(errors.TranslationError):
            translate_source(source, "undeclared_iter")

    def test_fetch_arity_checked(self):
        source = (
            "#sql iterator ByPos (str, int);\n"
            "it: ByPos\n"
            "#sql it = { SELECT name, year FROM people };\n"
            "#sql { FETCH :it INTO :only_one };\n"
        )
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "bad_fetch")
        assert "FETCH" in str(info.value)

    def test_fetch_on_named_iterator_rejected(self):
        source = (
            "#sql iterator ByName (str name);\n"
            "it: ByName\n"
            "#sql it = { SELECT name FROM people };\n"
            "#sql { FETCH :it INTO :x };\n"
        )
        with pytest.raises(errors.TranslationError):
            translate_source(source, "named_fetch")

    def test_assignment_requires_query(self):
        source = (
            "#sql iterator ByPos (str);\n"
            "it: ByPos\n"
            "#sql it = { DELETE FROM people };\n"
        )
        with pytest.raises(errors.TranslationError):
            translate_source(source, "assign_update")

    def test_call_arity_checked_online(self):
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute(
            "create procedure noop() no sql external name "
            "'tests.paper_assets.emps_insert_statements' "
            "language python parameter style python"
        )
        options = TranslationOptions(exemplar=database)
        with pytest.raises(errors.TranslationError):
            translate_source(
                "#sql { CALL noop(:x) };\n", "bad_call", options
            )

    def test_plugin_checker_invoked(self):
        class VetoChecker(SQLChecker):
            name = "veto"

            def check(self, entry):
                return [self._error("vetoed by plugin", entry)]

        options = TranslationOptions(checkers=[VetoChecker()])
        with pytest.raises(errors.TranslationError) as info:
            translate_source(
                "#sql { DELETE FROM people };\n", "veto_mod", options
            )
        assert "vetoed by plugin" in str(info.value)

    def test_context_scoped_checker(self):
        class CountChecker(SQLChecker):
            name = "count"

            def __init__(self):
                self.seen = []

            def check(self, entry):
                self.seen.append(entry.sql)
                return []

        scoped = CountChecker()
        options = TranslationOptions(
            context_checkers={"dept": [scoped]}
        )
        translate_source(
            "#sql context Dept;\n"
            "#sql [dept] { DELETE FROM a };\n"
            "#sql { DELETE FROM b };\n",
            "scoped_mod",
            options,
        )
        assert scoped.seen == ["DELETE FROM a"]

    def test_warnings_as_errors(self):
        class WarnChecker(SQLChecker):
            name = "warn"

            def check(self, entry):
                return [self._warning("just a warning", entry)]

        source = "#sql { DELETE FROM people };\n"
        lenient = TranslationOptions(checkers=[WarnChecker()])
        translate_source(source, "warn_ok", lenient)
        strict = TranslationOptions(
            checkers=[WarnChecker()], warnings_as_errors=True
        )
        with pytest.raises(errors.TranslationError):
            translate_source(source, "warn_fail", strict)

    def test_error_carries_all_messages(self):
        source = (
            "#sql { SELEKT 1 };\n"
            "#sql { ALSO BAD };\n"
        )
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "multi_bad")
        messages = info.value.messages
        assert len([m for m in messages if m.is_error]) == 2

    def test_invalid_module_name(self):
        with pytest.raises(errors.TranslationError):
            translate_source("x = 1\n", "not-valid!")


class TestProfileConstruction:
    def test_entries_in_clause_order(self):
        result = translate_source(
            "#sql { DELETE FROM a };\n#sql { DELETE FROM b };\n",
            "order_mod",
        )
        entries = list(result.profiles[0].data)
        assert [e.sql for e in entries] == [
            "DELETE FROM a", "DELETE FROM b",
        ]

    def test_roles_classified(self):
        result = translate_source(
            "it: It\n"
            "#sql iterator It (int);\n"
            "#sql it = { SELECT 1 };\n"
            "#sql { UPDATE t SET a = 1 };\n"
            "#sql { CALL p() };\n"
            "#sql { COMMIT };\n"
            "#sql { CREATE TABLE x (a integer) };\n",
            "roles_mod",
        )
        roles = [e.role for e in result.profiles[0].data]
        assert roles == ["QUERY", "UPDATE", "CALL", "TXN", "DDL"]

    def test_profile_per_context_expression(self):
        result = translate_source(
            "#sql context Ctx;\n"
            "#sql { DELETE FROM a };\n"
            "#sql [c1] { DELETE FROM b };\n"
            "#sql [c1] { DELETE FROM c };\n"
            "#sql [c2] { DELETE FROM d };\n",
            "multi_profile",
        )
        assert len(result.profiles) == 3
        sizes = [p.entry_count() for p in result.profiles]
        assert sizes == [1, 2, 1]

    def test_host_variables_recorded(self):
        result = translate_source(
            "#sql { INSERT INTO t VALUES (:x, :y) };\n", "hv_mod"
        )
        entry = result.profiles[0].get_entry(0)
        assert [p.name for p in entry.param_types] == ["x", "y"]

    def test_described_result_types_recorded(self):
        options = TranslationOptions(exemplar=exemplar_db())
        result = translate_source(
            "#sql iterator It (str, int);\n"
            "it: It\n"
            "#sql it = { SELECT name, year FROM people };\n",
            "described_mod",
            options,
        )
        entry = result.profiles[0].get_entry(0)
        assert [t.name for t in entry.result_types] == ["name", "year"]
        assert entry.result_types[0].sql_type == "VARCHAR(50)"
        assert entry.iterator_class == "It"


class TestGeneratedCode:
    def run_translated(self, tmp_path, source, module_name,
                       database):
        """Translate, write to disk, import, return the module."""
        options = TranslationOptions(exemplar=database)
        translator = Translator(options)
        result = translator.translate_source(source, module_name)
        module_path = os.path.join(str(tmp_path), module_name + ".py")
        with open(module_path, "w") as handle:
            handle.write(result.python_source)
        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module(module_name)
            return importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))

    def test_end_to_end_execution(self, tmp_path):
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute(
            "insert into people values ('Ann', 1990), ('Ben', 1995)"
        )
        context = ConnectionContext(database)
        ConnectionContext.set_default_context(context)
        module = self.run_translated(
            tmp_path, GOOD_SOURCE, "e2e_mod", database
        )
        module.insert_person("Cal", 1999)
        assert module.read_positional() == [
            ("Ann", 1990), ("Ben", 1995), ("Cal", 1999),
        ]
        assert module.read_named() == [
            (1990, "Ann"), (1995, "Ben"), (1999, "Cal"),
        ]

    def test_explicit_context_execution(self, tmp_path):
        source = (
            "#sql context Payroll;\n"
            "def wipe(ctx):\n"
            "    #sql [ctx] { DELETE FROM people };\n"
            "    pass\n"
        )
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute("insert into people values ('Ann', 1990)")
        module = self.run_translated(
            tmp_path, source, "ctx_mod", database
        )
        context = module.Payroll(database)
        module.wipe(context)
        assert session.execute(
            "select count(*) from people"
        ).rows == [[0]]

    def test_update_counts_surface_on_context(self, tmp_path):
        source = (
            "def bump(ctx, amount):\n"
            "    #sql [ctx] { UPDATE people SET year = year + :amount };\n"
            "    pass\n"
        )
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute(
            "insert into people values ('Ann', 1990), ('Ben', 1995)"
        )
        module = self.run_translated(tmp_path, source, "count_mod",
                                     database)
        context = ConnectionContext(database)
        module.bump(context, 1)
        assert context.execution_context.update_count == 2

    def test_translate_file_and_package(self, tmp_path):
        source_path = tmp_path / "filed.psqlj"
        source_path.write_text("#sql { DELETE FROM people };\n")
        options = TranslationOptions(exemplar=exemplar_db())
        result = translate_file(
            str(source_path), output_dir=str(tmp_path / "out"),
            options=options, package=True,
        )
        assert os.path.exists(result.module_path)
        assert all(os.path.exists(p) for p in result.profile_paths)
        assert os.path.exists(result.pjar_path)

    def test_generated_source_mentions_profiles(self):
        result = translate_source(
            "#sql { DELETE FROM t };\n", "gen_mod"
        )
        assert "load_profile" in result.python_source
        assert "gen_mod_SJProfile0" in result.python_source


OUT_PARAMS_PROGRAM = """
def top_two(region):
    n1 = None
    id1 = None
    r1 = 0
    s1 = None
    n2 = None
    id2 = None
    r2 = 0
    s2 = None
    #sql { CALL best2(:OUT n1, :OUT id1, :OUT r1, :OUT s1,
                      :OUT n2, :OUT id2, :OUT r2, :OUT s2,
                      :IN region) };
    return (n1, s1, n2, s2)

def scalar_region(state):
    r = 0
    #sql r = { VALUES( region_of(:state) ) };
    return r
"""


class TestOutHostVariablesAndValues:
    def test_call_with_out_host_variables(self, payroll, db, tmp_path):
        import importlib
        import sys

        from repro.profiles.serialization import save_profile
        from repro import ConnectionContext

        options = TranslationOptions(exemplar=db)
        result = Translator(options).translate_source(
            OUT_PARAMS_PROGRAM, "outvars_mod"
        )
        (tmp_path / "outvars_mod.py").write_text(result.python_source)
        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        ConnectionContext.set_default_context(ConnectionContext(db))
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("outvars_mod")
            module = importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))

        n1, s1, n2, s2 = module.top_two(2)
        assert n1 == "Alice"
        assert str(s1) == "100.50"
        assert n2 == "Hank"
        assert module.scalar_region("CA") == 3

    def test_out_variable_outside_call_rejected(self):
        source = "#sql { DELETE FROM t WHERE a = :OUT x };\n"
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "badmode_mod")
        assert "OUT/INOUT host variables" in str(info.value)

    def test_mode_mismatch_detected_online(self, payroll, db):
        # best2's ninth parameter is IN; declaring it :OUT is an error.
        source = (
            "def f(a):\n"
            "    #sql { CALL correct_states(:OUT a, :IN a) };\n"
            "    pass\n"
        )
        options = TranslationOptions(exemplar=db)
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "mismatch_mod", options)
        assert "declared :OUT" in str(info.value)

    def test_values_clause_records_query_role(self):
        result = translate_source(
            "x = 0\n#sql x = { VALUES( 1 + 2 ) };\n", "values_mod"
        )
        entry = result.profiles[0].get_entry(0)
        assert entry.role == "QUERY"
        assert entry.sql == "SELECT ( 1 + 2 )"

    def test_values_needs_no_iterator_annotation(self):
        # Unlike query assignment, scalar assignment works unannotated.
        result = translate_source(
            "#sql x = { VALUES( 41 + 1 ) };\n", "values_mod2"
        )
        assert "scalar(" in result.python_source

    def test_inout_host_variable(self, db, tmp_path):
        import importlib
        import sys

        from repro.procedures import build_par
        from repro.profiles.serialization import save_profile
        from repro import ConnectionContext

        session = db.create_session(autocommit=True)
        par = build_par(
            str(tmp_path / "inout.par"),
            {"inoutmod": (
                "def double_it(container):\n"
                "    container[0] = container[0] * 2\n"
            )},
        )
        session.execute(f"call sqlj.install_par('{par}', 'iop')")
        session.execute(
            "create procedure double_it(inout x integer) no sql "
            "external name 'iop:inoutmod.double_it' "
            "language python parameter style python"
        )
        source = (
            "def run(v):\n"
            "    #sql { CALL double_it(:INOUT v) };\n"
            "    return v\n"
        )
        options = TranslationOptions(exemplar=db)
        result = Translator(options).translate_source(source, "io_mod")
        (tmp_path / "io_mod.py").write_text(result.python_source)
        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        ConnectionContext.set_default_context(ConnectionContext(db))
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("io_mod")
            module = importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))
        assert module.run(21) == 42


SELECT_INTO_PROGRAM = """
def lookup(who):
    name = None
    year = 0
    #sql { SELECT name, year INTO :name, :year
           FROM people WHERE name = :who };
    return (name, year)
"""


class TestSelectInto:
    def run_module(self, source, module_name, database, tmp_path):
        options = TranslationOptions(exemplar=database)
        result = Translator(options).translate_source(source, module_name)
        (tmp_path / f"{module_name}.py").write_text(result.python_source)
        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        ConnectionContext.set_default_context(
            ConnectionContext(database)
        )
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module(module_name)
            return importlib.reload(module)
        finally:
            sys.path.remove(str(tmp_path))

    def test_single_row_select_into(self, tmp_path):
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute(
            "insert into people values ('Ann', 1990), ('Ben', 1995)"
        )
        module = self.run_module(
            SELECT_INTO_PROGRAM, "sinto_mod", database, tmp_path
        )
        assert module.lookup("Ann") == ("Ann", 1990)

    def test_no_row_raises_not_found(self, tmp_path):
        database = exemplar_db()
        module = self.run_module(
            SELECT_INTO_PROGRAM, "sinto_empty_mod", database, tmp_path
        )
        with pytest.raises(errors.SQLException) as info:
            module.lookup("Nobody")
        assert info.value.sqlstate == "02000"

    def test_many_rows_raises_cardinality(self, tmp_path):
        database = exemplar_db()
        session = database.create_session(autocommit=True)
        session.execute(
            "insert into people values ('Dup', 1), ('Dup', 2)"
        )
        module = self.run_module(
            SELECT_INTO_PROGRAM, "sinto_dup_mod", database, tmp_path
        )
        with pytest.raises(errors.CardinalityError):
            module.lookup("Dup")

    def test_into_arity_checked_at_translate_time(self):
        source = (
            "def f(w):\n"
            "    a = None\n"
            "    #sql { SELECT name, year INTO :a FROM people };\n"
            "    return a\n"
        )
        options = TranslationOptions(exemplar=exemplar_db())
        with pytest.raises(errors.TranslationError) as info:
            translate_source(source, "bad_into", options)
        assert "INTO" in str(info.value)

    def test_into_clause_not_sent_to_database(self):
        result = translate_source(
            "a = None\n"
            "#sql { SELECT name INTO :a FROM people };\n",
            "into_sql_mod",
        )
        entry = result.profiles[0].get_entry(0)
        assert "INTO" not in entry.sql
        assert entry.sql == "SELECT name FROM people"

    def test_non_hostvar_target_rejected(self):
        with pytest.raises(errors.TranslationError):
            translate_source(
                "#sql { SELECT name INTO somewhere FROM people };\n",
                "bad_target_mod",
            )

    def test_into_inside_subquery_not_confused(self):
        # INTO only triggers at top level; none here.
        result = translate_source(
            "it: It\n"
            "#sql iterator It (int);\n"
            "#sql it = { SELECT (SELECT 1) FROM people };\n",
            "nested_mod",
        )
        assert result.profiles
