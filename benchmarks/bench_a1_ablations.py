"""A1 — Ablations of the runtime's two main design choices.

DESIGN.md calls out two performance-bearing decisions in the profile
runtime; this bench measures what each buys by disabling it:

* **Per-connection RTStatement caching** (`ConnectedProfile` keeps the
  statement built for each entry).  Ablation: clear the cache before
  every execution, forcing re-preparation each time — the behaviour a
  naive runtime would have.
* **Shipping pre-parsed statements in dialect customizations**
  (`DialectCustomization` stores ASTs, so building an RTStatement skips
  the parser).  Ablation: build statements through the default
  customization, which must parse the SQL text.

Expected shape: caching dominates (it amortises both parse and plan);
pre-parsed customizations still help when statements must be rebuilt
(new connections), cutting parse out of the build cost.
"""

import time

import pytest

from benchmarks.common import fresh_name, make_emps_db, report
from repro.profiles.customization import (
    ConnectedProfile,
    DefaultCustomization,
    DialectCustomization,
)
from repro.profiles.customizer import customize_profile
from repro.profiles.model import EntryInfo, Profile

SQL = (
    "SELECT state, COUNT(*) FROM emps WHERE sales > ? "
    "GROUP BY state ORDER BY state LIMIT 3"
)


def make_profile():
    profile = Profile(name=fresh_name("a1"), context_type="Default")
    profile.data.add(EntryInfo(index=0, sql=SQL, role="QUERY"))
    return profile


@pytest.fixture(scope="module")
def engine():
    return make_emps_db(200, name="a1")


def run_cached(connected, executions):
    for _ in range(executions):
        connected.execute(0, [1])


def run_uncached(connected, executions):
    for _ in range(executions):
        connected._statements.clear()  # ablation: no statement cache
        connected.execute(0, [1])


class TestStatementCacheAblation:
    def test_cache_speeds_up_repeated_execution(self, engine):
        _database, session = engine
        profile = make_profile()

        def best_of(fn, *args, repeats=3):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                fn(*args)
                best = min(best, time.perf_counter() - start)
            return best

        connected = ConnectedProfile(profile, session)
        cached = best_of(run_cached, connected, 100)
        uncached = best_of(run_uncached, connected, 100)
        report(
            "A1a: RTStatement cache (100 executions)",
            [
                ("cached (default design)", f"{cached * 1000:.1f}ms"),
                ("cache ablated", f"{uncached * 1000:.1f}ms"),
                ("ratio", f"{uncached / cached:.2f}x"),
            ],
            ("configuration", "time"),
        )
        assert uncached > cached


class TestPreparsedCustomizationAblation:
    def test_preparsed_statements_build_faster(self, engine):
        _database, session = engine
        profile = make_profile()
        customize_profile(profile, "standard")
        dialect_customization = profile.customizations[0]
        assert isinstance(dialect_customization, DialectCustomization)
        default_customization = DefaultCustomization()
        entry = profile.get_entry(0)

        def build_many(customization, count):
            start = time.perf_counter()
            for _ in range(count):
                statement = customization.make_statement(entry, session)
                statement.execute([1])
            return time.perf_counter() - start

        preparsed = min(
            build_many(dialect_customization, 100) for _ in range(3)
        )
        parsing = min(
            build_many(default_customization, 100) for _ in range(3)
        )
        report(
            "A1b: statement build cost (100 fresh builds + executes)",
            [
                ("pre-parsed customization", f"{preparsed * 1000:.1f}ms"),
                ("default (parses text)", f"{parsing * 1000:.1f}ms"),
                ("ratio", f"{parsing / preparsed:.2f}x"),
            ],
            ("configuration", "time"),
        )
        assert preparsed < parsing


@pytest.mark.benchmark(group="a1-cache")
def test_cached_execution(benchmark, engine):
    _database, session = engine
    connected = ConnectedProfile(make_profile(), session)
    benchmark(connected.execute, 0, [1])


@pytest.mark.benchmark(group="a1-cache")
def test_uncached_execution(benchmark, engine):
    _database, session = engine
    connected = ConnectedProfile(make_profile(), session)

    def no_cache():
        connected._statements.clear()
        return connected.execute(0, [1])

    benchmark(no_cache)
