"""Engine-level plan cache: hits, invalidation, and concurrency.

``Session.execute`` caches compiled plans for SELECT / set-operation
statements keyed by ``(sql, dialect, user)``; every catalog mutation
(DDL, GRANT/REVOKE) bumps ``Catalog.version`` and invalidates stale
entries.  These tests pin the cache's observable contract: repeated
statements hit, schema changes replan, revoked users cannot ride a
cached plan past a privilege check, and concurrent DDL never produces
wrong answers.
"""

from __future__ import annotations

import pytest

from repro import errors, observability
from repro import Database
from repro.engine.plancache import CachedPlan, PlanCache
from repro.testing import run_concurrent


def _counter(name):
    return observability.snapshot()["counters"].get(name, 0)


def _explain(session, sql):
    return "\n".join(
        row[0] for row in session.execute("explain " + sql).rows
    )


def _entry(tag, version):
    return CachedPlan(None, tag, None, version)


class TestPlanCacheUnit:
    def test_lru_eviction(self):
        cache = PlanCache(capacity=2)
        cache.put(("a", "std", "dba"), _entry("A", 1))
        cache.put(("b", "std", "dba"), _entry("B", 1))
        assert cache.get(("a", "std", "dba"), 1).plan == "A"
        cache.put(("c", "std", "dba"), _entry("C", 1))
        assert len(cache) == 2
        # b was least recently used (a was touched by get) — evicted.
        assert cache.get(("b", "std", "dba"), 1) is None
        assert cache.get(("c", "std", "dba"), 1).plan == "C"

    def test_stale_version_evicts(self):
        cache = PlanCache()
        cache.put(("q", "std", "dba"), _entry("plan", 7))
        assert cache.get(("q", "std", "dba"), 8) is None
        assert len(cache) == 0

    def test_clear(self):
        cache = PlanCache()
        cache.put(("q", "std", "dba"), _entry("plan", 1))
        cache.clear()
        assert len(cache) == 0


class TestPlanCacheHits:
    def test_repeated_select_hits(self, emps):
        emps.execute("select name from emps where sales > 100")
        before = _counter("plan_cache.hits")
        for _ in range(5):
            rows = emps.execute(
                "select name from emps where sales > 100"
            ).rows
        assert _counter("plan_cache.hits") == before + 5
        assert rows  # cached plan still returns the data

    def test_different_sql_misses(self, emps):
        before = _counter("plan_cache.misses")
        emps.execute("select name from emps")
        emps.execute("select sales from emps")
        assert _counter("plan_cache.misses") >= before + 2

    def test_parameters_reuse_one_plan(self, emps):
        emps.execute("select name from emps where sales > ?", (0,))
        before = _counter("plan_cache.hits")
        first = emps.execute(
            "select name from emps where sales > ?", (100,)
        ).rows
        second = emps.execute(
            "select name from emps where sales > ?", (99999,)
        ).rows
        assert _counter("plan_cache.hits") == before + 2
        assert first != second  # parameters still applied per execution

    def test_distinct_users_cached_separately(self, db, emps):
        emps.execute("grant select on emps to smith")
        smith = db.create_session(user="smith", autocommit=True)
        emps.execute("select name from emps")
        before = _counter("plan_cache.hits")
        smith.execute("select name from emps")
        # Different user: no hit on dba's entry.
        assert _counter("plan_cache.hits") == before

    def test_non_queries_not_cached(self, session):
        session.execute("create table nq (k integer)")
        before = _counter("plan_cache.misses")
        session.execute("insert into nq values (1)")
        session.execute("insert into nq values (1)")
        assert _counter("plan_cache.misses") == before

    def test_cache_disabled(self, emps):
        db = Database(name="nocache", plan_cache_size=0)
        assert db.plan_cache is None
        session = db.create_session(autocommit=True)
        session.execute("create table t (k integer)")
        before = _counter("plan_cache.hits")
        session.execute("select * from t")
        session.execute("select * from t")
        assert _counter("plan_cache.hits") == before


class TestInvalidation:
    def test_create_index_changes_cached_plan(self, session):
        session.execute("create table t (k integer)")
        for i in range(20):
            session.execute(f"insert into t values ({i})")
        sql = "select * from t where k = 5"
        session.execute(sql)  # populate the cache with a SeqScan plan
        session.execute("create index tk on t (k)")
        assert "IndexScan using tk on t" in _explain(session, sql)
        assert session.execute(sql).rows == [[5]]

    def test_drop_index_changes_cached_plan(self, session):
        session.execute("create table t (k integer)")
        session.execute("insert into t values (5)")
        session.execute("create index tk on t (k)")
        sql = "select * from t where k = 5"
        assert session.execute(sql).rows == [[5]]
        session.execute("drop index tk")
        assert "IndexScan" not in _explain(session, sql)
        assert session.execute(sql).rows == [[5]]

    def test_alter_table_invalidates(self, session):
        session.execute("create table t (k integer)")
        session.execute("insert into t values (1)")
        assert session.execute("select * from t").rows == [[1]]
        session.execute("alter table t add column v varchar(5)")
        # The cached plan predates the new column; a hit would return
        # one-column rows.
        assert session.execute("select * from t").rows == [[1, None]]

    def test_drop_table_invalidates(self, session):
        session.execute("create table t (k integer)")
        session.execute("select * from t")
        session.execute("drop table t")
        with pytest.raises(errors.UndefinedTableError):
            session.execute("select * from t")

    def test_revoke_invalidates(self, db, emps):
        emps.execute("grant select on emps to smith")
        smith = db.create_session(user="smith", autocommit=True)
        assert smith.execute("select name from emps").rows
        emps.execute("revoke select on emps from smith")
        # The cached plan must not let smith bypass the privilege check.
        with pytest.raises(errors.PrivilegeError):
            smith.execute("select name from emps")

    def test_prepared_statement_replans_after_ddl(self, session):
        session.execute("create table t (k integer)")
        session.execute("insert into t values (1)")
        prepared = session.prepare("select * from t")
        assert prepared.execute().rows == [[1]]
        session.execute("alter table t add column v varchar(5)")
        assert prepared.execute().rows == [[1, None]]


class TestConcurrency:
    def test_execute_races_ddl(self, db):
        session = db.create_session(autocommit=True)
        session.execute("create table t (k integer)")
        for i in range(50):
            session.execute(f"insert into t values ({i})")

        def reader(thread_index):
            local = db.create_session(autocommit=True)
            for _ in range(20):
                rows = local.execute(
                    "select k from t where k < 10"
                ).rows
                assert len(rows) == 10

        def ddl(thread_index):
            local = db.create_session(autocommit=True)
            for i in range(10):
                local.execute(
                    f"create index cix{thread_index}_{i} on t (k)"
                )
                local.execute(f"drop index cix{thread_index}_{i}")

        def worker(thread_index):
            if thread_index % 2:
                ddl(thread_index)
            else:
                reader(thread_index)

        run_concurrent(6, worker, timeout=60).raise_first()

    def test_concurrent_hits_are_exact(self, db):
        session = db.create_session(autocommit=True)
        session.execute("create table t (k integer)")
        session.execute("insert into t values (1)")
        session.execute("select k from t")  # prime the cache
        before = _counter("plan_cache.hits")

        def worker(thread_index):
            local = db.create_session(autocommit=True)
            for _ in range(25):
                assert local.execute("select k from t").rows == [[1]]

        run_concurrent(4, worker).raise_first()
        assert _counter("plan_cache.hits") == before + 100


class TestTracingIntegration:
    def test_cache_hit_trace_shape(self, emps):
        import io

        from repro.observability import tracing

        emps.execute("select name from emps")  # prime the cache
        try:
            tracer = tracing.enable_tracing("json", io.StringIO())
            emps.execute("select name from emps")
        finally:
            tracing.disable_tracing()
        root = tracer.finished[-1]
        assert root.name == "statement"
        assert root.attributes.get("cached") is True
        names = [span.name for span, _depth in root.walk()]
        # No parse/plan work on a hit — straight to execution.
        assert names == ["statement", "execute", "fetch"]

    def test_cache_miss_trace_shape_unchanged(self, emps):
        import io

        from repro.observability import tracing

        try:
            tracer = tracing.enable_tracing("json", io.StringIO())
            emps.execute("select id from emps")
        finally:
            tracing.disable_tracing()
        root = tracer.finished[-1]
        names = [span.name for span, _depth in root.walk()]
        assert names == ["statement", "parse", "plan", "execute", "fetch"]
