"""Value-level operations with SQL semantics.

SQL three-valued logic treats NULL specially: any comparison involving
NULL is unknown, NULLs sort together, and arithmetic with NULL yields
NULL.  The executor and the expression evaluator route every comparison
through :func:`compare_values` so those rules live in one place.
"""

from __future__ import annotations

import decimal
from typing import Any, Optional

from repro import errors
from repro.sqltypes import typecodes
from repro.sqltypes.core import (
    BigIntType,
    BooleanType,
    CharType,
    ClobType,
    DecimalType,
    DoubleType,
    IntegerType,
    ObjectType,
    SmallIntType,
    TypeDescriptor,
    VarCharType,
)

__all__ = [
    "NULL",
    "is_null",
    "coerce",
    "cast_value",
    "compare_values",
    "common_supertype",
]

#: SQL NULL is represented as Python ``None`` throughout the system.
NULL = None


def is_null(value: Any) -> bool:
    """True if ``value`` is SQL NULL."""
    return value is None


def coerce(value: Any, descriptor: TypeDescriptor) -> Any:
    """Coerce ``value`` into ``descriptor``'s domain (NULL passes through)."""
    return descriptor.coerce(value)


def cast_value(value: Any, descriptor: TypeDescriptor) -> Any:
    """Explicit CAST conversion: storage coercion plus the cross-family
    conversions SQL CAST permits (numeric/boolean/datetime → character).
    """
    import datetime

    from repro.sqltypes import typecodes

    if value is None:
        return None
    if typecodes.is_character(descriptor.type_code) and not isinstance(
        value, str
    ):
        if isinstance(value, bool):
            text = "true" if value else "false"
        elif isinstance(
            value,
            (int, float, decimal.Decimal, datetime.date, datetime.time,
             datetime.datetime),
        ):
            text = str(value)
        else:
            raise errors.InvalidCastError(
                f"cannot cast {type(value).__name__} to "
                f"{descriptor.sql_spelling()}"
            )
        return descriptor.coerce(text)
    return descriptor.coerce(value)


def _comparison_key(value: Any) -> Any:
    """Normalise a non-null value for cross-type comparison."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return decimal.Decimal(str(value)) if isinstance(value, float) \
            else decimal.Decimal(value)
    if isinstance(value, decimal.Decimal):
        return value
    if isinstance(value, str):
        # SQL CHAR comparison ignores trailing blanks (PAD SPACE).
        return value.rstrip(" ")
    return value


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Three-valued SQL comparison.

    Returns ``-1``/``0``/``1`` like a comparator, or ``None`` when the
    result is *unknown* (either operand NULL).  Raises
    :class:`repro.errors.InvalidCastError` for incomparable domains.
    """
    if left is None or right is None:
        return None
    lk, rk = _comparison_key(left), _comparison_key(right)
    try:
        if lk == rk:
            return 0
        if lk < rk:
            return -1
        return 1
    except TypeError:
        # Part 2 objects may define __eq__ but not ordering; equality-only
        # comparison is still meaningful for them.  Mismatched *scalar*
        # domains (e.g. 1 vs 'one') stay errors.
        scalars = (str, bool, int, float, decimal.Decimal)
        if not (isinstance(lk, scalars) and isinstance(rk, scalars)):
            try:
                return 0 if lk == rk else 1
            except Exception:  # pragma: no cover - defensive
                pass
        raise errors.InvalidCastError(
            f"cannot compare {type(left).__name__} with "
            f"{type(right).__name__}"
        ) from None


def sort_key(value: Any) -> tuple:
    """Total-order key placing NULLs last (the SQL default for ASC)."""
    if value is None:
        return (1, 0)
    return (0, _comparison_key(value))


_NUMERIC_RANK = {
    "SmallIntType": 0,
    "IntegerType": 1,
    "BigIntType": 2,
    "DecimalType": 3,
    "RealType": 4,
    "DoubleType": 5,
}


def common_supertype(
    left: TypeDescriptor, right: TypeDescriptor
) -> TypeDescriptor:
    """Return the type that can hold values of both ``left`` and ``right``.

    Used for CASE arms, set operations, and the translator's inference of
    iterator column types.  Raises :class:`repro.errors.InvalidCastError`
    when no common supertype exists.
    """
    if left == right:
        return left

    if typecodes.is_numeric(left.type_code) and typecodes.is_numeric(
        right.type_code
    ):
        lr = _NUMERIC_RANK[type(left).__name__]
        rr = _NUMERIC_RANK[type(right).__name__]
        if isinstance(left, DecimalType) and isinstance(right, DecimalType):
            scale = max(left.scale, right.scale)
            integral = max(
                left.precision - left.scale, right.precision - right.scale
            )
            return DecimalType(integral + scale, scale)
        if max(lr, rr) >= _NUMERIC_RANK["RealType"]:
            return DoubleType()
        if isinstance(left, DecimalType) or isinstance(right, DecimalType):
            dec = left if isinstance(left, DecimalType) else right
            other_rank = rr if isinstance(left, DecimalType) else lr
            digits = {0: 5, 1: 10, 2: 19}[other_rank]
            assert isinstance(dec, DecimalType)
            return DecimalType(
                max(dec.precision - dec.scale, digits) + dec.scale, dec.scale
            )
        widest = max(lr, rr)
        return {0: SmallIntType, 1: IntegerType, 2: BigIntType}[widest]()

    if typecodes.is_character(left.type_code) and typecodes.is_character(
        right.type_code
    ):
        if isinstance(left, ClobType) or isinstance(right, ClobType):
            return ClobType()
        left_len = getattr(left, "length", None)
        right_len = getattr(right, "length", None)
        if left_len is None or right_len is None:
            return VarCharType(None)
        if isinstance(left, CharType) and isinstance(right, CharType) \
                and left_len == right_len:
            return CharType(left_len)
        return VarCharType(max(left_len, right_len))

    if isinstance(left, BooleanType) and isinstance(right, BooleanType):
        return BooleanType()

    if isinstance(left, ObjectType) and isinstance(right, ObjectType):
        if left.assignable_from(right):
            return left
        if right.assignable_from(left):
            return right

    if left.type_code == right.type_code:
        return left

    raise errors.InvalidCastError(
        f"no common supertype for {left.sql_spelling()} and "
        f"{right.sql_spelling()}"
    )
