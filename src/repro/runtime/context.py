"""Connection contexts (SQLJ Part 0).

A connection-context *type* identifies an exemplar schema ("views,
tables, privileges" — the paper); translated programs declare them with
``#sql context Department;`` and the translator generates a subclass of
:class:`ConnectionContext`.  A context *instance* wraps one connection
and caches one :class:`ConnectedProfile` per profile, so each clause's
RTStatement is built once per connection.

The default context (used by clauses without ``[ctx]``) is process-wide
state managed with :meth:`ConnectionContext.set_default_context`,
mirroring ``sqlj.runtime.ref.DefaultContext``.
"""

from __future__ import annotations

import warnings
from typing import Any, Dict, List, Optional, Sequence

from repro import errors
from repro.engine.database import Database, Session, StatementResult
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.profiles.customization import ConnectedProfile
from repro.profiles.model import Profile

__all__ = ["ConnectionContext", "ExecutionContext"]

_CLAUSES = _metrics.registry.counter("sqlj.clauses")


class ExecutionContext:
    """Per-context execution bookkeeping (update counts, warnings).

    ``timeout`` is accepted for ctor consistency with the rest of the
    public surface (:class:`ConnectionContext`,
    :class:`repro.dbapi.pool.ConnectionPool`); it is recorded on the
    instance but not enforced per-statement by the embedded engine.
    """

    def __init__(self, *, timeout: Optional[float] = None) -> None:
        self.update_count: int = -1
        self.warnings: list = []
        self.timeout = timeout

    def record(self, result: StatementResult) -> None:
        if result.kind == "update":
            self.update_count = result.update_count
        else:
            self.update_count = -1


class ConnectionContext:
    """Wraps one database connection for SQLJ execution.

    Accepts a PyDBC URL, a :class:`repro.dbapi.Connection`, an engine
    :class:`Session`, or a :class:`Database` (a session is opened on it).

    With ``pooled=True`` and a URL target, the underlying connection is
    checked out of the process-wide pool for that URL (every pooled
    context on the same URL shares one
    :class:`repro.dbapi.pool.ConnectionPool`), and :meth:`close` returns
    it to the pool instead of discarding the session.
    """

    _default_context: Optional["ConnectionContext"] = None

    def __init__(
        self,
        url: Any = None,
        *,
        user: Optional[str] = None,
        pooled: bool = False,
        timeout: Optional[float] = None,
        target: Any = None,
    ) -> None:
        if target is not None:
            warnings.warn(
                "ConnectionContext(target=...) is deprecated; pass the "
                "connection source as the first argument (url=...)",
                DeprecationWarning,
                stacklevel=2,
            )
            if url is None:
                url = target
        self._owns_session = False
        self._owned_connection: Optional[Any] = None
        self.timeout = timeout
        self.session = self._resolve(url, user, pooled, timeout)
        self.execution_context = ExecutionContext(timeout=timeout)
        self._connected_profiles: Dict[int, ConnectedProfile] = {}
        self._closed = False
        self._tracer: Optional[Any] = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Any:
        """This context's tracer (the process tracer unless overridden)."""
        if self._tracer is not None:
            return self._tracer
        return _tracing.get_tracer()

    @tracer.setter
    def tracer(self, tracer: Optional[Any]) -> None:
        self._tracer = tracer

    def _resolve(
        self,
        target: Any,
        user: Optional[str],
        pooled: bool = False,
        timeout: Optional[float] = None,
    ) -> Session:
        from repro.dbapi.connection import Connection
        from repro.dbapi.driver import DriverManager

        if isinstance(target, Session):
            return target
        if isinstance(target, Connection):
            return target.session
        if isinstance(target, Database):
            if pooled:
                self._owned_connection = DriverManager.get_pool(
                    f"pool:{target.name}", user=user, database=target
                ).checkout(timeout=timeout)
                return self._owned_connection.session
            self._owns_session = True
            return target.create_session(user=user, autocommit=True)
        if isinstance(target, str):
            if pooled:
                self._owned_connection = DriverManager.get_pool(
                    target, user=user
                ).checkout(timeout=timeout)
                return self._owned_connection.session
            self._owns_session = True
            return DriverManager.get_connection(target, user=user).session
        if target is None:
            default = ConnectionContext._default_context
            if default is None:
                raise errors.ConnectionError_(
                    "no default connection context has been installed"
                )
            return default.session
        raise errors.ConnectionError_(
            f"cannot build a connection context from "
            f"{type(target).__name__}"
        )

    # ------------------------------------------------------------------
    # default-context management
    # ------------------------------------------------------------------
    @classmethod
    def set_default_context(
        cls, context: Optional["ConnectionContext"]
    ) -> None:
        ConnectionContext._default_context = context

    @classmethod
    def get_default_context(cls) -> "ConnectionContext":
        context = ConnectionContext._default_context
        if context is None:
            raise errors.ConnectionError_(
                "no default connection context has been installed; "
                "call ConnectionContext.set_default_context(...) first"
            )
        return context

    # ------------------------------------------------------------------
    # profile execution
    # ------------------------------------------------------------------
    def connected_profile(self, profile: Profile) -> ConnectedProfile:
        connected = self._connected_profiles.get(id(profile))
        if connected is None:
            connected = ConnectedProfile(profile, self.session)
            self._connected_profiles[id(profile)] = connected
        return connected

    def execute_entry(
        self, profile: Profile, index: int, params: Sequence[Any]
    ) -> StatementResult:
        self._check_open()
        _CLAUSES.increment()
        tracer = self._tracer
        if tracer is None:
            tracer = _tracing.current
        if tracer.enabled:
            with tracer.span(
                "sqlj.clause", profile=profile.name, entry=index
            ):
                result = self.connected_profile(profile) \
                    .execute(index, params)
        else:
            result = self.connected_profile(profile).execute(index, params)
        self.execution_context.record(result)
        return result

    def execute_batch_entry(
        self,
        profile: Profile,
        index: int,
        param_rows: Sequence[Sequence[Any]],
    ) -> List[int]:
        """Run one UPDATE-role entry against every parameter row as a
        single atomic batch (the translator's loop-batching target).

        Bypasses the per-entry RTStatement cache and hands the entry's
        canonical SQL plus all rows to ``session.execute_batch`` in one
        call; the execution context's update count reflects the whole
        batch.  An empty row list executes nothing.
        """
        self._check_open()
        _CLAUSES.increment()
        rows = [list(row) for row in param_rows]
        if not rows:
            self.execution_context.update_count = 0
            return []
        entry = profile.get_entry(index)
        counts = list(self.session.execute_batch(entry.sql, rows))
        self.execution_context.update_count = sum(counts)
        return counts

    # ------------------------------------------------------------------
    # transactions / lifecycle
    # ------------------------------------------------------------------
    def commit(self) -> None:
        self._check_open()
        self.session.commit()

    def rollback(self) -> None:
        self._check_open()
        self.session.rollback()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._connected_profiles.clear()
        if self._owned_connection is not None:
            # Pooled: hand the session back rather than closing it.
            self._owned_connection.close()
        elif self._owns_session:
            self.session.close()
        if ConnectionContext._default_context is self:
            ConnectionContext._default_context = None

    @property
    def closed(self) -> bool:
        return self._closed

    def _check_open(self) -> None:
        if self._closed:
            raise errors.ConnectionClosedError(
                "connection context is closed"
            )

    def __enter__(self) -> "ConnectionContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
