"""System catalog.

Holds every named object the engine knows about: tables, views, external
routines (SQLJ Part 1), user-defined types (SQLJ Part 2) and installed
archives ("pars" — the Python analogue of the paper's jar files).  The
catalog is also where EXTERNAL NAME strings get resolved and where the
UDT subtype graph for substitutability lives.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import errors
from repro.sqltypes import ObjectType, TypeDescriptor, parse_type

__all__ = [
    "Column",
    "Table",
    "View",
    "RoutineParam",
    "Routine",
    "AttributeBinding",
    "MethodBinding",
    "UserDefinedType",
    "InstalledPar",
    "Catalog",
    "parse_external_name",
]


@dataclass
class Column:
    """One column of a table or view."""

    name: str
    descriptor: TypeDescriptor
    not_null: bool = False
    default: Any = None  # AST expression or None
    unique: bool = False
    primary_key: bool = False


class Table:
    """Base table: schema plus a versioned row heap.

    The heap is ``versions`` — an append-only list of
    :class:`repro.engine.mvcc.RowVersion` objects; deletes and updates
    only stamp existing versions, so concurrent snapshot readers can
    iterate a ``list()`` copy without locking.  ``mutation_lock``
    serializes structural writes (appends, claim/unclaim, index
    maintenance) on this table only; it is never held while waiting on
    another transaction.
    """

    def __init__(self, name: str, columns: List[Column], owner: str) -> None:
        self.name = name
        self.columns = columns
        self.owner = owner
        self.versions: List[Any] = []  # List[mvcc.RowVersion]
        self.mutation_lock = threading.RLock()
        #: secondary indexes over this table (engine.indexes.Index),
        #: maintained by RowStore DML and rebuilt on ALTER TABLE.
        self.indexes: List[Any] = []
        self._column_index = {c.name: i for i, c in enumerate(columns)}
        if len(self._column_index) != len(columns):
            raise errors.DuplicateObjectError(
                f"duplicate column name in table {name!r}"
            )

    @property
    def rows(self) -> List[List[Any]]:
        """Committed live rows, as a fresh list of value lists.

        Bulk-load convenience and persistence interface: assigning
        ``table.rows = [...]`` replaces the heap with bootstrap
        versions (committed since stamp 0).  Query execution does NOT
        go through this — scans filter ``versions`` through the
        reading transaction's snapshot.
        """
        return [
            v.row
            for v in self.versions
            if v.begin is not None and v.end is None
        ]

    @rows.setter
    def rows(self, value: List[List[Any]]) -> None:
        from repro.engine.mvcc import RowVersion

        with self.mutation_lock:
            self.versions = [RowVersion(row) for row in value]

    def add_column(self, column: Column, fill_value: Any = None) -> None:
        """Append a column, extending every stored row with ``fill``."""
        if column.name in self._column_index:
            raise errors.DuplicateObjectError(
                f"column {column.name!r} already exists in table "
                f"{self.name!r}"
            )
        self.columns.append(column)
        self._column_index[column.name] = len(self.columns) - 1
        with self.mutation_lock:
            for version in self.versions:
                version.row.append(fill_value)

    def remove_column(self, name: str) -> Column:
        """Drop a column and its values from every stored row."""
        position = self.column_position(name)
        if len(self.columns) == 1:
            raise errors.CatalogError(
                f"cannot drop the only column of table {self.name!r}"
            )
        column = self.columns.pop(position)
        self._column_index = {
            c.name: i for i, c in enumerate(self.columns)
        }
        with self.mutation_lock:
            for version in self.versions:
                del version.row[position]
        return column

    def column_position(self, name: str) -> int:
        """0-based position of ``name``; raises UndefinedColumnError."""
        try:
            return self._column_index[name]
        except KeyError:
            raise errors.UndefinedColumnError(
                f"column {name!r} does not exist in table {self.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._column_index


@dataclass
class View:
    """A named stored query."""

    name: str
    query: Any  # ast.QueryExpr
    owner: str
    column_names: Optional[List[str]] = None


@dataclass
class RoutineParam:
    """Resolved routine parameter (SQLJ Part 1 modes included)."""

    name: str
    descriptor: TypeDescriptor
    mode: str = "IN"  # IN / OUT / INOUT


@dataclass
class Routine:
    """An SQL routine bound to an external Python callable.

    ``callable`` is resolved lazily by :mod:`repro.procedures` from
    ``external_name`` (``par_name:module.function``); SQL built-ins and
    directly-registered Python functions set it eagerly.
    """

    name: str
    kind: str  # PROCEDURE or FUNCTION
    params: List[RoutineParam]
    returns: Optional[TypeDescriptor]
    data_access: str
    dynamic_result_sets: int
    external_name: str
    language: str
    parameter_style: str
    owner: str
    par_name: Optional[str] = None
    callable: Optional[Callable[..., Any]] = None

    @property
    def is_function(self) -> bool:
        return self.kind == "FUNCTION"

    def in_params(self) -> List[RoutineParam]:
        return [p for p in self.params if p.mode in ("IN", "INOUT")]

    def out_params(self) -> List[RoutineParam]:
        return [p for p in self.params if p.mode in ("OUT", "INOUT")]


@dataclass
class AttributeBinding:
    """SQL attribute of a UDT mapped onto a Python instance/class field."""

    sql_name: str
    field_name: str
    descriptor: TypeDescriptor
    static: bool = False


@dataclass
class MethodBinding:
    """SQL method of a UDT mapped onto a Python method.

    A binding whose SQL name equals the type name is a constructor; its
    ``python_name`` then names the class itself.
    """

    sql_name: str
    python_name: str
    param_descriptors: List[TypeDescriptor]
    returns: Optional[TypeDescriptor]
    static: bool = False
    is_constructor: bool = False


class UserDefinedType:
    """SQLJ Part 2 user-defined type: a Python class usable as a SQL type."""

    def __init__(
        self,
        name: str,
        external_name: str,
        python_class: type,
        owner: str,
        supertype: Optional["UserDefinedType"] = None,
    ) -> None:
        self.name = name
        self.external_name = external_name
        self.python_class = python_class
        self.owner = owner
        self.supertype = supertype
        self.attributes: Dict[str, AttributeBinding] = {}
        self.methods: Dict[str, MethodBinding] = {}
        self.constructors: List[MethodBinding] = []
        #: Part 2 ordering spec: None (host-language default ordering),
        #: or ("FULL"|"EQUALS", python comparison method name).
        self.ordering_kind: Optional[str] = None
        self.ordering_method: Optional[str] = None

    # -- resolution through the supertype chain --------------------------
    def find_attribute(self, sql_name: str) -> Optional[AttributeBinding]:
        udt: Optional[UserDefinedType] = self
        while udt is not None:
            binding = udt.attributes.get(sql_name)
            if binding is not None:
                return binding
            udt = udt.supertype
        return None

    def find_method(self, sql_name: str) -> Optional[MethodBinding]:
        udt: Optional[UserDefinedType] = self
        while udt is not None:
            binding = udt.methods.get(sql_name)
            if binding is not None:
                return binding
            udt = udt.supertype
        return None

    def find_ordering(self) -> Optional[Tuple[str, str]]:
        """Nearest ordering spec up the supertype chain, if any."""
        udt: Optional[UserDefinedType] = self
        while udt is not None:
            if udt.ordering_kind is not None:
                assert udt.ordering_method is not None
                return udt.ordering_kind, udt.ordering_method
            udt = udt.supertype
        return None

    def is_subtype_of(self, other: "UserDefinedType") -> bool:
        udt: Optional[UserDefinedType] = self
        while udt is not None:
            if udt is other:
                return True
            udt = udt.supertype
        return False

    def descriptor(self) -> ObjectType:
        """ObjectType descriptor bound to this UDT's Python class."""
        return ObjectType(self.name, self.python_class)


@dataclass
class InstalledPar:
    """An installed archive of Python modules (the paper's jar file).

    ``modules`` maps dotted module names to source text.  ``path`` is the
    SQLJ path: an ordered list of ``(pattern, par_name)`` pairs consulted
    when a module referenced from this archive is not found inside it
    (``sqlj.alter_module_path``).
    """

    name: str
    url: str
    modules: Dict[str, str] = field(default_factory=dict)
    deployment_descriptor: Optional[str] = None
    path: List[Tuple[str, str]] = field(default_factory=list)
    owner: str = ""


def parse_external_name(external: str) -> Tuple[Optional[str], str, str]:
    """Split an EXTERNAL NAME string into (par, module, member).

    Formats accepted (from the paper):

    * ``par_name:module.member`` — archive-qualified,
    * ``module.member`` — resolved against the default path,
    * ``member`` — a bare class name (Part 2 CREATE TYPE member clauses).
    """
    par: Optional[str] = None
    rest = external.strip()
    if ":" in rest:
        par, rest = rest.split(":", 1)
        par = par.strip().lower()
        rest = rest.strip()
    if "." in rest:
        module, member = rest.rsplit(".", 1)
    else:
        module, member = "", rest
    if not member:
        raise errors.RoutineResolutionError(
            f"malformed EXTERNAL NAME {external!r}"
        )
    return par, module, member


class Catalog:
    """Namespace of all persistent objects in one database.

    Registration and removal are serialized by an internal lock so the
    check-then-insert duplicate detection stays atomic even when DDL is
    issued outside the database's statement lock (programmatic callers,
    system bootstrap).  Lookups are plain dict reads and need no lock.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.tables: Dict[str, Table] = {}
        self.views: Dict[str, View] = {}
        self.routines: Dict[str, Routine] = {}
        self.types: Dict[str, UserDefinedType] = {}
        self.pars: Dict[str, InstalledPar] = {}
        #: index name -> Index; each is also listed on its table.
        self.indexes: Dict[str, Any] = {}
        #: monotonically increasing schema version.  Every catalog
        #: mutation (DDL, grants) bumps it; the plan cache and prepared
        #: statements compare it to detect stale plans.
        self.version = 0
        #: table name -> TableStatistics written by ANALYZE
        #: (:mod:`repro.engine.statistics`).
        self.statistics: Dict[str, Any] = {}
        #: monotonically increasing statistics version.  Separate from
        #: ``version`` so ANALYZE invalidates cached *plans* without
        #: looking like a schema change to prepared statements or DDL
        #: consumers.
        self.stats_version = 0

    def bump_version(self) -> int:
        """Record a schema/privilege change; returns the new version."""
        with self._lock:
            self.version += 1
            return self.version

    # -- ANALYZE statistics ----------------------------------------------
    def set_statistics(self, name: str, stats: Any) -> int:
        """Publish ANALYZE output for table ``name``; bumps stats_version."""
        with self._lock:
            self.stats_version += 1
            stats.version = self.stats_version
            self.statistics[name] = stats
            return self.stats_version

    def get_statistics(self, name: str) -> Any:
        return self.statistics.get(name)

    def drop_statistics(self, name: str) -> None:
        with self._lock:
            if self.statistics.pop(name, None) is not None:
                self.stats_version += 1

    # -- tables / views ---------------------------------------------------
    def create_table(self, table: Table) -> None:
        key = table.name
        with self._lock:
            if key in self.tables or key in self.views:
                raise errors.DuplicateObjectError(
                    f"table or view {key!r} already exists"
                )
            self.tables[key] = table
            self.version += 1

    def drop_table(self, name: str) -> Table:
        with self._lock:
            try:
                table = self.tables.pop(name)
            except KeyError:
                raise errors.UndefinedTableError(
                    f"table {name!r} does not exist"
                ) from None
            for index in list(table.indexes):
                self.indexes.pop(index.name, None)
            table.indexes = []
            if self.statistics.pop(name, None) is not None:
                self.stats_version += 1
            self.version += 1
            return table

    def get_table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise errors.UndefinedTableError(
                f"table {name!r} does not exist"
            ) from None

    def create_view(self, view: View) -> None:
        with self._lock:
            if view.name in self.views or view.name in self.tables:
                raise errors.DuplicateObjectError(
                    f"table or view {view.name!r} already exists"
                )
            self.views[view.name] = view
            self.version += 1

    def drop_view(self, name: str) -> View:
        with self._lock:
            try:
                view = self.views.pop(name)
            except KeyError:
                raise errors.UndefinedObjectError(
                    f"view {name!r} does not exist"
                ) from None
            self.version += 1
            return view

    # -- indexes -----------------------------------------------------------
    def create_index(self, index: Any) -> None:
        with self._lock:
            if index.name in self.indexes:
                raise errors.DuplicateObjectError(
                    f"index {index.name!r} already exists"
                )
            self.indexes[index.name] = index
            index.table.indexes.append(index)
            self.version += 1

    def drop_index(self, name: str) -> Any:
        with self._lock:
            try:
                index = self.indexes.pop(name)
            except KeyError:
                raise errors.UndefinedObjectError(
                    f"index {name!r} does not exist"
                ) from None
            try:
                index.table.indexes.remove(index)
            except ValueError:  # pragma: no cover - defensive
                pass
            self.version += 1
            return index

    def get_index(self, name: str) -> Any:
        try:
            return self.indexes[name]
        except KeyError:
            raise errors.UndefinedObjectError(
                f"index {name!r} does not exist"
            ) from None

    def get_relation(self, name: str):
        """Return the Table or View called ``name``."""
        if name in self.tables:
            return self.tables[name]
        if name in self.views:
            return self.views[name]
        raise errors.UndefinedTableError(
            f"table or view {name!r} does not exist"
        )

    # -- routines ----------------------------------------------------------
    def create_routine(self, routine: Routine) -> None:
        with self._lock:
            if routine.name in self.routines:
                raise errors.DuplicateObjectError(
                    f"routine {routine.name!r} already exists"
                )
            self.routines[routine.name] = routine
            self.version += 1

    def drop_routine(self, name: str) -> Routine:
        with self._lock:
            try:
                routine = self.routines.pop(name)
            except KeyError:
                raise errors.UndefinedRoutineError(
                    f"routine {name!r} does not exist"
                ) from None
            self.version += 1
            return routine

    def get_routine(self, name: str) -> Routine:
        try:
            return self.routines[name]
        except KeyError:
            raise errors.UndefinedRoutineError(
                f"routine {name!r} does not exist"
            ) from None

    def find_function(self, name: str) -> Optional[Routine]:
        routine = self.routines.get(name)
        if routine is not None and routine.is_function:
            return routine
        return None

    # -- user-defined types -------------------------------------------------
    def create_type(self, udt: UserDefinedType) -> None:
        with self._lock:
            if udt.name in self.types:
                raise errors.DuplicateObjectError(
                    f"type {udt.name!r} already exists"
                )
            self.types[udt.name] = udt
            self.version += 1

    def drop_type(self, name: str) -> UserDefinedType:
        with self._lock:
            udt = self.get_type(name)
            for other in self.types.values():
                if other.supertype is udt:
                    raise errors.CatalogError(
                        f"type {name!r} has subtype {other.name!r}; "
                        "drop the subtype first"
                    )
            for table in self.tables.values():
                for column in table.columns:
                    if isinstance(column.descriptor, ObjectType) and \
                            column.descriptor.udt_name == name:
                        raise errors.CatalogError(
                            f"type {name!r} is used by table "
                            f"{table.name!r}"
                        )
            udt = self.types.pop(name)
            self.version += 1
            return udt

    def get_type(self, name: str) -> UserDefinedType:
        try:
            return self.types[name]
        except KeyError:
            raise errors.UndefinedTypeError(
                f"type {name!r} does not exist"
            ) from None

    def type_for_class(self, python_class: type) -> Optional[UserDefinedType]:
        """Most-derived UDT whose bound class is ``python_class`` (or the
        nearest registered ancestor, supporting substitutability)."""
        best: Optional[UserDefinedType] = None
        for udt in self.types.values():
            if udt.python_class is python_class:
                return udt
            if isinstance(python_class, type) and issubclass(
                python_class, udt.python_class
            ):
                if best is None or issubclass(
                    udt.python_class, best.python_class
                ):
                    best = udt
        return best

    # -- archives ------------------------------------------------------------
    def install_par(self, par: InstalledPar) -> None:
        with self._lock:
            if par.name in self.pars:
                raise errors.ParInstallationError(
                    f"archive {par.name!r} is already installed"
                )
            self.pars[par.name] = par
            self.version += 1

    def remove_par(self, name: str) -> InstalledPar:
        with self._lock:
            try:
                par = self.pars.pop(name)
            except KeyError:
                raise errors.UndefinedParError(
                    f"archive {name!r} is not installed"
                ) from None
            self.version += 1
            return par

    def get_par(self, name: str) -> InstalledPar:
        try:
            return self.pars[name]
        except KeyError:
            raise errors.UndefinedParError(
                f"archive {name!r} is not installed"
            ) from None

    # -- type resolution -------------------------------------------------------
    def resolve_type(self, spelling: str) -> TypeDescriptor:
        """Parse a type spelling, binding UDT names to their classes."""
        descriptor = parse_type(spelling)
        if isinstance(descriptor, ObjectType):
            udt = self.get_type(descriptor.udt_name)
            return udt.descriptor()
        return descriptor
