"""Unit tests for SQL type descriptors and coercion rules."""

import datetime
import decimal

import pytest

from repro import errors
from repro.sqltypes import (
    BigIntType,
    BlobType,
    BooleanType,
    CharType,
    ClobType,
    DateType,
    DecimalType,
    DoubleType,
    IntegerType,
    ObjectType,
    RealType,
    SmallIntType,
    TimestampType,
    TimeType,
    VarCharType,
    parse_type,
    type_from_python_value,
    typecodes,
)

D = decimal.Decimal


class TestCharTypes:
    def test_char_pads_to_length(self):
        assert CharType(5).coerce("ab") == "ab   "

    def test_char_exact_length_untouched(self):
        assert CharType(3).coerce("abc") == "abc"

    def test_char_truncates_trailing_blanks_only(self):
        assert CharType(3).coerce("ab   ") == "ab "

    def test_char_overflow_raises(self):
        with pytest.raises(errors.StringTruncationError):
            CharType(3).coerce("abcd")

    def test_char_rejects_non_string(self):
        with pytest.raises(errors.InvalidCastError):
            CharType(3).coerce(42)

    def test_char_rejects_bool(self):
        with pytest.raises(errors.InvalidCastError):
            CharType(3).coerce(True)

    def test_varchar_no_padding(self):
        assert VarCharType(10).coerce("ab") == "ab"

    def test_varchar_overflow(self):
        with pytest.raises(errors.StringTruncationError):
            VarCharType(2).coerce("abc")

    def test_varchar_unbounded(self):
        assert VarCharType(None).coerce("x" * 10000) == "x" * 10000

    def test_clob_accepts_long_text(self):
        assert ClobType().coerce("y" * 100000) == "y" * 100000

    def test_zero_length_rejected(self):
        with pytest.raises(errors.SQLSyntaxError):
            CharType(0)

    def test_null_passes_through(self):
        assert VarCharType(5).coerce(None) is None

    def test_spelling(self):
        assert CharType(5).sql_spelling() == "CHAR(5)"
        assert VarCharType(None).sql_spelling() == "VARCHAR"


class TestIntegerTypes:
    def test_integer_accepts_int(self):
        assert IntegerType().coerce(7) == 7

    def test_integer_accepts_integral_float(self):
        assert IntegerType().coerce(7.0) == 7

    def test_integer_rejects_fractional_float(self):
        with pytest.raises(errors.InvalidCastError):
            IntegerType().coerce(7.5)

    def test_integer_accepts_numeric_string(self):
        assert IntegerType().coerce(" 42 ") == 42

    def test_integer_rejects_garbage_string(self):
        with pytest.raises(errors.InvalidCastError):
            IntegerType().coerce("hello")

    def test_integer_rejects_bool(self):
        with pytest.raises(errors.InvalidCastError):
            IntegerType().coerce(True)

    @pytest.mark.parametrize(
        "cls, limit",
        [
            (SmallIntType, 2 ** 15),
            (IntegerType, 2 ** 31),
            (BigIntType, 2 ** 63),
        ],
    )
    def test_range_limits(self, cls, limit):
        assert cls().coerce(limit - 1) == limit - 1
        assert cls().coerce(-limit) == -limit
        with pytest.raises(errors.NumericOverflowError):
            cls().coerce(limit)
        with pytest.raises(errors.NumericOverflowError):
            cls().coerce(-limit - 1)

    def test_integral_decimal(self):
        assert IntegerType().coerce(D("5")) == 5
        with pytest.raises(errors.InvalidCastError):
            IntegerType().coerce(D("5.5"))


class TestDecimalType:
    def test_rounds_to_scale(self):
        assert DecimalType(6, 2).coerce(D("1.005")) == D("1.01")

    def test_accepts_float_via_string(self):
        assert DecimalType(6, 2).coerce(100.5) == D("100.50")

    def test_precision_overflow(self):
        with pytest.raises(errors.NumericOverflowError):
            DecimalType(4, 2).coerce(D("123.45"))

    def test_fits_exact_precision(self):
        assert DecimalType(5, 2).coerce(D("123.45")) == D("123.45")

    def test_invalid_scale(self):
        with pytest.raises(errors.SQLSyntaxError):
            DecimalType(2, 3)

    def test_rejects_garbage(self):
        with pytest.raises(errors.InvalidCastError):
            DecimalType(6, 2).coerce("pears")

    def test_spelling(self):
        assert DecimalType(6, 2).sql_spelling() == "DECIMAL(6,2)"

    def test_equality_is_structural(self):
        assert DecimalType(6, 2) == DecimalType(6, 2)
        assert DecimalType(6, 2) != DecimalType(6, 3)
        assert hash(DecimalType(6, 2)) == hash(DecimalType(6, 2))


class TestOtherScalars:
    def test_double_widens_everything_numeric(self):
        assert DoubleType().coerce(1) == 1.0
        assert DoubleType().coerce(D("2.5")) == 2.5
        assert RealType().coerce("3.5") == 3.5

    def test_boolean_casts(self):
        assert BooleanType().coerce(True) is True
        assert BooleanType().coerce("true") is True
        assert BooleanType().coerce("F") is False
        assert BooleanType().coerce(0) is False
        with pytest.raises(errors.InvalidCastError):
            BooleanType().coerce("maybe")

    def test_date_from_iso_string(self):
        assert DateType().coerce("2024-03-01") == datetime.date(2024, 3, 1)

    def test_date_from_datetime(self):
        value = datetime.datetime(2024, 3, 1, 10, 30)
        assert DateType().coerce(value) == datetime.date(2024, 3, 1)

    def test_time_and_timestamp(self):
        assert TimeType().coerce("10:30:00") == datetime.time(10, 30)
        assert TimestampType().coerce("2024-03-01T10:30:00") == \
            datetime.datetime(2024, 3, 1, 10, 30)

    def test_bad_date_string(self):
        with pytest.raises(errors.InvalidCastError):
            DateType().coerce("not-a-date")

    def test_blob(self):
        assert BlobType().coerce(b"abc") == b"abc"
        assert BlobType().coerce(bytearray(b"x")) == b"x"
        with pytest.raises(errors.InvalidCastError):
            BlobType().coerce("text")


class TestObjectType:
    class Widget:
        pass

    def test_unbound_accepts_anything(self):
        descriptor = ObjectType("widget")
        value = self.Widget()
        assert descriptor.coerce(value) is value

    def test_bound_rejects_wrong_class(self):
        descriptor = ObjectType("widget", self.Widget)
        with pytest.raises(errors.InvalidCastError):
            descriptor.coerce("not a widget")

    def test_bound_accepts_subclass(self):
        class Sub(self.Widget):
            pass

        descriptor = ObjectType("widget", self.Widget)
        value = Sub()
        assert descriptor.coerce(value) is value

    def test_assignability_follows_subclassing(self):
        class Sub(self.Widget):
            pass

        base = ObjectType("widget", self.Widget)
        sub = ObjectType("subwidget", Sub)
        assert base.assignable_from(sub)
        assert not sub.assignable_from(base)

    def test_type_code_is_py_object(self):
        assert ObjectType("w").type_code == typecodes.PY_OBJECT
        assert typecodes.JAVA_OBJECT == typecodes.PY_OBJECT


class TestParseType:
    @pytest.mark.parametrize(
        "spelling, expected",
        [
            ("integer", IntegerType()),
            ("INT", IntegerType()),
            ("smallint", SmallIntType()),
            ("bigint", BigIntType()),
            ("char(5)", CharType(5)),
            ("CHAR", CharType(1)),
            ("varchar(50)", VarCharType(50)),
            ("decimal(6,2)", DecimalType(6, 2)),
            ("DEC(6, 2)", DecimalType(6, 2)),
            ("numeric(10)", DecimalType(10, 0)),
            ("double precision", DoubleType()),
            ("float", DoubleType()),
            ("real", RealType()),
            ("boolean", BooleanType()),
            ("date", DateType()),
            ("timestamp", TimestampType()),
            ("blob", BlobType()),
            ("clob", ClobType()),
        ],
    )
    def test_known_types(self, spelling, expected):
        assert parse_type(spelling) == expected

    def test_unknown_name_is_udt_reference(self):
        descriptor = parse_type("addr")
        assert isinstance(descriptor, ObjectType)
        assert descriptor.udt_name == "addr"

    def test_parameterised_unknown_type_rejected(self):
        with pytest.raises(errors.SQLSyntaxError):
            parse_type("addr(5)")

    def test_integer_takes_no_params(self):
        with pytest.raises(errors.SQLSyntaxError):
            parse_type("integer(5)")

    def test_garbage_rejected(self):
        with pytest.raises(errors.SQLSyntaxError):
            parse_type("???")


class TestInference:
    @pytest.mark.parametrize(
        "value, expected_cls",
        [
            (True, BooleanType),
            (5, IntegerType),
            (2 ** 40, BigIntType),
            (1.5, DoubleType),
            ("x", VarCharType),
            (b"x", BlobType),
            (datetime.date(2024, 1, 1), DateType),
            (datetime.time(1, 2), TimeType),
            (datetime.datetime(2024, 1, 1), TimestampType),
        ],
    )
    def test_python_value_inference(self, value, expected_cls):
        assert isinstance(type_from_python_value(value), expected_cls)

    def test_decimal_inference_keeps_scale(self):
        descriptor = type_from_python_value(D("12.345"))
        assert isinstance(descriptor, DecimalType)
        assert descriptor.scale == 3

    def test_object_inference(self):
        class Thing:
            pass

        descriptor = type_from_python_value(Thing())
        assert isinstance(descriptor, ObjectType)
        assert descriptor.python_class is Thing


class TestTypeCodes:
    def test_names(self):
        assert typecodes.type_code_name(typecodes.INTEGER) == "INTEGER"
        assert typecodes.type_code_name(typecodes.PY_OBJECT) == "PY_OBJECT"
        assert "UNKNOWN" in typecodes.type_code_name(424242)

    def test_numeric_predicate(self):
        assert typecodes.is_numeric(typecodes.DECIMAL)
        assert not typecodes.is_numeric(typecodes.VARCHAR)

    def test_character_predicate(self):
        assert typecodes.is_character(typecodes.CHAR)
        assert typecodes.is_character(typecodes.CLOB)
        assert not typecodes.is_character(typecodes.BLOB)
