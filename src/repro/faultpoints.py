"""Named fault-injection points.

This is the *hook* half of the fault-injection facility: production code
calls :func:`trigger` (or :func:`pipe` when there is a value to corrupt)
at named sites, and :class:`repro.testing.faults.FaultPlan` installs
itself here to make those sites raise, delay, or corrupt.  Keeping the
hooks in this dependency-free module lets every layer participate
(engine, storage, dbapi pool, procedures) without importing the testing
package upward.

Disarmed cost is one module-global load and a ``None`` check, so hooks
are safe on per-statement paths.

Well-known sites:

==========================  ===============================================
site                        fired
==========================  ===============================================
``executor.run``            before a compiled query plan materialises rows
``storage.insert``          before a row is appended to a table heap
``storage.delete``          before rows are deleted from a table heap
``storage.update``          before a row is replaced in a table heap
``storage.vacuum``          once per table in a vacuum pass, before
                            that table's dead versions are reclaimed
``mvcc.commit``             between commit-stamp allocation and the WAL
                            commit-marker append (the commit window)
``pool.checkout``           inside :meth:`ConnectionPool.checkout`, before
                            a connection is handed out
``pool.checkin``            when a pooled connection is returned (pipe
                            site: receives the session, may corrupt/kill)
``procedure.invoke``        before an external routine body runs
``wal.append``              before a redo record is framed and written
``wal.write``               pipe site: receives the framed record bytes
                            (corrupting them models a torn write)
``wal.written``             after the OS write, before the record is
                            durable (the classic lost-write window)
``wal.fsync``               just before ``os.fsync`` of the log
``wal.checkpoint``          before the checkpoint snapshot is written
``wal.checkpoint.install``  after the snapshot is atomically installed,
                            before the log is truncated
``net.connect``             in the remote driver, before the TCP
                            connection to a ``repro://`` server is dialed
``net.write``               pipe site: receives each outgoing frame's
                            bytes on the client (truncating them models a
                            torn frame; a ``delay`` models a slow peer)
``net.read``                on the client, before a response frame is
                            read off the socket
``net.accept``              on the server, when a new client connection
                            is accepted
``net.respond``             pipe site on the server: receives each
                            response frame's bytes before they are sent
                            (corrupt/truncate to model a mid-response
                            disconnect or garbled reply)
==========================  ===============================================
"""

from __future__ import annotations

import threading
from typing import Any, Optional

__all__ = ["install", "uninstall", "installed", "trigger", "pipe"]

_lock = threading.Lock()
_active: Optional[Any] = None  # duck-typed: has .fire(site, value=None)


def install(plan: Any) -> None:
    """Arm ``plan`` (an object with ``fire(site, value=None)``).

    Only one plan may be armed at a time; installing over an armed plan
    raises to catch tests that forget to clean up.
    """
    global _active
    with _lock:
        if _active is not None and _active is not plan:
            raise RuntimeError(
                "a fault plan is already installed; uninstall it first"
            )
        _active = plan


def uninstall() -> None:
    """Disarm whatever plan is installed (idempotent)."""
    global _active
    with _lock:
        _active = None


def installed() -> Optional[Any]:
    return _active


def trigger(site: str) -> None:
    """Fire ``site``; no-op unless a plan is armed."""
    plan = _active
    if plan is not None:
        plan.fire(site)


def pipe(site: str, value: Any) -> Any:
    """Fire ``site`` with a payload the plan may replace (corruption)."""
    plan = _active
    if plan is not None:
        return plan.fire(site, value)
    return value
