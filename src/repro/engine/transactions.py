"""Transaction primitives.

The undo-log implementation lives next to the row heaps in
:mod:`repro.engine.storage` and the engine's reader-writer lock in
:mod:`repro.engine.locks`; this module re-exports them under the names
the architecture documentation uses.
"""

from repro.engine.locks import ReadWriteLock
from repro.engine.storage import RowStore, TransactionLog

__all__ = ["TransactionLog", "RowStore", "ReadWriteLock"]
