"""PySQLJ: a Python reproduction of "SQLJ: Java and Relational Databases"
(SIGMOD 1998 tutorial).

Layers (bottom-up):

* :mod:`repro.engine` — from-scratch in-memory relational engine,
* :mod:`repro.dbapi` — JDBC-shaped connectivity (PyDBC),
* :mod:`repro.translator`, :mod:`repro.profiles`, :mod:`repro.runtime`
  — SQLJ Part 0: embedded SQL, profiles, customizers,
* :mod:`repro.procedures` — SQLJ Part 1: Python callables as SQL routines,
* :mod:`repro.datatypes` — SQLJ Part 2: Python classes as SQL types.
"""

from repro import errors
from repro.engine import Database, Session

__version__ = "1.0.0"

__all__ = ["errors", "Database", "Session", "__version__"]
