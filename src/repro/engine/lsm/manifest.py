"""The LSM manifest: the single source of truth for live runs.

The manifest is one small CRC-framed pickle naming, for every table,
the ordered list of live run files (oldest first), plus the catalog
schema (a row-less :class:`~repro.engine.persistence.DatabaseImage`)
and the durable watermarks — the MVCC commit stamp and WAL sequence
number covered by the runs, and the next row id / run file number to
allocate.

It is replaced the same way checkpoints are installed: written to
``MANIFEST.tmp``, fsynced, atomically ``os.replace``d over
``MANIFEST``, directory fsynced.  A crash at any point leaves either
the old or the new manifest — never a blend — and run files are
themselves written crash-atomically before the manifest references
them, so recovery can always trust the manifest: files it names exist
and are complete; files it does not name are garbage to sweep.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any, Dict, Optional

from repro import errors

__all__ = [
    "MANIFEST_FILENAME",
    "MANIFEST_VERSION",
    "read_manifest",
    "write_manifest",
]

MANIFEST_FILENAME = "MANIFEST"
MANIFEST_VERSION = 1

_MAGIC = b"RLSMMAN\x00"
_FRAME = struct.Struct("<II")


def write_manifest(directory: str, payload: Dict[str, Any]) -> None:
    """Atomically install ``payload`` as the directory's manifest."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    path = os.path.join(directory, MANIFEST_FILENAME)
    tmp_path = path + ".tmp"
    with open(tmp_path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(_FRAME.pack(len(data), zlib.crc32(data)))
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp_path, path)
    _fsync_directory(directory)


def read_manifest(directory: str) -> Optional[Dict[str, Any]]:
    """Read and verify the manifest; None when no manifest exists.

    A torn or corrupt manifest raises :class:`repro.errors.DataError`
    rather than silently opening an empty database — the atomic install
    means this only happens on genuine file damage, never on a crash.
    """
    path = os.path.join(directory, MANIFEST_FILENAME)
    if not os.path.exists(path):
        return None
    with open(path, "rb") as handle:
        blob = handle.read()
    if len(blob) < len(_MAGIC) + _FRAME.size or not blob.startswith(_MAGIC):
        raise errors.DataError(
            f"{path!r} is not an LSM manifest (torn or foreign file)"
        )
    length, crc = _FRAME.unpack_from(blob, len(_MAGIC))
    data = blob[len(_MAGIC) + _FRAME.size:]
    if len(data) < length or zlib.crc32(data[:length]) != crc:
        raise errors.DataError(f"corrupt LSM manifest {path!r}")
    try:
        payload = pickle.loads(data[:length])
    except Exception as exc:
        raise errors.DataError(
            f"cannot load LSM manifest {path!r}: {exc}"
        ) from exc
    if (
        not isinstance(payload, dict)
        or payload.get("version") != MANIFEST_VERSION
    ):
        raise errors.DataError(
            f"unsupported LSM manifest version in {path!r}"
        )
    return payload


def _fsync_directory(directory: str) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
