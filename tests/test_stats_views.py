"""SQL-queryable live statistics: the ``repro_stats`` system views.

The observability tentpole: per-statement statistics keyed by
normalized text, wait-event attribution (reader-writer lock, WAL
fsync), virtual read-only tables served by the ``VirtualScan``
operator, and the structured slow-query log — all reachable through
plain ``SELECT`` both in-process and over the ``repro://`` wire.
"""

import json
import io
import threading
import time

import pytest

import repro
from repro import Database, errors, registry
from repro.engine.virtual import STATS_VIEW_NAMES, VirtualTable
from repro.observability import slowlog, stats
from repro.server import ReproServer


def shape_of(rs):
    md = rs.get_meta_data()
    return [
        (md.get_column_name(i), md.get_column_type_name(i))
        for i in range(1, md.get_column_count() + 1)
    ]


@pytest.fixture
def server():
    srv = ReproServer(page_size=16).start_background()
    yield srv
    srv.stop_background()


def url_of(srv, name):
    return f"repro://127.0.0.1:{srv.port}/{name}"


# ---------------------------------------------------------------------------
# the statements view
# ---------------------------------------------------------------------------


class TestStatementsView:
    def test_registered_in_catalog(self, db):
        for name in STATS_VIEW_NAMES:
            assert isinstance(db.catalog.get_table(name), VirtualTable)

    def test_normalization_collapses_literals(self, session):
        session.execute("create table t (n int, s varchar(20))")
        session.execute("insert into t values (1, 'one')")
        session.execute("insert into t values (2, 'two')")
        session.execute("insert into t values (3, 'three')")
        result = session.execute(
            "select statement, calls from repro_stats.statements "
            "where calls >= 3"
        )
        keys = {row[0]: row[1] for row in result.rows}
        assert "INSERT INTO t VALUES ( ? , ? )" in keys
        assert keys["INSERT INTO t VALUES ( ? , ? )"] == 3

    def test_rows_scanned_and_returned(self, emps):
        emps.execute("select * from emps")
        result = emps.execute(
            "select rows_returned, rows_scanned "
            "from repro_stats.statements "
            "where statement = 'SELECT * FROM emps'"
        )
        [[returned, scanned]] = result.rows
        assert returned >= 1
        assert scanned >= returned

    def test_timings_accumulate(self, emps):
        for _ in range(5):
            emps.execute("select state from emps where sales > 100")
        result = emps.execute(
            "select calls, total_ms, mean_ms, p99_ms "
            "from repro_stats.statements "
            "where statement like 'SELECT state FROM emps%'"
        )
        [[calls, total_ms, mean_ms, p99_ms]] = result.rows
        assert calls == 5
        assert total_ms > 0
        assert abs(mean_ms - total_ms / calls) < 1e-6
        assert p99_ms > 0

    def test_plan_cache_hits_counted(self, emps):
        for _ in range(4):
            emps.execute("select id from emps")
        result = emps.execute(
            "select calls, plan_cache_hits from repro_stats.statements "
            "where statement = 'SELECT id FROM emps'"
        )
        [[calls, hits]] = result.rows
        assert calls == 4
        assert hits >= 2  # first call plans; later calls hit the cache

    def test_errors_by_sqlstate(self, session):
        for _ in range(2):
            with pytest.raises(errors.SQLException) as info:
                session.execute("select * from no_such_table")
        sqlstate = info.value.sqlstate
        result = session.execute(
            "select calls, errors, error_sqlstates "
            "from repro_stats.statements "
            "where statement = 'SELECT * FROM no_such_table'"
        )
        [[calls, error_count, states]] = result.rows
        assert calls == 2 and error_count == 2
        assert states == f"{sqlstate}:2"

    def test_prepared_statements_recorded(self, emps):
        plan = emps.prepare("select state from emps where id = ?")
        for ident in ("E0001", "E0002"):
            plan.execute((ident,))
        result = emps.execute(
            "select calls, plan_cache_hits from repro_stats.statements "
            "where statement = 'SELECT state FROM emps WHERE id = ?'"
        )
        [[calls, hits]] = result.rows
        assert calls == 2 and hits == 2

    def test_disabled_switch(self, session):
        session.execute("create table t (n int)")
        stats.set_enabled(False)
        session.execute("insert into t values (42)")
        result = session.execute(
            "select statement from repro_stats.statements "
            "where statement like 'INSERT%'"
        )
        assert result.rows == []

    def test_stats_view_scan_does_not_perturb_scan_counts(self, emps):
        emps.execute("select * from repro_stats.statements")
        result = emps.execute(
            "select rows_scanned from repro_stats.statements "
            "where statement = 'SELECT * FROM repro_stats.statements'"
        )
        [[scanned]] = result.rows
        assert scanned == 0  # VirtualScan reads stats, not the heap

    def test_explain_shows_virtualscan(self, session):
        result = session.execute(
            "explain select * from repro_stats.statements"
        )
        lines = [row[0] for row in result.rows]
        assert any("VirtualScan on repro_stats.statements" in l
                   for l in lines)

    def test_fresh_rows_on_cached_plan(self, session):
        session.execute("create table t (n int)")
        first = session.execute(
            "select calls from repro_stats.statements "
            "where statement = 'INSERT INTO t VALUES ( ? )'"
        )
        assert first.rows == []
        session.execute("insert into t values (1)")
        second = session.execute(
            "select calls from repro_stats.statements "
            "where statement = 'INSERT INTO t VALUES ( ? )'"
        )
        assert second.rows == [[1]]  # same cached plan, fresh rows


# ---------------------------------------------------------------------------
# read-only enforcement
# ---------------------------------------------------------------------------


class TestReadOnly:
    @pytest.mark.parametrize("sql", [
        "insert into repro_stats.statements (statement) values ('x')",
        "update repro_stats.statements set calls = 0",
        "delete from repro_stats.statements",
        "drop table repro_stats.statements",
        "alter table repro_stats.statements add column hacked int",
        "create index ix_stats on repro_stats.statements (calls)",
    ])
    def test_mutation_rejected(self, session, sql):
        with pytest.raises(errors.FeatureNotSupportedError):
            session.execute(sql)

    def test_not_persisted(self, tmp_path):
        url = "pydbc:standard:statsdur"
        with repro.connect(url, data_dir=str(tmp_path)) as conn:
            stmt = conn.create_statement()
            stmt.execute_update("create table t (n int)")
            stmt.execute_update("insert into t values (7)")
        registry.clear()  # drop the cached instance; force a reopen
        with repro.connect(url, data_dir=str(tmp_path)) as conn:
            stmt = conn.create_statement()
            rs = stmt.execute_query("select n from t")
            assert rs.next() and rs.get_int(1) == 7
            # Bootstrap re-registered the views; restore did not collide.
            rs = stmt.execute_query(
                "select statement from repro_stats.statements"
            )
            assert rs is not None


# ---------------------------------------------------------------------------
# wait profiling
# ---------------------------------------------------------------------------


class TestWaitProfiling:
    def test_exclusive_waits_attributed_to_ddl(self, db):
        """16-thread mixed workload: DDL statements that block on the
        database lock show up with nonzero exclusive wait time in
        ``repro_stats.locks``.  (DML runs under the shared lock since
        MVCC, so only catalog changes contend for exclusive access.)"""
        setup = db.create_session(autocommit=True)
        setup.execute("create table t (n int)")

        started = threading.Barrier(17)
        failures = []

        def ddl_writer(n):
            session = db.create_session(autocommit=True)
            started.wait()
            try:
                for i in range(3):
                    session.execute(f"create table w{n}_{i} (x int)")
                    session.execute(f"drop table w{n}_{i}")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        def reader():
            session = db.create_session(autocommit=True)
            started.wait()
            try:
                for _ in range(5):
                    session.execute("select n from t")
            except Exception as exc:  # pragma: no cover - diagnostic
                failures.append(exc)

        threads = [
            threading.Thread(target=ddl_writer, args=(n,))
            for n in range(8)
        ] + [threading.Thread(target=reader) for _ in range(8)]
        for thread in threads:
            thread.start()
        # Belt and suspenders: hold the shared lock while the 16 threads
        # fire their first statements, guaranteeing every DDL writer
        # blocks at least once (readers pass, writers queue).
        with db.lock.read():
            started.wait()
            time.sleep(0.05)
        for thread in threads:
            thread.join()
        assert not failures

        result = setup.execute(
            "select statement, exclusive_waits, exclusive_wait_ms "
            "from repro_stats.locks"
        )
        by_statement = {row[0]: (row[1], row[2]) for row in result.rows}
        # The global lock row counts every blocked acquisition.
        waits, wait_ms = by_statement["(database)"]
        assert waits > 0 and wait_ms > 0
        # And the DDL statements are charged their own share.
        ddl_waits = sum(
            row_waits
            for statement, (row_waits, _ms) in by_statement.items()
            if statement.startswith(("CREATE TABLE", "DROP TABLE"))
        )
        assert ddl_waits > 0
        # The same attribution is visible on the statements view.
        result = setup.execute(
            "select statement, exclusive_wait_ms "
            "from repro_stats.statements"
        )
        assert any(
            statement.startswith(("CREATE TABLE", "DROP TABLE"))
            and exclusive_ms > 0
            for statement, exclusive_ms in result.rows
        )

    def test_wal_wait_attributed(self, tmp_path):
        with repro.connect(
            "pydbc:standard:walstats", data_dir=str(tmp_path)
        ) as conn:
            stmt = conn.create_statement()
            stmt.execute_update("create table t (n int)")
            stmt.execute_update("insert into t values (1)")
            rs = stmt.execute_query(
                "select wal_wait_ms from repro_stats.statements "
                "where statement = 'INSERT INTO t VALUES ( ? )'"
            )
            assert rs.next()
            assert rs.get_float(1) > 0  # the commit fsync was charged

    def test_uncontended_lock_counts_nothing(self, session):
        session.execute("create table t (n int)")
        session.execute("insert into t values (1)")
        lock = session.database.lock
        assert lock.exclusive_wait_count == 0
        assert lock.exclusive_wait_seconds == 0.0


# ---------------------------------------------------------------------------
# the other views
# ---------------------------------------------------------------------------


class TestOtherViews:
    def test_sessions_view(self, db):
        first = db.create_session(autocommit=True)
        second = db.create_session(user="alice")
        result = first.execute(
            "select user_name, autocommit, in_txn, statements "
            "from repro_stats.sessions"
        )
        users = {row[0] for row in result.rows}
        assert {"dba", "alice"} <= users
        del second

    def test_metrics_view(self, emps):
        emps.execute("select * from emps")
        result = emps.execute(
            "select metric, value from repro_stats.metrics "
            "where kind = 'counter' and metric = 'rows.scanned'"
        )
        [[name, value]] = result.rows
        assert value > 0
        result = emps.execute(
            "select observations, total from repro_stats.metrics "
            "where kind = 'histogram' and metric = 'waits.lock.shared'"
        )
        assert len(result.rows) == 1  # histogram registered, maybe empty

    def test_pool_view(self):
        with repro.connect("pydbc:standard:pooldb", pooled=True) as conn:
            stmt = conn.create_statement()
            rs = stmt.execute_query(
                "select pool_name, size, in_use from repro_stats.pool"
            )
            rows = []
            while rs.next():
                rows.append((rs.get_string(1), rs.get_int(2),
                             rs.get_int(3)))
            assert any(size >= 1 and used >= 1 for _n, size, used in rows)

    def test_server_view_over_the_wire(self, server):
        with repro.connect(url_of(server, "srvstats")) as conn:
            stmt = conn.create_statement()
            stmt.execute_query("select 1")
            rs = stmt.execute_query(
                "select metric, value from repro_stats.server "
                "where metric = 'server.requests'"
            )
            assert rs.next()
            assert rs.get_float(2) >= 1
            rs = stmt.execute_query(
                "select observations from repro_stats.server "
                "where metric = 'server.request.seconds'"
            )
            assert rs.next() and rs.get_int(1) >= 1


# ---------------------------------------------------------------------------
# identical shape locally and over the wire (acceptance)
# ---------------------------------------------------------------------------


class TestLocationTransparency:
    STATEMENT = (
        "select * from repro_stats.statements order by total_ms desc"
    )

    def test_statements_view_same_shape_local_and_remote(self, server):
        with repro.connect("pydbc:standard:shape_local") as local, \
                repro.connect(url_of(server, "shape_remote")) as remote:
            for conn in (local, remote):
                stmt = conn.create_statement()
                stmt.execute_update("create table t (n int)")
                stmt.execute_update("insert into t values (1)")
            local_rs = local.create_statement().execute_query(
                self.STATEMENT
            )
            remote_rs = remote.create_statement().execute_query(
                self.STATEMENT
            )
            assert shape_of(local_rs) == shape_of(remote_rs)
            assert len(shape_of(local_rs)) == 13

            def keyed(rs):
                rows = {}
                while rs.next():
                    rows[rs.get_string(1)] = rs.get_int(2)
                return rows

            local_rows, remote_rows = keyed(local_rs), keyed(remote_rs)
            key = "INSERT INTO t VALUES ( ? )"
            assert local_rows[key] == 1
            assert remote_rows[key] == 1

    def test_all_views_queryable_remotely(self, server):
        with repro.connect(url_of(server, "allviews")) as conn:
            stmt = conn.create_statement()
            for name in STATS_VIEW_NAMES:
                stmt.execute_query(f"select * from {name}")


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_engine_records_with_wait_breakdown(self, emps):
        out = io.StringIO()
        slowlog.configure(0.0, stream=out)
        emps.execute("select state from emps where sales > 50")
        records = [json.loads(line) for line in
                   out.getvalue().splitlines()]
        [record] = [r for r in records
                    if r["statement"].startswith("select state")]
        assert record["source"] == "engine"
        assert record["db"] == "testdb"
        assert record["key"] == "SELECT state FROM emps WHERE sales > ?"
        assert record["duration_ms"] >= 0
        assert set(record["waits"]) == {
            "lock_shared_ms", "lock_exclusive_ms", "wal_sync_ms",
        }
        assert record["rows_scanned"] >= record["rows"] >= 1

    def test_threshold_filters(self, session):
        out = io.StringIO()
        slowlog.configure(60_000.0, stream=out)  # a minute: nothing logs
        session.execute("select 1")
        assert out.getvalue() == ""

    def test_per_session_override_wins(self, tmp_path):
        out = io.StringIO()
        slowlog.configure(None, stream=out)  # globally off
        with repro.connect(
            "pydbc:standard:slowsess", slow_query_ms=0
        ) as conn:
            conn.create_statement().execute_query("select 1")
        assert any(
            json.loads(line)["statement"] == "select 1"
            for line in out.getvalue().splitlines()
        )

    def test_error_statements_logged_with_sqlstate(self, session):
        out = io.StringIO()
        slowlog.configure(0.0, stream=out)
        with pytest.raises(errors.SQLException):
            session.execute("select * from missing_table")
        records = [json.loads(line) for line in
                   out.getvalue().splitlines()]
        [record] = [r for r in records if "missing_table" in r["statement"]]
        assert record["sqlstate"] == "42P01"

    def test_client_side_record_over_the_wire(self, server):
        out = io.StringIO()
        slowlog.configure(None, stream=out)
        with repro.connect(
            url_of(server, "slowremote"), slow_query_ms=0
        ) as conn:
            conn.create_statement().execute_query("select 1")
        records = [json.loads(line) for line in
                   out.getvalue().splitlines()]
        client = [r for r in records if r["source"] == "client"]
        assert client and client[0]["db"] == "slowremote"
        assert "waits" not in client[0]  # no engine context client-side

    def test_server_threshold_applies_to_remote_sessions(self):
        out = io.StringIO()
        slowlog.configure(None, stream=out)
        srv = ReproServer(slow_query_ms=0).start_background()
        try:
            with repro.connect(
                f"repro://127.0.0.1:{srv.port}/srvslow"
            ) as conn:
                conn.create_statement().execute_query("select 1")
        finally:
            srv.stop_background()
        records = [json.loads(line) for line in
                   out.getvalue().splitlines()]
        engine = [r for r in records if r["source"] == "engine"]
        assert any(r["statement"] == "select 1" for r in engine)

    def test_slow_query_counter_bumps(self, session):
        out = io.StringIO()
        slowlog.configure(0.0, stream=out)
        before = repro.observability.snapshot()["counters"].get(
            "slow_query.count", 0
        )
        session.execute("select 1")
        after = repro.observability.snapshot()["counters"][
            "slow_query.count"
        ]
        assert after > before
