"""SQLJ Part 0 translator.

Translates ``.psqlj`` sources — Python programs with embedded ``#sql``
clauses — into importable Python modules plus serialized profiles,
running ahead-of-time syntax and semantic checks on every clause (the
:class:`~repro.translator.checker.SQLChecker` framework) before any code
is generated.  Pipeline (paper slides "SQLJ compilation phases")::

    Foo.psqlj --[Translator]--> Foo.py + Foo_SJProfile0.ser ...
              --[packaging]--> Foo.pjar
              --[customizer]--> Foo.pjar with vendor customizations

Python has no compile step, so the generated module is immediately
importable; profile loading happens at import time.
"""

from repro.translator.checker import (
    CheckMessage,
    OfflineChecker,
    OnlineChecker,
    SQLChecker,
)
from repro.translator.translator import (
    TranslationOptions,
    TranslationResult,
    Translator,
    translate_file,
    translate_source,
)

__all__ = [
    "Translator",
    "TranslationOptions",
    "TranslationResult",
    "translate_file",
    "translate_source",
    "SQLChecker",
    "OfflineChecker",
    "OnlineChecker",
    "CheckMessage",
]
