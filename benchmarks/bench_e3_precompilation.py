"""E3 — "Offline pre-compilation (for performance)" (paper slide 6).

The same parameterised query runs M times against an N-row table through
three execution paths:

* **dynamic** — parse + plan + execute on every call (``Statement``),
* **prepared-once** — parse + plan once, execute M times
  (``PreparedStatement``; what a careful JDBC program does),
* **customized profile** — the statement was parsed and planned at
  *deployment* time by the profile customizer; run time only executes
  (what a SQLJ binary does after customization).

Expected shape: customized <= prepared-once << dynamic; the gap to
dynamic grows with statement complexity and M, and is largest for cheap
queries where parse time dominates.
"""

import time

import pytest

from benchmarks.common import fresh_name, make_emps_db, report
from repro.profiles.customization import ConnectedProfile
from repro.profiles.customizer import customize_profile
from repro.profiles.model import EntryInfo, Profile

POINT_QUERY = (
    "SELECT name, sales FROM emps WHERE id = ? AND sales IS NOT NULL"
)
COMPLEX_QUERY = (
    "SELECT state, COUNT(*) AS n, SUM(sales) AS total FROM emps "
    "WHERE sales > ? GROUP BY state HAVING COUNT(*) > 1 "
    "ORDER BY total DESC LIMIT 5"
)


def make_profile(sql):
    profile = Profile(
        name=fresh_name("e3_profile"), context_type="Default"
    )
    profile.data.add(EntryInfo(index=0, sql=sql, role="QUERY"))
    return profile


@pytest.fixture(scope="module")
def engine():
    database, session = make_emps_db(2000, name="e3")
    return database, session


def run_paths(session, sql, params, executions, repeats=3):
    """Wall times for dynamic / prepared-once / customized.

    Each path runs ``repeats`` times and keeps the fastest run, which
    suppresses scheduler noise for the scan-bound configurations.
    """
    prepared = session.prepare(sql)
    profile = make_profile(sql)
    customize_profile(profile, session.dialect.name)
    connected = ConnectedProfile(profile, session)
    statement = connected.get_statement(0)  # plan built here, once

    def time_path(fn):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(executions):
                fn()
            best = min(best, time.perf_counter() - start)
        return best

    return {
        "dynamic": time_path(lambda: session.execute(sql, params)),
        "prepared": time_path(lambda: prepared.execute(params)),
        "customized": time_path(lambda: statement.execute(params)),
    }


class TestPrecompilationShape:
    def test_shape_across_queries_and_volumes(self, engine):
        _database, session = engine
        rows = []
        shapes_hold = []
        for label, sql, params in [
            ("point", POINT_QUERY, ["E0001"]),
            ("complex", COMPLEX_QUERY, [100]),
        ]:
            for executions in (50, 200):
                timings = run_paths(session, sql, params, executions)
                rows.append(
                    (
                        label,
                        executions,
                        f"{timings['dynamic'] * 1000:.1f}ms",
                        f"{timings['prepared'] * 1000:.1f}ms",
                        f"{timings['customized'] * 1000:.1f}ms",
                        f"{timings['dynamic'] / timings['customized']:.2f}x",
                    )
                )
                # 10% tolerance: on scan-bound configurations the parse
                # saving is small relative to execution, so noise can
                # nudge individual runs.
                shapes_hold.append(
                    timings["customized"] <= timings["dynamic"] * 1.10
                    and timings["prepared"] <= timings["dynamic"] * 1.10
                )
        report(
            "E3: execution paths (N=2000 rows)",
            rows,
            ("query", "execs", "dynamic", "prepared-once",
             "customized", "dyn/custom"),
        )
        # who wins: precompiled never loses to per-call parsing.
        assert all(shapes_hold)

    def test_parse_avoidance_grows_with_cheap_queries(self, engine):
        _database, session = engine
        cheap = run_paths(session, "SELECT 1 + ?", [1], 200)
        scan = run_paths(session, POINT_QUERY, ["E0001"], 200)
        cheap_ratio = cheap["dynamic"] / cheap["customized"]
        scan_ratio = scan["dynamic"] / scan["customized"]
        # Parse cost dominates the cheap statement, so skipping it
        # helps relatively more there.
        assert cheap_ratio > scan_ratio * 0.8  # allow noise margin
        assert cheap_ratio > 1.5


@pytest.mark.benchmark(group="e3-point-query")
def test_dynamic_execution(benchmark, engine):
    _database, session = engine
    benchmark(session.execute, POINT_QUERY, ["E0001"])


@pytest.mark.benchmark(group="e3-point-query")
def test_prepared_once_execution(benchmark, engine):
    _database, session = engine
    prepared = session.prepare(POINT_QUERY)
    benchmark(prepared.execute, ["E0001"])


@pytest.mark.benchmark(group="e3-point-query")
def test_customized_profile_execution(benchmark, engine):
    _database, session = engine
    profile = make_profile(POINT_QUERY)
    customize_profile(profile, "standard")
    statement = ConnectedProfile(profile, session).get_statement(0)
    benchmark(statement.execute, ["E0001"])


@pytest.mark.benchmark(group="e3-complex-query")
def test_dynamic_complex(benchmark, engine):
    _database, session = engine
    benchmark(session.execute, COMPLEX_QUERY, [100])


@pytest.mark.benchmark(group="e3-complex-query")
def test_customized_complex(benchmark, engine):
    _database, session = engine
    profile = make_profile(COMPLEX_QUERY)
    customize_profile(profile, "standard")
    statement = ConnectedProfile(profile, session).get_statement(0)
    benchmark(statement.execute, [100])
