"""Direct unit tests for engine internals: catalog, storage,
privilege manager, dialects and the built-in function registry."""

import pytest

from repro import errors
from repro.engine.catalog import (
    Catalog,
    Column,
    InstalledPar,
    Table,
    parse_external_name,
)
from repro.engine.dialects import ACME, DIALECTS, STANDARD, ZENITH
from repro.engine.functions import BUILTINS, NULL_TOLERANT, lookup_builtin
from repro.engine.mvcc import TransactionManager, WriteConflict
from repro.engine.privileges import PrivilegeManager
from repro.engine.storage import RowStore, TransactionLog
from repro.sqltypes import IntegerType, VarCharType


def make_table(name="t"):
    return Table(
        name,
        [Column("a", IntegerType()), Column("b", VarCharType(10))],
        owner="owner",
    )


class TestCatalog:
    def test_table_lifecycle(self):
        catalog = Catalog()
        table = make_table()
        catalog.create_table(table)
        assert catalog.get_table("t") is table
        assert catalog.get_relation("t") is table
        catalog.drop_table("t")
        with pytest.raises(errors.UndefinedTableError):
            catalog.get_table("t")

    def test_duplicate_table(self):
        catalog = Catalog()
        catalog.create_table(make_table())
        with pytest.raises(errors.DuplicateObjectError):
            catalog.create_table(make_table())

    def test_duplicate_column_rejected(self):
        with pytest.raises(errors.DuplicateObjectError):
            Table(
                "t",
                [Column("a", IntegerType()), Column("a", IntegerType())],
                owner="o",
            )

    def test_column_position(self):
        table = make_table()
        assert table.column_position("b") == 1
        assert table.has_column("a")
        assert not table.has_column("z")
        with pytest.raises(errors.UndefinedColumnError):
            table.column_position("z")

    def test_par_lifecycle(self):
        catalog = Catalog()
        par = InstalledPar(name="p", url="u", modules={"m": "x = 1"})
        catalog.install_par(par)
        assert catalog.get_par("p") is par
        with pytest.raises(errors.ParInstallationError):
            catalog.install_par(par)
        catalog.remove_par("p")
        with pytest.raises(errors.UndefinedParError):
            catalog.get_par("p")

    @pytest.mark.parametrize(
        "external, expected",
        [
            ("par:mod.func", ("par", "mod", "func")),
            ("par:pkg.mod.func", ("par", "pkg.mod", "func")),
            ("mod.func", (None, "mod", "func")),
            ("Address", (None, "", "Address")),
            ("PAR:mod.f", ("par", "mod", "f")),  # par names fold
        ],
    )
    def test_parse_external_name(self, external, expected):
        assert parse_external_name(external) == expected

    def test_malformed_external_name(self):
        with pytest.raises(errors.RoutineResolutionError):
            parse_external_name("par:mod.")


class _StoreSession:
    """Bare-bones stand-in for :class:`repro.engine.database.Session`:
    just the two attributes :class:`RowStore` needs."""

    def __init__(self, manager=None):
        self.manager = manager or TransactionManager()
        self.transaction_log = TransactionLog()
        self.mvcc_txn = self.manager.begin()


class TestStorageAndTransactions:
    def test_insert_undo(self):
        table = make_table()
        session = _StoreSession()
        store = RowStore(table, session)
        store.insert([1, "x"])
        store.insert([2, "y"])
        assert len(table.versions) == 2
        # Uncommitted inserts are invisible to the committed-rows view
        # but visible to their own transaction.
        assert table.rows == []
        assert all(session.mvcc_txn.sees(v) for v in table.versions)
        session.transaction_log.rollback()
        assert table.versions == []
        assert session.mvcc_txn.created == set()

    def test_commit_stamps_versions(self):
        table = make_table()
        table.rows = [[1, "a"]]
        session = _StoreSession()
        store = RowStore(table, session)
        old = table.versions[0]
        store.claim(old)
        new = store.replace([9, "z"])
        stamp = session.manager.commit(session.mvcc_txn)
        assert old.end == stamp
        assert new.begin == stamp
        assert table.rows == [[9, "z"]]

    def test_delete_claim_and_undo(self):
        table = make_table()
        table.rows = [[1, "a"], [2, "b"]]
        session = _StoreSession()
        store = RowStore(table, session)
        target = table.versions[0]
        store.delete([target])
        assert target.xmax == session.mvcc_txn.id
        assert not session.mvcc_txn.sees(target)
        # Claimed but uncommitted: still committed-live for others.
        assert table.rows == [[1, "a"], [2, "b"]]
        session.transaction_log.rollback()
        assert target.xmax is None
        assert session.mvcc_txn.sees(target)
        assert session.mvcc_txn.claimed == set()

    def test_commit_clears_log(self):
        table = make_table()
        session = _StoreSession()
        RowStore(table, session).insert([1, "a"])
        log = session.transaction_log
        assert log.active
        assert log.commit() == 1
        assert not log.active
        assert log.rollback() == 0

    def test_interleaved_operations_roll_back_in_order(self):
        table = make_table()
        table.rows = [[1, "a"], [2, "b"]]
        session = _StoreSession()
        store = RowStore(table, session)
        seeded = list(table.versions)
        store.claim(seeded[0])
        store.replace([10, "a"])
        store.insert([3, "c"])
        store.delete([seeded[1]])
        session.transaction_log.rollback()
        assert table.rows == [[1, "a"], [2, "b"]]
        assert all(v.xmax is None for v in seeded)
        assert len(table.versions) == 2

    def test_claim_conflict_between_live_transactions(self):
        manager = TransactionManager()
        table = make_table()
        table.rows = [[1, "a"]]
        first = _StoreSession(manager)
        second = _StoreSession(manager)
        version = table.versions[0]
        RowStore(table, first).claim(version)
        with pytest.raises(WriteConflict) as conflict:
            RowStore(table, second).claim(version)
        assert conflict.value.blocker == first.mvcc_txn.id

    def test_claim_of_committed_delete_is_serialization_failure(self):
        manager = TransactionManager()
        table = make_table()
        table.rows = [[1, "a"]]
        first = _StoreSession(manager)
        second = _StoreSession(manager)  # snapshot before first commits
        second.mvcc_txn.pristine = False  # a completed statement pins it
        version = table.versions[0]
        RowStore(table, first).claim(version)
        manager.commit(first.mvcc_txn)
        with pytest.raises(errors.SerializationFailureError) as info:
            RowStore(table, second).claim(version)
        assert info.value.sqlstate == "40001"

    def test_claim_of_committed_delete_retryable_while_pristine(self):
        """A pristine transaction is not condemned to 40001: the claim
        raises WriteConflict so the session layer can refresh the
        snapshot and transparently re-run the statement."""
        manager = TransactionManager()
        table = make_table()
        table.rows = [[1, "a"]]
        first = _StoreSession(manager)
        second = _StoreSession(manager)  # snapshot before first commits
        version = table.versions[0]
        RowStore(table, first).claim(version)
        manager.commit(first.mvcc_txn)
        assert second.mvcc_txn.pristine
        with pytest.raises(WriteConflict) as conflict:
            RowStore(table, second).claim(version)
        assert conflict.value.blocker == first.mvcc_txn.id


class TestPrivilegeManager:
    def test_grant_check_revoke(self):
        manager = PrivilegeManager(admin_user="dba")
        manager.grant("SELECT", "TABLE", "t", ["smith"], "owner",
                      "owner")
        assert manager.holds("smith", "SELECT", "TABLE", "t", "owner")
        manager.revoke("SELECT", "TABLE", "t", ["smith"], "owner",
                       "owner")
        assert not manager.holds("smith", "SELECT", "TABLE", "t",
                                 "owner")

    def test_all_expands_to_table_privileges(self):
        manager = PrivilegeManager(admin_user="dba")
        manager.grant("ALL", "TABLE", "t", ["smith"], "owner", "owner")
        for privilege in ("SELECT", "INSERT", "UPDATE", "DELETE"):
            assert manager.holds(
                "smith", privilege, "TABLE", "t", "owner"
            )

    def test_owner_and_admin_implicit(self):
        manager = PrivilegeManager(admin_user="dba")
        assert manager.holds("owner", "SELECT", "TABLE", "t", "owner")
        assert manager.holds("dba", "DELETE", "TABLE", "t", "owner")

    def test_public_grantee(self):
        manager = PrivilegeManager(admin_user="dba")
        manager.grant("USAGE", "PAR", "p", ["public"], "owner", "owner")
        assert manager.holds("anyone", "USAGE", "PAR", "p", "owner")

    def test_only_owner_or_admin_grants(self):
        manager = PrivilegeManager(admin_user="dba")
        with pytest.raises(errors.PrivilegeError):
            manager.grant("SELECT", "TABLE", "t", ["x"], "random",
                          "owner")
        manager.grant("SELECT", "TABLE", "t", ["x"], "dba", "owner")

    def test_invalid_privilege_kind(self):
        manager = PrivilegeManager(admin_user="dba")
        with pytest.raises(errors.CatalogError):
            manager.grant("EXECUTE", "TABLE", "t", ["x"], "owner",
                          "owner")
        with pytest.raises(errors.CatalogError):
            manager.grant("SELECT", "PAR", "p", ["x"], "owner", "owner")

    def test_drop_object_forgets_grants(self):
        manager = PrivilegeManager(admin_user="dba")
        manager.grant("SELECT", "TABLE", "t", ["smith"], "owner",
                      "owner")
        manager.drop_object("TABLE", "t")
        assert not manager.holds("smith", "SELECT", "TABLE", "t",
                                 "owner")

    def test_require_raises(self):
        manager = PrivilegeManager(admin_user="dba")
        with pytest.raises(errors.PrivilegeError):
            manager.require("smith", "SELECT", "TABLE", "t", "owner")


class TestDialects:
    def test_registry_contents(self):
        assert set(DIALECTS) == {"standard", "acme", "zenith"}

    def test_standard_profile(self):
        assert STANDARD.limit_style == "limit"
        assert STANDARD.allows_double_pipe_concat
        assert not STANDARD.plus_concatenates_strings

    def test_acme_profile(self):
        assert ACME.limit_style == "top"
        assert ACME.plus_concatenates_strings
        assert not ACME.allows_double_pipe_concat

    def test_zenith_profile(self):
        assert ZENITH.limit_style == "fetch_first"
        assert ZENITH.allows_double_pipe_concat

    def test_dialects_are_frozen(self):
        with pytest.raises(Exception):
            STANDARD.limit_style = "top"  # type: ignore[misc]


class TestFunctionRegistry:
    def test_lookup_case_insensitive(self):
        assert lookup_builtin("UPPER") is lookup_builtin("upper")
        assert lookup_builtin("no_such_function") is None

    def test_null_tolerant_subset(self):
        assert NULL_TOLERANT <= set(BUILTINS)

    def test_every_builtin_callable(self):
        for name, fn in BUILTINS.items():
            assert callable(fn), name
