"""Tests for SQLJ Part 2: Python classes as SQL types."""

import pytest

from repro import errors
from repro.datatypes import create_type_ddl_for_class
from repro.datatypes.serialization import (
    deserialize_object,
    serialize_object,
)

from tests import paper_assets


@pytest.fixture
def people(address_types):
    """Session with addr types and the paper's emps_addr table."""
    session = address_types
    session.execute(paper_assets.PEOPLE_WITH_ADDRESSES_DDL)
    session.execute(
        "insert into emps_addr values('Bob Smith',"
        " new addr('432 Elm Street', '95123'),"
        " new addr_2_line('PO Box 99', 'attn: Bob Smith', '95123-0099'))"
    )
    return session


class TestCreateType:
    def test_types_registered(self, address_types):
        addr = address_types.catalog.get_type("addr")
        sub = address_types.catalog.get_type("addr_2_line")
        assert addr.python_class.__name__ == "Address"
        assert sub.supertype is addr

    def test_attribute_bindings(self, address_types):
        addr = address_types.catalog.get_type("addr")
        assert addr.attributes["zip_attr"].field_name == "zip"
        assert addr.attributes["rec_width_attr"].static

    def test_constructors_by_arity(self, address_types):
        addr = address_types.catalog.get_type("addr")
        arities = sorted(
            len(c.param_descriptors) for c in addr.constructors
        )
        assert arities == [0, 2]

    def test_subtype_inherits_members(self, address_types):
        sub = address_types.catalog.get_type("addr_2_line")
        assert sub.find_attribute("zip_attr") is not None  # inherited
        assert sub.find_attribute("line2_attr") is not None  # own
        assert sub.find_method("remove_leading_blanks") is not None

    def test_subtype_overrides_method(self, address_types):
        sub = address_types.catalog.get_type("addr_2_line")
        binding = sub.find_method("to_string")
        assert binding is sub.methods["to_string"]

    def test_under_requires_subclass(self, address_types):
        # Address is not a subclass of Address2Line.
        with pytest.raises(errors.CatalogError):
            address_types.execute(
                "create type not_a_sub under addr_2_line external name "
                "'address_par:addressmod.Address' language python ()"
            )

    def test_unknown_method_rejected(self, session, address_par):
        session.execute(
            f"call sqlj.install_par('{address_par}', 'address_par')"
        )
        with pytest.raises(errors.RoutineResolutionError):
            session.execute(
                "create type bad external name "
                "'address_par:addressmod.Address' language python ("
                "method nope () external name not_a_method)"
            )

    def test_unknown_static_attribute_rejected(self, session, address_par):
        session.execute(
            f"call sqlj.install_par('{address_par}', 'address_par')"
        )
        with pytest.raises(errors.RoutineResolutionError):
            session.execute(
                "create type bad external name "
                "'address_par:addressmod.Address' language python ("
                "static nope integer external name not_a_field)"
            )

    def test_duplicate_type_rejected(self, address_types):
        with pytest.raises(errors.DuplicateObjectError):
            address_types.execute(paper_assets.CREATE_TYPE_ADDR)

    def test_bare_class_name_resolution(self, session, address_par):
        # The paper writes ``external name Address`` with no module.
        session.execute(
            f"call sqlj.install_par('{address_par}', 'address_par')"
        )
        session.execute(
            "create type addr2 external name Address language python ("
            "zip_attr char(10) external name zip,"
            "method addr2 () returns addr2 external name Address)"
        )
        assert session.catalog.get_type(
            "addr2"
        ).python_class.__name__ == "Address"

    def test_drop_type(self, address_types):
        address_types.execute("drop type addr_2_line")
        address_types.execute("drop type addr")
        with pytest.raises(errors.UndefinedTypeError):
            address_types.catalog.get_type("addr")

    def test_drop_supertype_blocked_by_subtype(self, address_types):
        with pytest.raises(errors.CatalogError):
            address_types.execute("drop type addr")

    def test_drop_type_blocked_by_column(self, people):
        # Both types are used by emps_addr columns.
        with pytest.raises(errors.CatalogError):
            people.execute("drop type addr_2_line")
        with pytest.raises(errors.CatalogError):
            people.execute("drop type addr")


class TestColumnsOfObjectType:
    def test_paper_select_attributes(self, people):
        result = people.execute(
            "select name, home_addr>>zip_attr, home_addr>>street_attr, "
            "mailing_addr>>zip_attr from emps_addr "
            "where home_addr>>zip_attr <> mailing_addr>>zip_attr"
        )
        row = result.rows[0]
        assert row[0] == "Bob Smith"
        assert row[1].strip() == "95123"
        assert row[2] == "432 Elm Street"

    def test_methods_and_comparison(self, people):
        result = people.execute(
            "select name, home_addr>>to_string(), "
            "mailing_addr>>to_string() from emps_addr "
            "where home_addr <> mailing_addr"
        )
        assert result.rows[0][1].startswith("Street= 432 Elm Street")
        assert "Line2=" in result.rows[0][2]

    def test_static_attribute_via_type_name(self, people):
        assert people.execute(
            "select addr>>rec_width_attr from emps_addr"
        ).rows == [[25]]

    def test_static_method(self, people):
        assert people.execute(
            "select addr>>contiguous(home_addr, mailing_addr) "
            "from emps_addr"
        ).rows[0][0].strip() == "yes"

    def test_update_attribute_path(self, people):
        people.execute(
            "update emps_addr set home_addr>>zip_attr = '99123' "
            "where name = 'Bob Smith'"
        )
        assert people.execute(
            "select home_addr>>zip_attr from emps_addr"
        ).rows[0][0].strip() == "99123"

    def test_update_whole_column_substitutability(self, people):
        # ``set home_addr = mailing_addr`` — normal substitutability.
        people.execute(
            "update emps_addr set home_addr = mailing_addr "
            "where home_addr is not null"
        )
        result = people.execute(
            "select home_addr>>to_string() from emps_addr"
        )
        assert "Line2=" in result.rows[0][0]  # dynamic dispatch

    def test_supertype_column_rejects_unrelated_value(self, people):
        with pytest.raises(errors.InvalidCastError):
            people.execute(
                "update emps_addr set home_addr = name"
            )

    def test_subtype_column_rejects_supertype_value(self, people):
        with pytest.raises(errors.InvalidCastError):
            people.execute(
                "update emps_addr set mailing_addr = "
                "new addr('plain', '11111')"
            )

    def test_null_object_column(self, people):
        people.execute(
            "insert into emps_addr values ('Nobody', null, null)"
        )
        result = people.execute(
            "select home_addr>>zip_attr, home_addr>>to_string() "
            "from emps_addr where name = 'Nobody'"
        )
        assert result.rows == [[None, None]]

    def test_attribute_update_on_null_object_fails(self, people):
        people.execute(
            "insert into emps_addr values ('Nobody', null, null)"
        )
        with pytest.raises(errors.NullValueError):
            people.execute(
                "update emps_addr set home_addr>>zip_attr = '1' "
                "where name = 'Nobody'"
            )

    def test_method_mutating_object_does_not_change_stored_value(
        self, people
    ):
        # remove_leading_blanks mutates the *copy* used in the query.
        people.execute(
            "update emps_addr set home_addr>>street_attr = '  padded' "
        )
        people.execute(
            "select home_addr>>remove_leading_blanks() from emps_addr"
        )
        assert people.execute(
            "select home_addr>>street_attr from emps_addr"
        ).rows[0][0] == "  padded"

    def test_objects_by_value_on_insert(self, people, db):
        # Mutating the host object after set_object must not affect the
        # stored row.
        from repro import DriverManager

        par = db.catalog.get_par("address_par")
        loader = db.par_loader
        module = loader.load_module(par, "addressmod")
        address = module.Address("First Street", "00001")

        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=db)
        stmt = conn.prepare_statement(
            "insert into emps_addr values ('Obj', ?, null)"
        )
        stmt.set_object(1, address)
        stmt.execute_update()
        address.street = "Mutated After Insert"
        assert people.execute(
            "select home_addr>>street_attr from emps_addr "
            "where name = 'Obj'"
        ).rows == [["First Street"]]

    def test_get_object_returns_copy(self, people, db):
        from repro import DriverManager

        conn = DriverManager.get_connection("pydbc:standard:x",
                                            database=db)
        rs = conn.create_statement().execute_query(
            "select home_addr from emps_addr where name = 'Bob Smith'"
        )
        rs.next()
        fetched = rs.get_object(1)
        fetched.street = "Client-side mutation"
        assert people.execute(
            "select home_addr>>street_attr from emps_addr"
        ).rows == [["432 Elm Street"]]

    def test_constructor_arity_mismatch(self, people):
        with pytest.raises(errors.UndefinedRoutineError):
            people.execute(
                "insert into emps_addr values "
                "('X', new addr('only-street'), null)"
            )

    def test_unknown_attribute(self, people):
        with pytest.raises(errors.UndefinedColumnError):
            people.execute(
                "select home_addr>>no_such_attr from emps_addr"
            )

    def test_unknown_method(self, people):
        with pytest.raises(errors.UndefinedRoutineError):
            people.execute(
                "select home_addr>>no_such_method() from emps_addr"
            )

    def test_constructor_coerces_char_params(self, people):
        people.execute(
            "insert into emps_addr values "
            "('Y', new addr('s', '9'), null)"
        )
        # z_parm is char(10): padded to ten characters in the object.
        assert people.execute(
            "select home_addr>>zip_attr from emps_addr where name = 'Y'"
        ).rows == [["9".ljust(10)]]

    def test_group_by_object_column(self, people):
        people.execute(
            "insert into emps_addr values ('Bob Twin',"
            " new addr('432 Elm Street', '95123     '), null)"
        )
        result = people.execute(
            "select count(*) from emps_addr group by home_addr"
        )
        assert sorted(r[0] for r in result.rows) == [2]


class TestMethodExceptionMapping:
    def test_method_exception_becomes_sqlstate(self, session, tmp_path):
        from repro.procedures import build_par

        par = build_par(
            str(tmp_path / "angry.par"),
            {
                "angry": (
                    "class Angry:\n"
                    "    def __init__(self):\n"
                    "        pass\n"
                    "    def shout(self):\n"
                    "        raise RuntimeError('objection!')\n"
                )
            },
        )
        session.execute(f"call sqlj.install_par('{par}', 'ap')")
        session.execute(
            "create type angry external name 'ap:angry.Angry' "
            "language python ("
            "method angry () returns angry external name Angry,"
            "method shout () external name shout)"
        )
        session.execute("create table a_table (a angry)")
        session.execute("insert into a_table values (new angry())")
        with pytest.raises(errors.ExternalRoutineError) as info:
            session.execute("select a>>shout() from a_table")
        assert info.value.message == "objection!"


class TestDdlGeneration:
    def test_generates_valid_create_type(self, session):
        ddl = create_type_ddl_for_class(PlainPoint)
        assert "create type plain_point" in ddl
        assert "external name" in ddl
        session.execute(ddl)
        udt = session.catalog.get_type("plain_point")
        assert udt.python_class is PlainPoint
        session.execute("create table pts (p plain_point)")
        session.execute("insert into pts values (new plain_point(1, 2))")
        assert session.execute(
            "select p>>magnitude_squared() from pts"
        ).rows == [[5]]

    def test_snake_case_conversion(self):
        ddl = create_type_ddl_for_class(PlainPoint)
        assert "magnitude_squared" in ddl

    def test_unmappable_class_rejected(self):
        class Opaque:
            def __init__(self, blob):
                self.blob = blob

        with pytest.raises(errors.CatalogError):
            create_type_ddl_for_class(Opaque)


class PlainPoint:
    """Module-level class so CREATE TYPE can import it by dotted name."""

    x: int
    y: int

    def __init__(self, x: int, y: int):
        self.x = x
        self.y = y

    def magnitude_squared(self) -> int:
        return self.x * self.x + self.y * self.y


class TestSerialization:
    def test_roundtrip(self):
        point = PlainPoint(3, 4)
        again = deserialize_object(serialize_object(point))
        assert again.x == 3 and again.y == 4

    def test_unserialisable_rejected(self):
        with pytest.raises(errors.DataError):
            serialize_object(lambda: None)

    def test_bad_payload_rejected(self):
        with pytest.raises(errors.DataError):
            deserialize_object(b"garbage")


MONEY_MODULE = '''
class Money:
    def __init__(self, currency="USD", cents=0):
        self.currency = currency
        self.cents = int(cents)

    def compare_to(self, other):
        if self.currency != other.currency:
            return -1 if self.currency < other.currency else 1
        return (self.cents > other.cents) - (self.cents < other.cents)

    def same_currency(self, other):
        return 0 if self.currency == other.currency else 1
'''


class TestOrderingSpecs:
    @pytest.fixture
    def money(self, session, tmp_path):
        from repro.procedures import build_par

        par = build_par(
            str(tmp_path / "money.par"), {"moneymod": MONEY_MODULE}
        )
        session.execute(f"call sqlj.install_par('{par}', 'money_par')")
        session.execute("""
            create type money external name 'money_par:moneymod.Money'
            language python (
              cents_attr integer external name cents,
              method money (c varchar(3), cents integer) returns money
                external name Money,
              method compare_to (other money) returns integer
                external name compare_to,
              ordering full by method compare_to
            )
        """)
        session.execute("create table prices (item varchar(10), p money)")
        for item, cents in [("b", 300), ("a", 100), ("c", 200)]:
            session.execute(
                f"insert into prices values ('{item}', "
                f"new money('USD', {cents}))"
            )
        return session

    def test_full_ordering_enables_relational_operators(self, money):
        result = money.execute(
            "select item from prices where p > new money('USD', 150) "
            "order by item"
        )
        assert [r[0] for r in result.rows] == ["b", "c"]

    def test_full_ordering_enables_order_by(self, money):
        result = money.execute(
            "select item from prices order by p desc"
        )
        assert [r[0] for r in result.rows] == ["b", "c", "a"]

    def test_equality_through_ordering_method(self, money):
        result = money.execute(
            "select item from prices where p = new money('USD', 200)"
        )
        assert result.rows == [["c"]]

    def test_ordering_inherited_by_subtypes(self, money, tmp_path):
        from repro.procedures import build_par

        par = build_par(
            str(tmp_path / "money2.par"),
            {"money2mod": (
                "from moneymod import Money\n"
                "class TaxedMoney(Money):\n"
                "    pass\n"
            )},
        )
        money.execute(f"call sqlj.install_par('{par}', 'money2_par')")
        money.execute(
            "call sqlj.alter_module_path('money2_par', '(*, money_par)')"
        )
        money.execute("""
            create type taxed_money under money
            external name 'money2_par:money2mod.TaxedMoney'
            language python ()
        """)
        udt = money.catalog.get_type("taxed_money")
        assert udt.find_ordering() == ("FULL", "compare_to")

    def test_equals_only_ordering_rejects_relational(self, session,
                                                     tmp_path):
        from repro.procedures import build_par

        par = build_par(
            str(tmp_path / "money3.par"), {"money3mod": MONEY_MODULE}
        )
        session.execute(f"call sqlj.install_par('{par}', 'm3')")
        session.execute("""
            create type currency external name 'm3:money3mod.Money'
            language python (
              method currency (c varchar(3), cents integer)
                returns currency external name Money,
              method same_currency (other currency) returns integer
                external name same_currency,
              ordering equals only by method same_currency
            )
        """)
        session.execute("create table wallets (w currency)")
        session.execute(
            "insert into wallets values (new currency('USD', 1))"
        )
        # equality works...
        assert session.execute(
            "select count(*) from wallets "
            "where w = new currency('USD', 999)"
        ).rows == [[1]]
        # ...ordering comparisons are compile-time errors.
        with pytest.raises(errors.InvalidCastError):
            session.execute(
                "select count(*) from wallets "
                "where w < new currency('USD', 999)"
            )
        with pytest.raises(errors.InvalidCastError):
            session.execute("select w from wallets order by w")

    def test_unknown_ordering_method_rejected(self, session, tmp_path):
        from repro.procedures import build_par

        par = build_par(
            str(tmp_path / "money4.par"), {"money4mod": MONEY_MODULE}
        )
        session.execute(f"call sqlj.install_par('{par}', 'm4')")
        with pytest.raises(errors.RoutineResolutionError):
            session.execute("""
                create type bad_money external name 'm4:money4mod.Money'
                language python (
                  ordering full by method nonexistent
                )
            """)
