"""Retry helper for serialization failures (SQLSTATE 40001).

Under snapshot isolation a transaction can lose a write-write race and
fail with :class:`repro.errors.SerializationFailureError`; the standard
application response is to roll back and run the whole transaction
again on a fresh snapshot.  :func:`retry_serialization` packages that
loop so tests (and example programs in ``docs/TRANSACTIONS.md``) state
*what* the transaction does, not how it retries.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, TypeVar

from repro import errors

__all__ = ["retry_serialization"]

T = TypeVar("T")


def retry_serialization(
    attempt: Callable[[], T],
    *,
    attempts: int = 10,
    on_failure: Optional[Callable[[], Any]] = None,
) -> T:
    """Run ``attempt`` until it succeeds or ``attempts`` is exhausted.

    ``attempt`` must be a complete transaction: begin-to-commit for an
    engine session, or a function driving a dbapi connection that
    commits at the end.  On :class:`~repro.errors.SerializationFailureError`
    (and only that error — other failures propagate immediately)
    ``on_failure`` is called if given (typically ``session.rollback``
    or ``connection.rollback`` to reset the failed transaction) and the
    attempt is repeated.  The last failure is re-raised when the budget
    runs out, so a genuinely stuck workload still surfaces 40001.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    for remaining in range(attempts - 1, -1, -1):
        try:
            return attempt()
        except errors.SerializationFailureError:
            if on_failure is not None:
                on_failure()
            if remaining == 0:
                raise
    raise AssertionError("unreachable")  # pragma: no cover
