"""Observability: tracing and metrics for the whole statement pipeline.

The SQLJ paper's pitch is that the translator/profile machinery makes
database access *inspectable*; this package extends that to run time.
Two independent facilities:

* :mod:`repro.observability.tracing` — hierarchical spans
  (``statement`` → ``parse``/``plan``/``execute``/``fetch``) threaded
  through the engine, the dbapi layer, the SQLJ runtime and external
  procedures.  Off by default (all hooks are no-ops); enabled via the
  ``REPRO_TRACE`` environment variable, the ``psqlj --trace`` flag, or
  :func:`enable_tracing`.
* :mod:`repro.observability.metrics` — always-on process-wide counters
  and histograms.  ``repro.observability.snapshot()`` returns the
  consolidated view.
* :mod:`repro.observability.stats` — per-normalized-statement execution
  profile with wait attribution, served as the SQL-queryable
  ``repro_stats.*`` views (see ``docs/OBSERVABILITY.md``).
* :mod:`repro.observability.slowlog` — structured JSON-lines slow-query
  log, thresholded per session or process-wide.

Operator-level instrumentation (per-node row counts and timings) lives
with the executor — see ``EXPLAIN ANALYZE`` and
:func:`repro.engine.executor.instrument_plan`.
"""

from repro.observability import metrics
from repro.observability import slowlog
from repro.observability import stats
from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    registry,
    snapshot,
)
from repro.observability.metrics import reset as reset_metrics
from repro.observability.tracing import (
    NullTracer,
    Span,
    Tracer,
    configure_from_environment,
    disable_tracing,
    enable_tracing,
    get_tracer,
    set_tracer,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "metrics",
    "slowlog",
    "stats",
    "registry",
    "snapshot",
    "reset_metrics",
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "configure_from_environment",
]
