"""Seeded SQL workload generation.

:class:`WorkloadGenerator` emits a stream of SELECT / INSERT / UPDATE /
DELETE statements over one fixed table, drawn from a ``random.Random``
seeded at construction — the same seed always yields the same workload,
so a differential or property failure replays exactly from its printed
seed.

The generated dialect is the intersection the differential harness
needs: every statement is valid both for the repro engine and for
stdlib ``sqlite3``.  That rules out a few constructs on purpose:

* only INTEGER and VARCHAR columns (no CHAR pad semantics, no float
  rounding);
* no division (divide-by-zero taxonomies differ);
* no LIMIT without ORDER BY (result would be legitimately
  non-deterministic) — generated SELECTs carry no LIMIT at all, since
  results are compared as multisets.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

__all__ = ["WorkloadGenerator"]

_LABELS = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"]


class WorkloadGenerator:
    """Deterministic single-table SELECT/DML statement stream."""

    #: (name, type) schema shared by every generated workload.
    COLUMNS: Tuple[Tuple[str, str], ...] = (
        ("id", "INTEGER"),
        ("grp", "INTEGER"),
        ("amount", "INTEGER"),
        ("label", "VARCHAR(16)"),
    )

    def __init__(self, seed: int = 0, table: str = "workload") -> None:
        self.seed = seed
        self.table = table
        self.rng = random.Random(seed)
        self._next_id = 1

    # ------------------------------------------------------------------
    # schema / seed data
    # ------------------------------------------------------------------
    def ddl(self) -> str:
        cols = ", ".join(f"{name} {typ}" for name, typ in self.COLUMNS)
        return f"CREATE TABLE {self.table} ({cols})"

    def seed_statements(self, rows: int = 20) -> List[str]:
        return [self.insert() for _ in range(rows)]

    # ------------------------------------------------------------------
    # statement constructors (each is itself deterministic given the RNG)
    # ------------------------------------------------------------------
    def _label_literal(self) -> str:
        if self.rng.random() < 0.15:
            return "NULL"
        return f"'{self.rng.choice(_LABELS)}'"

    def insert(self) -> str:
        row_id = self._next_id
        self._next_id += 1
        grp = self.rng.randint(0, 4)
        amount = self.rng.randint(-50, 150)
        return (
            f"INSERT INTO {self.table} (id, grp, amount, label) "
            f"VALUES ({row_id}, {grp}, {amount}, {self._label_literal()})"
        )

    def _predicate(self) -> str:
        choice = self.rng.randrange(6)
        if choice == 0:
            return f"grp = {self.rng.randint(0, 4)}"
        if choice == 1:
            return f"amount > {self.rng.randint(-50, 150)}"
        if choice == 2:
            return f"amount < {self.rng.randint(-50, 150)}"
        if choice == 3:
            return f"label = '{self.rng.choice(_LABELS)}'"
        if choice == 4:
            return "label IS NULL"
        return f"id <= {self.rng.randint(1, max(1, self._next_id - 1))}"

    def _where(self) -> str:
        roll = self.rng.random()
        if roll < 0.25:
            return ""
        first = self._predicate()
        if roll < 0.70:
            return f" WHERE {first}"
        joiner = self.rng.choice(["AND", "OR"])
        return f" WHERE {first} {joiner} {self._predicate()}"

    def select(self) -> str:
        choice = self.rng.randrange(4)
        if choice == 0:
            projection = "*"
        elif choice == 1:
            names = [name for name, _ in self.COLUMNS]
            take = self.rng.randint(1, len(names))
            projection = ", ".join(self.rng.sample(names, take))
        elif choice == 2:
            projection = "COUNT(*)"
        else:
            projection = "SUM(amount)"
        return f"SELECT {projection} FROM {self.table}{self._where()}"

    def update(self) -> str:
        if self.rng.random() < 0.5:
            assignment = f"amount = amount + {self.rng.randint(1, 25)}"
        else:
            assignment = f"label = {self._label_literal()}"
        return f"UPDATE {self.table} SET {assignment}{self._where()}"

    def delete(self) -> str:
        # Always predicated: an unconditional DELETE empties the table
        # and makes the rest of the workload trivially agree on nothing.
        return f"DELETE FROM {self.table} WHERE {self._predicate()}"

    # ------------------------------------------------------------------
    # mixed stream
    # ------------------------------------------------------------------
    def statement(self) -> str:
        """One weighted-random statement (select-heavy, rare deletes)."""
        roll = self.rng.random()
        if roll < 0.45:
            return self.select()
        if roll < 0.70:
            return self.insert()
        if roll < 0.92:
            return self.update()
        return self.delete()

    def statements(self, count: int) -> List[str]:
        return [self.statement() for _ in range(count)]
