"""``python -m repro.server`` — run a PySQLJ network server.

Examples::

    # in-memory databases, ephemeral port (printed on startup)
    python -m repro.server --port 0

    # durable databases under /var/lib/mydata, 128 clients max
    python -m repro.server --host 0.0.0.0 --port 7878 \\
        --data-dir /var/lib/mydata --max-connections 128

The wire protocol is data-only (no code can reach the server through
frames), but it is cleartext: ``--auth-token`` gates the handshake and
nothing more.  Bind ``0.0.0.0`` only on trusted networks or behind a
TLS tunnel — see ``docs/SERVER.md``.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from repro.server.protocol import DEFAULT_PORT
from repro.server.server import ReproServer


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve PySQLJ databases over TCP (repro:// protocol).",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="listen address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT,
                        help=f"listen port, 0 for ephemeral "
                             f"(default {DEFAULT_PORT})")
    parser.add_argument("--data-dir", default=None,
                        help="directory for durable databases "
                             "(omit for in-memory)")
    parser.add_argument("--dialect", default="standard",
                        choices=["standard", "acme", "zenith"],
                        help="dialect for databases this server creates")
    parser.add_argument("--max-connections", type=int, default=64,
                        help="concurrent client cap (default 64)")
    parser.add_argument("--threads", type=int, default=8,
                        help="engine executor threads (default 8)")
    parser.add_argument("--page-size", type=int, default=256,
                        help="rows per result page (default 256)")
    parser.add_argument("--max-cursors", type=int, default=64,
                        help="open paged-result cursors per session "
                             "before LRU eviction (default 64)")
    parser.add_argument("--auth-token", default=None,
                        help="require this token from clients (gates the "
                             "handshake only; traffic stays cleartext)")
    parser.add_argument("--slow-query-ms", type=float, default=None,
                        help="log statements slower than this many "
                             "milliseconds as JSON lines on stderr "
                             "(overrides REPRO_SLOW_QUERY_MS)")
    parser.add_argument("--drain-timeout", type=float, default=10.0,
                        help="seconds to drain in-flight work on "
                             "shutdown (default 10)")
    return parser


async def _serve(server: ReproServer, drain_timeout: float) -> None:
    await server.start()
    print(f"repro server listening on {server.host}:{server.port}",
          flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop(drain_timeout)


def main(argv: Optional[Sequence[str]] = None) -> int:
    options = build_parser().parse_args(argv)
    server = ReproServer(
        options.host,
        options.port,
        data_dir=options.data_dir,
        dialect=options.dialect,
        max_connections=options.max_connections,
        executor_threads=options.threads,
        page_size=options.page_size,
        max_cursors=options.max_cursors,
        auth_token=options.auth_token,
        slow_query_ms=options.slow_query_ms,
    )
    try:
        asyncio.run(_serve(server, options.drain_timeout))
    except KeyboardInterrupt:
        print("repro server stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
