"""Tests for profiles, customizations, packaging and the customizer."""

import os

import pytest

from repro import errors
from repro import Database
from repro.profiles import (
    ConnectedProfile,
    DefaultCustomization,
    DialectCustomization,
    EntryInfo,
    Profile,
    build_pjar,
    customize_pjar,
    customize_profile,
    load_profile,
    read_pjar,
    save_profile,
)
from repro.profiles.customizer import customize_profile_file
from repro.profiles.model import TypeInfo
from repro.profiles.pjar import unpack_pjar, write_pjar_members
from repro.profiles.serialization import (
    profile_from_bytes,
    profile_to_bytes,
)


def make_profile(name="app_SJProfile0"):
    profile = Profile(name=name, context_type="DefaultContext")
    profile.data.add(
        EntryInfo(
            index=0,
            sql="SELECT name, sales FROM emps WHERE sales > ? "
                "ORDER BY sales DESC LIMIT 2",
            role="QUERY",
            param_types=[TypeInfo(name="threshold")],
        )
    )
    profile.data.add(
        EntryInfo(
            index=1,
            sql="UPDATE emps SET sales = sales + ? WHERE name = ?",
            role="UPDATE",
        )
    )
    profile.data.add(
        EntryInfo(
            index=2,
            sql="SELECT name || '!' FROM emps WHERE name = ?",
            role="QUERY",
        )
    )
    return profile


def load_emps(database):
    session = database.create_session(autocommit=True)
    session.execute(
        "create table emps (name varchar(50), id char(5), "
        "state char(20), sales decimal(6,2))"
    )
    session.execute(
        "insert into emps values ('Alice', 'E1', 'CA', 100.50), "
        "('Bob', 'E2', 'MN', 50.25), ('Dan', 'E4', 'FL', 200.00)"
    )
    return session


class TestModel:
    def test_entry_describe(self):
        profile = make_profile()
        assert profile.get_entry(0).describe().startswith("#0 [QUERY]")

    def test_entry_count(self):
        assert make_profile().entry_count() == 3

    def test_customization_replacement_by_key(self):
        profile = make_profile()
        database = Database()
        customize_profile(profile, "acme")
        customize_profile(profile, "acme")
        keys = [c.key for c in profile.customizations]
        assert keys == ["dialect:acme"]
        del database


class TestSerialization:
    def test_bytes_roundtrip(self):
        profile = make_profile()
        again = profile_from_bytes(profile_to_bytes(profile))
        assert again.name == profile.name
        assert again.entry_count() == 3
        assert again.get_entry(0).sql == profile.get_entry(0).sql

    def test_file_roundtrip(self, tmp_path):
        profile = make_profile()
        path = save_profile(profile, str(tmp_path))
        assert path.endswith("app_SJProfile0.ser")
        again = load_profile(path)
        assert again.entry_count() == 3

    def test_customizations_survive_serialization(self, tmp_path):
        profile = make_profile()
        customize_profile(profile, "acme")
        path = save_profile(profile, str(tmp_path))
        again = load_profile(path)
        assert len(again.customizations) == 1
        assert again.customizations[0].dialect_name == "acme"
        assert "TOP 2" in again.customizations[0].sql_texts[0]

    def test_bad_payload(self):
        with pytest.raises(errors.ProfileError):
            profile_from_bytes(b"not a profile")

    def test_wrong_object_type(self):
        import pickle

        with pytest.raises(errors.ProfileError):
            profile_from_bytes(pickle.dumps({"not": "a profile"}))

    def test_missing_file(self):
        with pytest.raises(errors.ProfileError):
            load_profile("/does/not/exist.ser")


class TestExecutionPaths:
    def test_default_customization_executes(self):
        database = Database()
        session = load_emps(database)
        profile = make_profile()
        connected = ConnectedProfile(profile, session)
        result = connected.execute(0, [60])
        assert [r[0] for r in result.rows] == ["Dan", "Alice"]
        assert isinstance(connected.customization(),
                          DefaultCustomization)

    def test_update_through_profile(self):
        database = Database()
        session = load_emps(database)
        connected = ConnectedProfile(make_profile(), session)
        count = connected.get_statement(1).execute_update([10, "Bob"])
        assert count == 1
        result = session.execute(
            "select sales from emps where name = 'Bob'"
        )
        assert str(result.rows[0][0]) == "60.25"

    def test_statements_are_cached_per_connection(self):
        database = Database()
        session = load_emps(database)
        connected = ConnectedProfile(make_profile(), session)
        assert connected.get_statement(0) is connected.get_statement(0)

    def test_dialect_customization_selected(self):
        database = Database(dialect="acme")
        session = load_emps(database)
        profile = make_profile()
        customize_profile(profile, "acme")
        connected = ConnectedProfile(profile, session)
        assert isinstance(connected.customization(),
                          DialectCustomization)
        result = connected.execute(0, [60])
        assert [r[0] for r in result.rows] == ["Dan", "Alice"]

    def test_uncustomized_profile_fails_on_foreign_dialect(self):
        # The portability story: default (dynamic) execution ships the
        # standard SQL text, which the acme parser rejects (LIMIT).
        database = Database(dialect="acme")
        session = load_emps(database)
        connected = ConnectedProfile(make_profile(), session)
        with pytest.raises(errors.SQLParseError):
            connected.execute(0, [60])

    def test_concat_entry_on_acme(self):
        database = Database(dialect="acme")
        session = load_emps(database)
        profile = make_profile()
        customize_profile(profile, "acme")
        connected = ConnectedProfile(profile, session)
        result = connected.execute(2, ["Bob"])
        assert result.rows == [["Bob!"]]

    def test_same_profile_on_all_dialects(self):
        profile = make_profile()
        for dialect in ("standard", "acme", "zenith"):
            customize_profile(profile, dialect)
        results = {}
        for dialect in ("standard", "acme", "zenith"):
            database = Database(name=f"db_{dialect}", dialect=dialect)
            session = load_emps(database)
            connected = ConnectedProfile(profile, session)
            results[dialect] = connected.execute(0, [60]).rows
        assert results["standard"] == results["acme"] == \
            results["zenith"]

    def test_execute_query_vs_update_guards(self):
        database = Database()
        session = load_emps(database)
        connected = ConnectedProfile(make_profile(), session)
        with pytest.raises(errors.DataError):
            connected.get_statement(0).execute_update([60])
        with pytest.raises(errors.DataError):
            connected.get_statement(1).execute_query([1, "Bob"])

    def test_unknown_dialect_customization(self):
        with pytest.raises(errors.CustomizationError):
            DialectCustomization("oracle", make_profile())


class TestPjar:
    def test_build_and_read(self, tmp_path):
        profile = make_profile()
        ser = save_profile(profile, str(tmp_path))
        module = tmp_path / "app.py"
        module.write_text("# generated module\n")
        pjar = build_pjar(str(tmp_path / "app.pjar"), [str(module), ser])
        members = read_pjar(pjar)
        assert set(members) == {"app.py", "app_SJProfile0.ser"}

    def test_unpack(self, tmp_path):
        profile = make_profile()
        ser = save_profile(profile, str(tmp_path))
        pjar = build_pjar(str(tmp_path / "app.pjar"), [ser])
        out = tmp_path / "deployed"
        extracted = unpack_pjar(pjar, str(out))
        assert os.path.exists(extracted["app_SJProfile0.ser"])
        assert load_profile(
            extracted["app_SJProfile0.ser"]
        ).entry_count() == 3

    def test_customize_pjar_adds_customizations(self, tmp_path):
        ser = save_profile(make_profile(), str(tmp_path))
        pjar = build_pjar(str(tmp_path / "app.pjar"), [ser])
        names = customize_pjar(pjar, ["acme", "zenith"])
        assert names == ["app_SJProfile0"]
        members = read_pjar(pjar)
        profile = profile_from_bytes(members["app_SJProfile0.ser"])
        keys = {c.key for c in profile.customizations}
        assert keys == {"dialect:acme", "dialect:zenith"}

    def test_repeated_customization_idempotent(self, tmp_path):
        # Slides show Customizer1 then Customizer2 running on the same jar.
        ser = save_profile(make_profile(), str(tmp_path))
        pjar = build_pjar(str(tmp_path / "app.pjar"), [ser])
        customize_pjar(pjar, ["acme"])
        customize_pjar(pjar, ["acme", "zenith"])
        profile = profile_from_bytes(
            read_pjar(pjar)["app_SJProfile0.ser"]
        )
        assert len(profile.customizations) == 2

    def test_customize_profile_file(self, tmp_path):
        path = save_profile(make_profile(), str(tmp_path))
        customize_profile_file(path, "zenith")
        profile = load_profile(path)
        assert profile.customizations[0].dialect_name == "zenith"
        assert "FETCH FIRST 2 ROWS ONLY" in \
            profile.customizations[0].sql_texts[0]

    def test_customize_pjar_without_profiles(self, tmp_path):
        module = tmp_path / "plain.py"
        module.write_text("x = 1\n")
        pjar = build_pjar(str(tmp_path / "p.pjar"), [str(module)])
        with pytest.raises(errors.CustomizationError):
            customize_pjar(pjar, ["acme"])

    def test_empty_pjar_rejected(self, tmp_path):
        with pytest.raises(errors.ProfileError):
            build_pjar(str(tmp_path / "e.pjar"), [])

    def test_missing_member_rejected(self, tmp_path):
        with pytest.raises(errors.ProfileError):
            build_pjar(str(tmp_path / "m.pjar"), ["/no/such/file.py"])

    def test_write_members_roundtrip(self, tmp_path):
        ser = save_profile(make_profile(), str(tmp_path))
        pjar = build_pjar(str(tmp_path / "w.pjar"), [ser])
        members = read_pjar(pjar)
        members["extra.txt"] = b"hello"
        write_pjar_members(pjar, members)
        assert read_pjar(pjar)["extra.txt"] == b"hello"
