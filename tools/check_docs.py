#!/usr/bin/env python
"""Execute every fenced ``python`` block in README.md and docs/*.md.

Documentation drifts when examples are prose; this tool keeps them
executable.  It walks the repo's markdown files, extracts every fenced
code block tagged ``python``, and runs them top-to-bottom — blocks in
one file share a namespace, so later examples can build on earlier
ones, exactly as a reader would type them into one interpreter.

Escape hatches, both HTML comments (invisible in rendered markdown):

* ``<!-- check-docs: skip -->`` on the line(s) right before a fence
  marks the next block illustrative (pseudo-code, fragments of a
  larger program, output samples) and skips it;
* a ``<!-- check-docs: setup`` ... ``-->`` comment block contains
  hidden Python that runs at its position in the file — staging
  (creating a table an example queries, defining a constant the prose
  introduced) without cluttering the rendered page.

Blocks written as REPL transcripts (lines starting with ``>>>``) have
their statements executed; the printed outputs in the transcript are
treated as illustrative and are not diffed (counters and timings vary
run to run).

Every file runs in its own scratch working directory, and global
engine state (registries, pools, faultpoints, default SQLJ context) is
reset between files, so docs cannot depend on each other by accident.

Usage::

    PYTHONPATH=src python tools/check_docs.py            # whole repo
    PYTHONPATH=src python tools/check_docs.py docs/X.md  # one file

Exit status 0 when every block runs clean; 1 otherwise, with a
per-block report naming the file and fence line of each failure.
"""

from __future__ import annotations

import glob
import os
import sys
import tempfile
import traceback
from dataclasses import dataclass
from typing import List

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

SKIP_MARKER = "<!-- check-docs: skip -->"
SETUP_OPEN = "<!-- check-docs: setup"
SETUP_CLOSE = "-->"


@dataclass
class Block:
    path: str
    line: int  # 1-based line of the opening fence / setup marker
    source: str
    hidden: bool = False  # True for check-docs: setup blocks

    @property
    def label(self) -> str:
        kind = "setup" if self.hidden else "block"
        return f"{self.path}:{self.line} ({kind})"


def extract_blocks(path: str) -> List[Block]:
    """Parse one markdown file into runnable blocks, in file order."""
    lines = open(path, encoding="utf-8").read().splitlines()
    blocks: List[Block] = []
    i = 0
    skip_next = False
    while i < len(lines):
        line = lines[i]
        if line.strip() == SKIP_MARKER:
            skip_next = True
        elif line.strip() == SETUP_OPEN:
            start = i + 1
            body = []
            i += 1
            while i < len(lines) and lines[i].strip() != SETUP_CLOSE:
                body.append(lines[i])
                i += 1
            blocks.append(
                Block(path, start, "\n".join(body), hidden=True)
            )
        elif line.startswith("```"):
            lang = line[3:].strip().lower()
            fence_line = i + 1
            body = []
            i += 1
            while i < len(lines) and not lines[i].startswith("```"):
                body.append(lines[i])
                i += 1
            if lang == "python":
                if skip_next:
                    skip_next = False
                else:
                    blocks.append(
                        Block(path, fence_line, "\n".join(body))
                    )
        elif line.strip():
            # any other non-blank line cancels a pending skip marker
            skip_next = False
        i += 1
    return blocks


def repl_to_source(source: str) -> str:
    """Strip a ``>>>`` transcript down to its statements."""
    out = []
    for line in source.splitlines():
        stripped = line.lstrip()
        if stripped.startswith(">>> "):
            out.append(stripped[4:])
        elif stripped == ">>>":
            out.append("")
        elif stripped.startswith("... "):
            out.append(stripped[4:])
        elif stripped == "...":
            out.append("")
        # anything else is expected output: illustrative, not diffed
    return "\n".join(out)


def is_repl(source: str) -> bool:
    for line in source.splitlines():
        if line.strip():
            return line.lstrip().startswith(">>>")
    return False


def reset_global_state() -> None:
    """Undo anything a doc example left behind."""
    import repro
    from repro import faultpoints
    from repro.observability import tracing
    from repro.runtime.context import ConnectionContext

    faultpoints.uninstall()
    repro.DriverManager.shutdown_pools()
    repro.registry.clear()
    ConnectionContext.set_default_context(None)
    tracing.disable_tracing()


def run_file(path: str) -> List[str]:
    """Execute one file's blocks; return a list of failure reports."""
    rel = os.path.relpath(path, REPO)
    blocks = extract_blocks(path)
    if not blocks:
        return []
    failures: List[str] = []
    namespace: dict = {"__name__": f"docs_{os.path.basename(path)}"}
    cwd = os.getcwd()
    with tempfile.TemporaryDirectory(prefix="check_docs_") as scratch:
        os.chdir(scratch)
        try:
            for block in blocks:
                source = block.source
                if is_repl(source):
                    source = repl_to_source(source)
                try:
                    code = compile(source, block.label, "exec")
                    exec(code, namespace)
                except Exception:
                    failures.append(
                        f"{block.label}\n"
                        + traceback.format_exc(limit=8)
                    )
                    # a broken block poisons its file's namespace;
                    # stop here rather than cascade
                    break
        finally:
            os.chdir(cwd)
            reset_global_state()
    status = "FAIL" if failures else "ok"
    print(f"{rel}: {len(blocks)} block(s) ... {status}", flush=True)
    return failures


def main(argv: List[str]) -> int:
    if argv:
        paths = [os.path.abspath(p) for p in argv]
    else:
        paths = [os.path.join(REPO, "README.md")] + sorted(
            glob.glob(os.path.join(REPO, "docs", "*.md"))
        )
    failures: List[str] = []
    for path in paths:
        failures.extend(run_file(path))
    if failures:
        print(f"\n{len(failures)} failing doc block(s):\n")
        for report in failures:
            print(report)
        return 1
    print("all documentation examples executed cleanly")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
