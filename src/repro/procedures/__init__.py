"""SQLJ Part 1: host-language methods as SQL stored procedures.

The paper's jar files become "par" files (Python archives): zip files of
Python module sources plus an optional deployment descriptor.  This
package provides:

* :mod:`repro.procedures.archives` — building and reading par files,
* :mod:`repro.procedures.loader` — executing archive modules with
  cross-archive imports resolved through the SQL path,
* :mod:`repro.procedures.paths` — ``sqlj.alter_module_path`` semantics,
* :mod:`repro.procedures.reflection` — signature discovery/validation,
* :mod:`repro.procedures.registration` — ``CREATE PROCEDURE/FUNCTION ...
  EXTERNAL NAME``,
* :mod:`repro.procedures.invocation` — CALL and function invocation with
  OUT-parameter containers, dynamic result sets and SQLSTATE mapping,
* :mod:`repro.procedures.system` — the ``sqlj.*`` system procedures,
* :mod:`repro.procedures.descriptors` — deployment descriptors.
"""

from repro.procedures.archives import build_par, build_par_bytes, read_par
from repro.procedures.descriptors import DeploymentDescriptor
from repro.procedures.invocation import default_connection_session

__all__ = [
    "build_par",
    "build_par_bytes",
    "read_par",
    "DeploymentDescriptor",
    "default_connection_session",
]
