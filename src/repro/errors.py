"""Exception hierarchy shared by every layer of PySQLJ.

The paper (Part 1, "Error Handling") specifies that exceptions which escape
an external routine surface to SQL callers as SQLSTATE error codes, and the
JDBC API that SQLJ builds on reports all database errors as
``SQLException``.  This module is the Python equivalent: a single rooted
hierarchy carrying a five-character SQLSTATE, an optional vendor code, and
exception chaining, so that errors propagate uniformly from the storage
layer to the embedded-SQL runtime.

SQLSTATE class values follow ISO/ANSI SQL:

========  =====================================================
class     meaning
========  =====================================================
``02``    no data
``08``    connection exception
``0A``    feature not supported
``21``    cardinality violation
``22``    data exception (truncation, overflow, bad cast, ...)
``23``    integrity constraint violation
``24``    invalid cursor state
``25``    invalid transaction state
``26``    invalid SQL statement name
``28``    invalid authorization specification
``2F``    SQL routine exception
``38``    external routine exception
``39``    external routine invocation exception
``42``    syntax error or access rule violation
``44``    with check option violation
``46``    SQLJ-specific (install_jar / path errors, per SQLJ Part 1)
========  =====================================================
"""

from __future__ import annotations

from typing import Iterator, Optional

__all__ = [
    "ReproError",
    "SQLException",
    "SQLWarning",
    "SQLSyntaxError",
    "SQLParseError",
    "CatalogError",
    "DuplicateObjectError",
    "UndefinedObjectError",
    "UndefinedTableError",
    "UndefinedColumnError",
    "UndefinedTypeError",
    "UndefinedRoutineError",
    "UndefinedParError",
    "DataError",
    "StringTruncationError",
    "NumericOverflowError",
    "InvalidCastError",
    "DivisionByZeroError",
    "NullValueError",
    "IntegrityError",
    "NotNullViolationError",
    "UniqueViolationError",
    "CardinalityError",
    "PrivilegeError",
    "AuthorizationError",
    "ConnectionError_",
    "ConnectionClosedError",
    "ConnectionLostError",
    "PoolTimeoutError",
    "ProtocolError",
    "QueryCanceledError",
    "InvalidCursorStateError",
    "TransactionError",
    "SerializationFailureError",
    "FeatureNotSupportedError",
    "OperatorExecutionError",
    "ExternalRoutineError",
    "ExternalRoutineInvocationError",
    "RoutineResolutionError",
    "ParInstallationError",
    "PathResolutionError",
    "TranslationError",
    "CheckerError",
    "ProfileError",
    "CustomizationError",
    "NoDataWarning",
]


class ReproError(Exception):
    """Root of every PySQLJ error, across all layers.

    Everything the package raises on purpose — engine errors, dbapi and
    pool failures, procedure/SQLJ errors, operator wrappers, durability
    faults — derives from this class and carries a five-character ISO
    ``sqlstate``, so one ``except repro.ReproError`` catches the whole
    public surface.  (:class:`SQLException` remains the JDBC-flavoured
    alias the paper-facing layers use; it *is* a ``ReproError``.)

    Parameters
    ----------
    message:
        Human-readable description.  For exceptions raised out of external
        routines the paper specifies this is the string given in the
        routine's ``throw``; :mod:`repro.procedures` relies on that.
    sqlstate:
        Five-character ISO SQLSTATE.  Subclasses supply a default.
    vendor_code:
        Implementation-specific numeric code (0 when unused).
    """

    default_sqlstate = "HY000"  # general error

    def __init__(
        self,
        message: str = "",
        sqlstate: Optional[str] = None,
        vendor_code: int = 0,
    ) -> None:
        super().__init__(message)
        self.message = message
        self.sqlstate = sqlstate or self.default_sqlstate
        self.vendor_code = vendor_code
        self._next: Optional["SQLException"] = None

    # -- JDBC-style exception chaining -----------------------------------
    def get_next_exception(self) -> Optional["SQLException"]:
        """Return the next chained exception, if any."""
        return self._next

    def set_next_exception(self, exc: "SQLException") -> None:
        """Append ``exc`` to the end of this exception's chain."""
        tail = self
        while tail._next is not None:
            tail = tail._next
        tail._next = exc

    def chain(self) -> Iterator["SQLException"]:
        """Iterate over this exception and everything chained behind it."""
        node: Optional[SQLException] = self
        while node is not None:
            yield node
            node = node._next

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[SQLSTATE {self.sqlstate}] {self.message}"


class SQLException(ReproError):
    """JDBC-flavoured alias for :class:`ReproError`.

    Mirrors ``java.sql.SQLException``; kept as the name the engine,
    dbapi and SQLJ layers raise so paper-facing code reads like the
    tutorial.  New code should catch :class:`ReproError`.
    """


class SQLWarning(SQLException):
    """Non-fatal condition reported on a connection or statement."""

    default_sqlstate = "01000"


class NoDataWarning(SQLWarning):
    """SQLSTATE class 02: a fetch or select returned no rows."""

    default_sqlstate = "02000"


# ---------------------------------------------------------------------------
# Syntax and catalog errors (class 42)
# ---------------------------------------------------------------------------


class SQLSyntaxError(SQLException):
    """Malformed SQL text."""

    default_sqlstate = "42000"


class SQLParseError(SQLSyntaxError):
    """Syntax error with source position information."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class CatalogError(SQLException):
    """Access-rule or name-resolution failure against the catalog."""

    default_sqlstate = "42000"


class DuplicateObjectError(CatalogError):
    """An object with the given name already exists."""

    default_sqlstate = "42710"


class UndefinedObjectError(CatalogError):
    """Referenced object does not exist."""

    default_sqlstate = "42704"


class UndefinedTableError(UndefinedObjectError):
    default_sqlstate = "42P01"


class UndefinedColumnError(UndefinedObjectError):
    default_sqlstate = "42703"


class UndefinedTypeError(UndefinedObjectError):
    default_sqlstate = "42704"


class UndefinedRoutineError(UndefinedObjectError):
    default_sqlstate = "42883"


class UndefinedParError(UndefinedObjectError):
    """Referenced archive (the paper's jar) is not installed."""

    default_sqlstate = "46110"


# ---------------------------------------------------------------------------
# Data exceptions (class 22)
# ---------------------------------------------------------------------------


class DataError(SQLException):
    default_sqlstate = "22000"


class StringTruncationError(DataError):
    """String value too long for CHAR/VARCHAR target."""

    default_sqlstate = "22001"


class NumericOverflowError(DataError):
    """Numeric value out of range for the target type."""

    default_sqlstate = "22003"


class InvalidCastError(DataError):
    """Value cannot be converted to the requested type."""

    default_sqlstate = "22018"


class DivisionByZeroError(DataError):
    default_sqlstate = "22012"


class NullValueError(DataError):
    """NULL encountered where a value is required (e.g. NULL into int)."""

    default_sqlstate = "22004"


# ---------------------------------------------------------------------------
# Constraints, cursors, transactions
# ---------------------------------------------------------------------------


class IntegrityError(SQLException):
    default_sqlstate = "23000"


class NotNullViolationError(IntegrityError):
    default_sqlstate = "23502"


class UniqueViolationError(IntegrityError):
    default_sqlstate = "23505"


class CardinalityError(SQLException):
    """Scalar subquery or single-row select produced more than one row."""

    default_sqlstate = "21000"


class InvalidCursorStateError(SQLException):
    """Fetch before first row, after close, etc."""

    default_sqlstate = "24000"


class TransactionError(SQLException):
    default_sqlstate = "25000"


class SerializationFailureError(TransactionError):
    """The transaction lost a write-write conflict under snapshot
    isolation (class 40, transaction rollback).

    Raised when this transaction tried to update or delete a row
    version that a concurrent transaction — invisible to this
    transaction's snapshot — already deleted or replaced and committed
    (first-updater-wins), or when a row-claim wait timed out (suspected
    deadlock).  The transaction's effects are rolled back by the time
    the error reaches the caller.

    This error is *retryable by design*: re-run the whole transaction
    on a fresh snapshot and it will usually succeed.  See
    ``docs/TRANSACTIONS.md`` for retry-loop recipes
    (:func:`repro.testing.retry_serialization` packages one for
    tests).
    """

    default_sqlstate = "40001"


# ---------------------------------------------------------------------------
# Authorization (classes 28 and 42501)
# ---------------------------------------------------------------------------


class AuthorizationError(SQLException):
    """Unknown or invalid authorization identifier."""

    default_sqlstate = "28000"


class PrivilegeError(CatalogError):
    """Current user lacks a required privilege."""

    default_sqlstate = "42501"


# ---------------------------------------------------------------------------
# Connection-level errors (class 08)
# ---------------------------------------------------------------------------


class ConnectionError_(SQLException):
    """Connection exception.  Trailing underscore avoids shadowing the
    Python builtin ``ConnectionError``."""

    default_sqlstate = "08000"


class ConnectionClosedError(ConnectionError_):
    default_sqlstate = "08003"


class ConnectionLostError(ConnectionError_):
    """The network peer went away mid-conversation: the TCP connection
    to a ``repro://`` server was reset, the server closed the socket
    while a response was outstanding, or a read/write failed after the
    handshake succeeded."""

    default_sqlstate = "08006"


class ProtocolError(ConnectionError_):
    """The ``repro://`` wire protocol was violated: bad magic, an
    unsupported protocol version, a torn or oversized frame, or a
    response frame of an unexpected type."""

    default_sqlstate = "08P01"


class PoolTimeoutError(ConnectionError_):
    """Connection pool exhausted: no connection became free within the
    checkout timeout.  Uses SQLSTATE 08004 ("server rejected the
    connection"), the class-08 code for a refused connection attempt."""

    default_sqlstate = "08004"


class QueryCanceledError(SQLException):
    """The statement was cancelled at the user's request (class 57,
    operator intervention) — e.g. a ``repro://`` client sent a CANCEL
    frame while the statement was queued or executing."""

    default_sqlstate = "57014"


class FeatureNotSupportedError(SQLException):
    default_sqlstate = "0A000"


class OperatorExecutionError(SQLException):
    """A raw Python exception escaped a query-plan operator.

    The executor wraps such failures so they surface with pipeline
    context (the originating operator's name) and a SQLSTATE instead of
    an opaque traceback.  Uses the conventional internal-error class
    ``XX`` rather than a standard SQL class, since the cause is by
    definition outside the SQL error taxonomy.
    """

    default_sqlstate = "XX000"


# ---------------------------------------------------------------------------
# External routines (SQLJ Part 1, classes 38/39/46)
# ---------------------------------------------------------------------------


class ExternalRoutineError(SQLException):
    """An exception escaped the body of an external routine.

    Per the paper: "Exceptions that are uncaught when you return from a
    Java method become SQLSTATE error codes.  The message text of the
    SQLSTATE is the string specified in the Java throw."
    """

    default_sqlstate = "38000"

    @classmethod
    def from_python(cls, exc: BaseException) -> "ExternalRoutineError":
        """Wrap an arbitrary Python exception escaping a routine body."""
        if isinstance(exc, SQLException):
            wrapped = cls(exc.message, sqlstate=exc.sqlstate)
        else:
            wrapped = cls(str(exc) or type(exc).__name__)
        wrapped.__cause__ = exc
        return wrapped


class ExternalRoutineInvocationError(SQLException):
    """The routine could not be invoked at all (bad signature, missing
    container for an OUT parameter, unloadable module, ...)."""

    default_sqlstate = "39000"


class RoutineResolutionError(CatalogError):
    """EXTERNAL NAME did not resolve to a callable."""

    default_sqlstate = "46002"


class ParInstallationError(SQLException):
    """install_par / remove_par / replace_par failure."""

    default_sqlstate = "46100"


class PathResolutionError(SQLException):
    """Cross-archive name resolution via the SQL path failed."""

    default_sqlstate = "46120"


# ---------------------------------------------------------------------------
# Translator / profile errors (SQLJ Part 0)
# ---------------------------------------------------------------------------


class TranslationError(SQLException):
    """Error detected by the SQLJ translator at translate time."""

    default_sqlstate = "42000"

    def __init__(self, message: str, line: int = 0) -> None:
        if line:
            message = f"{message} (source line {line})"
        super().__init__(message)
        self.line = line


class CheckerError(TranslationError):
    """Error reported by an installed SQLChecker during semantic analysis."""


class ProfileError(SQLException):
    """Profile is malformed, missing, or of an unsupported version."""

    default_sqlstate = "46130"


class CustomizationError(ProfileError):
    """A customizer could not process a profile entry."""

    default_sqlstate = "46131"
