"""SQLJ module paths (the paper's ``sqlj.alter_java_path``).

When a module loaded from one archive imports a name not found in that
archive, the engine consults the archive's *path*: an ordered list of
``(pattern, par_name)`` pairs.  The first pattern matching the imported
module name designates the archive to resolve it from — mirroring the
paper's class-loader behaviour ("the class loader supplied by the SQL
system ... will use the SQL path to resolve the name").

Path specifications use the paper's syntax::

    (property.*, property_par) (project.*, project_par) (*, admin_par)

``*`` matches any (dotted) name; ``pkg.*`` and the paper's ``pkg/*``
spelling both match names in package ``pkg``.
"""

from __future__ import annotations

import fnmatch
import re
from typing import List, Optional, Tuple

from repro import errors
from repro.engine.catalog import Catalog, InstalledPar

__all__ = ["parse_path_spec", "pattern_matches", "resolve_module_source"]

_ENTRY_RE = re.compile(r"\(\s*([^,()]+?)\s*,\s*([^,()]+?)\s*\)")


def parse_path_spec(spec: str) -> List[Tuple[str, str]]:
    """Parse a path specification into (pattern, par_name) pairs."""
    entries = _ENTRY_RE.findall(spec)
    remainder = _ENTRY_RE.sub("", spec).strip()
    if remainder or not entries:
        raise errors.PathResolutionError(
            f"malformed path specification {spec!r}"
        )
    normalised = []
    for pattern, par_name in entries:
        normalised.append(
            (pattern.strip().replace("/", "."), par_name.strip().lower())
        )
    return normalised


def pattern_matches(pattern: str, module_name: str) -> bool:
    """True if a path pattern covers ``module_name``.

    ``*`` is fully wild (crosses dots) so the paper's ``(*, admin_jar)``
    catch-all entry behaves as written.
    """
    if pattern == "*":
        return True
    return fnmatch.fnmatchcase(module_name, pattern)


def resolve_module_source(
    catalog: Catalog, par: InstalledPar, module_name: str
) -> Optional[Tuple[InstalledPar, str]]:
    """Find ``module_name`` starting from ``par``.

    Looks in the archive itself first, then walks its path entries.
    Returns ``(defining_par, source)`` or None.
    """
    source = par.modules.get(module_name)
    if source is not None:
        return par, source
    for pattern, target_name in par.path:
        if not pattern_matches(pattern, module_name):
            continue
        target = catalog.pars.get(target_name)
        if target is None:
            raise errors.PathResolutionError(
                f"path of archive {par.name!r} references archive "
                f"{target_name!r}, which is not installed"
            )
        source = target.modules.get(module_name)
        if source is not None:
            return target, source
    return None
