"""SQL type descriptors.

A :class:`TypeDescriptor` describes one SQL data type as it appears in a
column definition, a routine signature, or a describe result.  Descriptors
know how to validate/coerce Python values into their domain
(:meth:`TypeDescriptor.coerce`), whether another type can be assigned to
them (:meth:`TypeDescriptor.assignable_from`), and which Python classes
their values map to — the JDBC "getObject" mapping the paper relies on.

``ObjectType`` is the Part 2 extension point: a column typed by a
user-defined type whose values are host-language (Python) objects stored
by value.
"""

from __future__ import annotations

import datetime
import decimal
import re
from typing import Any, Optional, Tuple

from repro import errors
from repro.sqltypes import typecodes

__all__ = [
    "TypeDescriptor",
    "CharType",
    "VarCharType",
    "ClobType",
    "BlobType",
    "SmallIntType",
    "IntegerType",
    "BigIntType",
    "DecimalType",
    "RealType",
    "DoubleType",
    "BooleanType",
    "DateType",
    "TimeType",
    "TimestampType",
    "ObjectType",
    "parse_type",
    "type_from_python_value",
]


class TypeDescriptor:
    """Base class for SQL type descriptors.

    Descriptors are immutable value objects: equality is structural and
    they may be used as dict keys (e.g. by the translator's type cache).
    """

    #: JDBC-style type code (see :mod:`repro.sqltypes.typecodes`).
    type_code: int = typecodes.OTHER
    #: SQL spelling without parameters, e.g. ``"VARCHAR"``.
    type_name: str = "OTHER"
    #: Python classes whose instances are in this type's domain.
    python_types: Tuple[type, ...] = (object,)

    def coerce(self, value: Any) -> Any:
        """Validate ``value`` and convert it to this type's canonical
        Python representation.  ``None`` (SQL NULL) always passes through.

        Raises :class:`repro.errors.DataError` subclasses on failure.
        """
        if value is None:
            return None
        return self._coerce_non_null(value)

    def _coerce_non_null(self, value: Any) -> Any:
        raise NotImplementedError

    def assignable_from(self, other: "TypeDescriptor") -> bool:
        """True if a value of type ``other`` may be stored into this type
        (possibly with a runtime conversion)."""
        return type(other) is type(self) or (
            typecodes.is_numeric(self.type_code)
            and typecodes.is_numeric(other.type_code)
        ) or (
            typecodes.is_character(self.type_code)
            and typecodes.is_character(other.type_code)
        )

    def comparable_with(self, other: "TypeDescriptor") -> bool:
        """True if values of the two types may be compared with ``=``/``<``."""
        return self.assignable_from(other) or other.assignable_from(self)

    def contains(self, value: Any) -> bool:
        """True if ``value`` is already a legal member of this type."""
        if value is None:
            return True
        try:
            self.coerce(value)
        except errors.SQLException:
            return False
        return True

    # -- structural identity ---------------------------------------------
    def _key(self) -> tuple:
        return (type(self).__name__,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TypeDescriptor) and self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.sql_spelling()}>"

    def sql_spelling(self) -> str:
        """Canonical SQL spelling, e.g. ``DECIMAL(6,2)``."""
        return self.type_name


# ---------------------------------------------------------------------------
# Character strings
# ---------------------------------------------------------------------------


class _StringType(TypeDescriptor):
    python_types = (str,)

    def __init__(self, length: Optional[int] = None) -> None:
        if length is not None and length <= 0:
            raise errors.SQLSyntaxError(
                f"length of {self.type_name} must be positive, got {length}"
            )
        self.length = length

    def _key(self) -> tuple:
        return (type(self).__name__, self.length)

    def _check_length(self, text: str) -> str:
        if self.length is not None and len(text) > self.length:
            # SQL permits silently truncating trailing spaces only.
            trimmed = text[: self.length] + text[self.length:].rstrip(" ")
            if len(trimmed) > self.length:
                raise errors.StringTruncationError(
                    f"value of length {len(text)} too long for "
                    f"{self.sql_spelling()}"
                )
            text = text[: self.length]
        return text

    def sql_spelling(self) -> str:
        if self.length is None:
            return self.type_name
        return f"{self.type_name}({self.length})"


class CharType(_StringType):
    """Fixed-length, blank-padded character string."""

    type_code = typecodes.CHAR
    type_name = "CHAR"

    def __init__(self, length: int = 1) -> None:
        super().__init__(length)

    def _coerce_non_null(self, value: Any) -> str:
        if isinstance(value, bool) or not isinstance(value, str):
            raise errors.InvalidCastError(
                f"cannot store {type(value).__name__} in {self.sql_spelling()}"
            )
        text = self._check_length(value)
        assert self.length is not None
        return text.ljust(self.length)


class VarCharType(_StringType):
    """Variable-length character string with an optional maximum."""

    type_code = typecodes.VARCHAR
    type_name = "VARCHAR"

    def _coerce_non_null(self, value: Any) -> str:
        if isinstance(value, bool) or not isinstance(value, str):
            raise errors.InvalidCastError(
                f"cannot store {type(value).__name__} in {self.sql_spelling()}"
            )
        return self._check_length(value)


class ClobType(_StringType):
    """Character large object (unbounded string)."""

    type_code = typecodes.CLOB
    type_name = "CLOB"

    def __init__(self) -> None:
        super().__init__(None)

    def _coerce_non_null(self, value: Any) -> str:
        if not isinstance(value, str):
            raise errors.InvalidCastError(
                f"cannot store {type(value).__name__} in CLOB"
            )
        return value


class BlobType(TypeDescriptor):
    """Binary large object — one of the SQL3 types JDBC 2.0 added."""

    type_code = typecodes.BLOB
    type_name = "BLOB"
    python_types = (bytes, bytearray)

    def _coerce_non_null(self, value: Any) -> bytes:
        if isinstance(value, (bytes, bytearray, memoryview)):
            return bytes(value)
        raise errors.InvalidCastError(
            f"cannot store {type(value).__name__} in BLOB"
        )


# ---------------------------------------------------------------------------
# Exact and approximate numerics
# ---------------------------------------------------------------------------


class _IntType(TypeDescriptor):
    python_types = (int,)
    _min: int = 0
    _max: int = 0

    def _coerce_non_null(self, value: Any) -> int:
        if isinstance(value, bool):
            raise errors.InvalidCastError(
                f"cannot store BOOLEAN in {self.type_name}"
            )
        if isinstance(value, int):
            result = value
        elif isinstance(value, float):
            if value != int(value):
                raise errors.InvalidCastError(
                    f"cannot store non-integral {value!r} in {self.type_name}"
                )
            result = int(value)
        elif isinstance(value, decimal.Decimal):
            if value != value.to_integral_value():
                raise errors.InvalidCastError(
                    f"cannot store non-integral {value!r} in {self.type_name}"
                )
            result = int(value)
        elif isinstance(value, str):
            try:
                result = int(value.strip())
            except ValueError:
                raise errors.InvalidCastError(
                    f"cannot cast {value!r} to {self.type_name}"
                ) from None
        else:
            raise errors.InvalidCastError(
                f"cannot store {type(value).__name__} in {self.type_name}"
            )
        if not (self._min <= result <= self._max):
            raise errors.NumericOverflowError(
                f"value {result} out of range for {self.type_name}"
            )
        return result


class SmallIntType(_IntType):
    type_code = typecodes.SMALLINT
    type_name = "SMALLINT"
    _min, _max = -(2 ** 15), 2 ** 15 - 1


class IntegerType(_IntType):
    type_code = typecodes.INTEGER
    type_name = "INTEGER"
    _min, _max = -(2 ** 31), 2 ** 31 - 1


class BigIntType(_IntType):
    type_code = typecodes.BIGINT
    type_name = "BIGINT"
    _min, _max = -(2 ** 63), 2 ** 63 - 1


class DecimalType(TypeDescriptor):
    """Exact numeric with fixed precision and scale, e.g. the paper's
    ``sales decimal(6,2)`` column."""

    type_code = typecodes.DECIMAL
    type_name = "DECIMAL"
    python_types = (decimal.Decimal,)

    def __init__(self, precision: int = 18, scale: int = 0) -> None:
        if precision <= 0:
            raise errors.SQLSyntaxError(
                f"DECIMAL precision must be positive, got {precision}"
            )
        if scale < 0 or scale > precision:
            raise errors.SQLSyntaxError(
                f"DECIMAL scale {scale} invalid for precision {precision}"
            )
        self.precision = precision
        self.scale = scale

    def _key(self) -> tuple:
        return ("DecimalType", self.precision, self.scale)

    def _coerce_non_null(self, value: Any) -> decimal.Decimal:
        if isinstance(value, bool):
            raise errors.InvalidCastError("cannot store BOOLEAN in DECIMAL")
        try:
            if isinstance(value, float):
                result = decimal.Decimal(str(value))
            elif isinstance(value, (int, decimal.Decimal)):
                result = decimal.Decimal(value)
            elif isinstance(value, str):
                result = decimal.Decimal(value.strip())
            else:
                raise errors.InvalidCastError(
                    f"cannot store {type(value).__name__} in "
                    f"{self.sql_spelling()}"
                )
        except decimal.InvalidOperation:
            raise errors.InvalidCastError(
                f"cannot cast {value!r} to {self.sql_spelling()}"
            ) from None
        quantum = decimal.Decimal(1).scaleb(-self.scale)
        try:
            result = result.quantize(quantum, rounding=decimal.ROUND_HALF_UP)
        except decimal.InvalidOperation:
            raise errors.NumericOverflowError(
                f"value {value!r} does not fit {self.sql_spelling()}"
            ) from None
        digits = result.as_tuple()
        if len(digits.digits) - max(0, -int(digits.exponent) - self.scale) \
                > self.precision:
            raise errors.NumericOverflowError(
                f"value {value!r} exceeds precision of {self.sql_spelling()}"
            )
        if abs(result) >= decimal.Decimal(10) ** (self.precision - self.scale):
            raise errors.NumericOverflowError(
                f"value {value!r} exceeds precision of {self.sql_spelling()}"
            )
        return result

    def sql_spelling(self) -> str:
        return f"DECIMAL({self.precision},{self.scale})"


class _FloatBase(TypeDescriptor):
    python_types = (float,)

    def _coerce_non_null(self, value: Any) -> float:
        if isinstance(value, bool):
            raise errors.InvalidCastError(
                f"cannot store BOOLEAN in {self.type_name}"
            )
        if isinstance(value, (int, float, decimal.Decimal)):
            return float(value)
        if isinstance(value, str):
            try:
                return float(value.strip())
            except ValueError:
                raise errors.InvalidCastError(
                    f"cannot cast {value!r} to {self.type_name}"
                ) from None
        raise errors.InvalidCastError(
            f"cannot store {type(value).__name__} in {self.type_name}"
        )


class RealType(_FloatBase):
    type_code = typecodes.REAL
    type_name = "REAL"


class DoubleType(_FloatBase):
    type_code = typecodes.DOUBLE
    type_name = "DOUBLE PRECISION"


class BooleanType(TypeDescriptor):
    type_code = typecodes.BOOLEAN
    type_name = "BOOLEAN"
    python_types = (bool,)

    def _coerce_non_null(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "t", "1"):
                return True
            if lowered in ("false", "f", "0"):
                return False
        raise errors.InvalidCastError(
            f"cannot cast {value!r} to BOOLEAN"
        )


# ---------------------------------------------------------------------------
# Datetimes
# ---------------------------------------------------------------------------


class DateType(TypeDescriptor):
    type_code = typecodes.DATE
    type_name = "DATE"
    python_types = (datetime.date,)

    def _coerce_non_null(self, value: Any) -> datetime.date:
        if isinstance(value, datetime.datetime):
            return value.date()
        if isinstance(value, datetime.date):
            return value
        if isinstance(value, str):
            try:
                return datetime.date.fromisoformat(value.strip())
            except ValueError:
                raise errors.InvalidCastError(
                    f"cannot cast {value!r} to DATE"
                ) from None
        raise errors.InvalidCastError(
            f"cannot store {type(value).__name__} in DATE"
        )


class TimeType(TypeDescriptor):
    type_code = typecodes.TIME
    type_name = "TIME"
    python_types = (datetime.time,)

    def _coerce_non_null(self, value: Any) -> datetime.time:
        if isinstance(value, datetime.time):
            return value
        if isinstance(value, str):
            try:
                return datetime.time.fromisoformat(value.strip())
            except ValueError:
                raise errors.InvalidCastError(
                    f"cannot cast {value!r} to TIME"
                ) from None
        raise errors.InvalidCastError(
            f"cannot store {type(value).__name__} in TIME"
        )


class TimestampType(TypeDescriptor):
    type_code = typecodes.TIMESTAMP
    type_name = "TIMESTAMP"
    python_types = (datetime.datetime,)

    def _coerce_non_null(self, value: Any) -> datetime.datetime:
        if isinstance(value, datetime.datetime):
            return value
        if isinstance(value, datetime.date):
            return datetime.datetime(value.year, value.month, value.day)
        if isinstance(value, str):
            try:
                return datetime.datetime.fromisoformat(value.strip())
            except ValueError:
                raise errors.InvalidCastError(
                    f"cannot cast {value!r} to TIMESTAMP"
                ) from None
        raise errors.InvalidCastError(
            f"cannot store {type(value).__name__} in TIMESTAMP"
        )


# ---------------------------------------------------------------------------
# User-defined (Part 2) object types
# ---------------------------------------------------------------------------


class ObjectType(TypeDescriptor):
    """A column/parameter typed by a SQLJ Part 2 user-defined type.

    Only the SQL name is carried here; the binding to a Python class, the
    attribute map and the method map live in the catalog's
    :class:`~repro.engine.catalog.UserDefinedType` entry.  ``coerce`` is
    therefore identity plus a class check installed by the catalog at
    binding time (see :meth:`bind_class`).
    """

    type_code = typecodes.PY_OBJECT
    type_name = "PY_OBJECT"

    def __init__(self, udt_name: str, python_class: Optional[type] = None):
        self.udt_name = udt_name.lower()
        self.python_class = python_class

    def bind_class(self, python_class: type) -> "ObjectType":
        """Return a copy bound to the implementing Python class."""
        return ObjectType(self.udt_name, python_class)

    def _key(self) -> tuple:
        return ("ObjectType", self.udt_name)

    def _coerce_non_null(self, value: Any) -> Any:
        if self.python_class is not None and not isinstance(
            value, self.python_class
        ):
            raise errors.InvalidCastError(
                f"value of class {type(value).__name__} is not an instance "
                f"of UDT {self.udt_name!r} "
                f"({self.python_class.__name__})"
            )
        return value

    def assignable_from(self, other: "TypeDescriptor") -> bool:
        # Substitutability: a subtype column accepts the subtype.  The
        # catalog refines this with the real subtype graph; structurally we
        # accept any ObjectType whose bound class is a subclass of ours.
        if not isinstance(other, ObjectType):
            return False
        if other.udt_name == self.udt_name:
            return True
        if self.python_class is not None and other.python_class is not None:
            return issubclass(other.python_class, self.python_class)
        return False

    def sql_spelling(self) -> str:
        return self.udt_name


# ---------------------------------------------------------------------------
# Parsing SQL type spellings
# ---------------------------------------------------------------------------

_TYPE_RE = re.compile(
    r"""^\s*
        (?P<name>[A-Za-z_][A-Za-z0-9_ ]*?)
        \s*
        (?:\(\s*(?P<p>\d+)\s*(?:,\s*(?P<s>\d+)\s*)?\))?
        \s*$""",
    re.VERBOSE,
)

_SIMPLE_TYPES = {
    "SMALLINT": SmallIntType,
    "INT": IntegerType,
    "INTEGER": IntegerType,
    "BIGINT": BigIntType,
    "REAL": RealType,
    "DOUBLE": DoubleType,
    "DOUBLE PRECISION": DoubleType,
    "FLOAT": DoubleType,
    "BOOLEAN": BooleanType,
    "DATE": DateType,
    "TIME": TimeType,
    "TIMESTAMP": TimestampType,
    "BLOB": BlobType,
    "CLOB": ClobType,
}


def parse_type(spelling: str) -> TypeDescriptor:
    """Parse a SQL type spelling (``"decimal(6,2)"``) into a descriptor.

    Unknown names become unbound :class:`ObjectType` references, to be
    resolved against the catalog's user-defined types; this is how a
    ``create table`` can use a Part 2 type name as a column type.
    """
    match = _TYPE_RE.match(spelling)
    if not match:
        raise errors.SQLSyntaxError(f"malformed type spelling {spelling!r}")
    name = " ".join(match.group("name").upper().split())
    precision = match.group("p")
    scale = match.group("s")

    if name in ("CHAR", "CHARACTER"):
        return CharType(int(precision) if precision else 1)
    if name in ("VARCHAR", "CHARACTER VARYING", "CHAR VARYING"):
        return VarCharType(int(precision) if precision else None)
    if name in ("DECIMAL", "DEC", "NUMERIC"):
        if precision is None:
            return DecimalType()
        return DecimalType(int(precision), int(scale) if scale else 0)
    if name in _SIMPLE_TYPES:
        if precision is not None and name != "FLOAT":
            raise errors.SQLSyntaxError(
                f"type {name} does not take parameters"
            )
        return _SIMPLE_TYPES[name]()
    if precision is not None:
        raise errors.SQLSyntaxError(f"unknown parameterised type {name!r}")
    return ObjectType(match.group("name").strip())


def type_from_python_value(value: Any) -> TypeDescriptor:
    """Infer a descriptor for a literal Python value (used when describing
    host variables and dynamic parameters)."""
    if isinstance(value, bool):
        return BooleanType()
    if isinstance(value, int):
        return IntegerType() if -(2 ** 31) <= value < 2 ** 31 else BigIntType()
    if isinstance(value, float):
        return DoubleType()
    if isinstance(value, decimal.Decimal):
        exponent = value.as_tuple().exponent
        scale = -exponent if isinstance(exponent, int) and exponent < 0 else 0
        return DecimalType(max(len(value.as_tuple().digits), scale + 1), scale)
    if isinstance(value, str):
        return VarCharType(None)
    if isinstance(value, (bytes, bytearray)):
        return BlobType()
    if isinstance(value, datetime.datetime):
        return TimestampType()
    if isinstance(value, datetime.date):
        return DateType()
    if isinstance(value, datetime.time):
        return TimeType()
    return ObjectType(type(value).__name__, type(value))
