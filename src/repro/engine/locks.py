"""Reader-writer locking for the engine.

One :class:`ReadWriteLock` guards each :class:`repro.engine.database.
Database`.  Since MVCC (:mod:`repro.engine.mvcc`) made reads and DML
snapshot-isolated, queries, DML and transaction control all acquire it
*shared* — concurrent writers coordinate through row-version claims
and the commit mutex instead of this lock.  Only catalog-shape changes
(DDL) and CALL (routines may run arbitrary nested statements) still
acquire it exclusive.  Acquisition happens once per statement in
:meth:`repro.engine.database.Session.execute_statement` — never nested
across two databases, which is what keeps the ordering deadlock-free.

The lock is **reentrant per thread** in both modes, because external
routines (SQLJ Part 1) execute nested statements on the invoking
session while the enclosing CALL already holds the write lock:

* write → write and write → read re-enter the existing exclusive hold;
* read → read increments the thread's shared hold;
* read → write is a lock *upgrade*: a function invoked from a SELECT
  may run DML through its default connection.  The upgrade waits until
  the requester is the sole reader.  Only one thread may wait for an
  upgrade at a time; a second concurrent upgrader would deadlock
  against the first, so it fails fast with
  :class:`repro.errors.TransactionError` (SQLSTATE class 25) instead of
  hanging.

Writers are preferred over newly arriving readers (a waiting writer
blocks new shared acquisitions) so a stream of queries cannot starve
DML.
"""

from __future__ import annotations

import contextlib
import threading
import time
from typing import Dict, Iterator, Optional

from repro import errors
from repro.observability import stats as _stats

__all__ = ["ReadWriteLock"]


class ReadWriteLock:
    """Shared-read / exclusive-write lock, reentrant per thread.

    Blocked acquisitions are timed and reported to
    :func:`repro.observability.stats.note_lock_wait` (global
    ``waits.lock.*`` histograms plus per-statement attribution) and
    accumulated on the lock itself (:attr:`shared_wait_seconds` /
    :attr:`exclusive_wait_seconds`) for the ``repro_stats.locks`` view.
    The uncontended path takes no clock readings at all.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._writer: Optional[int] = None  # owning thread ident
        self._writer_depth = 0
        self._readers: Dict[int, int] = {}  # thread ident -> hold depth
        self._waiting_writers = 0
        self._upgrader: Optional[int] = None
        # Read depth stashed while a reader holds an upgraded write lock.
        self._suspended_read_depth: Dict[int, int] = {}
        #: Cumulative blocked-acquisition totals (under self._cond).
        self.shared_wait_seconds = 0.0
        self.exclusive_wait_seconds = 0.0
        self.shared_wait_count = 0
        self.exclusive_wait_count = 0

    # ------------------------------------------------------------------
    # shared (read) side
    # ------------------------------------------------------------------
    def acquire_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                # Nested read under our own write hold: stay exclusive.
                self._writer_depth += 1
                return
            if me in self._readers:
                self._readers[me] += 1
                return
            if (
                self._writer is not None
                or self._waiting_writers
                or self._upgrader is not None
            ):
                start = time.perf_counter()
                while (
                    self._writer is not None
                    or self._waiting_writers
                    or self._upgrader is not None
                ):
                    self._cond.wait()
                waited = time.perf_counter() - start
                self.shared_wait_seconds += waited
                self.shared_wait_count += 1
                _stats.note_lock_wait(False, waited)
            self._readers[me] = 1

    def release_read(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._release_write_locked(me)
                return
            depth = self._readers.get(me)
            if depth is None:
                raise RuntimeError(
                    "release_read without a matching acquire_read"
                )
            if depth == 1:
                del self._readers[me]
                self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    # ------------------------------------------------------------------
    # exclusive (write) side
    # ------------------------------------------------------------------
    def acquire_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                self._upgrade_locked(me)
                return
            self._waiting_writers += 1
            try:
                if self._writer is not None or self._readers:
                    start = time.perf_counter()
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                    waited = time.perf_counter() - start
                    self.exclusive_wait_seconds += waited
                    self.exclusive_wait_count += 1
                    _stats.note_lock_wait(True, waited)
            finally:
                self._waiting_writers -= 1
            self._writer = me
            self._writer_depth = 1

    def _upgrade_locked(self, me: int) -> None:
        """Promote this thread's shared hold to exclusive."""
        if self._upgrader is not None:
            raise errors.TransactionError(
                "deadlock avoided: two transactions attempted a "
                "read-to-write lock upgrade concurrently"
            )
        self._upgrader = me
        try:
            if self._writer is not None or len(self._readers) > 1:
                start = time.perf_counter()
                while self._writer is not None or len(self._readers) > 1:
                    self._cond.wait()
                waited = time.perf_counter() - start
                self.exclusive_wait_seconds += waited
                self.exclusive_wait_count += 1
                _stats.note_lock_wait(True, waited)
        finally:
            self._upgrader = None
        self._suspended_read_depth[me] = self._readers.pop(me)
        self._writer = me
        self._writer_depth = 1

    def release_write(self) -> None:
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError(
                    "release_write by a thread that does not hold the "
                    "write lock"
                )
            self._release_write_locked(me)

    def _release_write_locked(self, me: int) -> None:
        self._writer_depth -= 1
        if self._writer_depth == 0:
            self._writer = None
            suspended = self._suspended_read_depth.pop(me, None)
            if suspended is not None:
                # Downgrade back to the shared hold the upgrade suspended.
                self._readers[me] = suspended
            self._cond.notify_all()

    # ------------------------------------------------------------------
    # context managers (the only interface the engine uses)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def read(self) -> Iterator[None]:
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextlib.contextmanager
    def write(self) -> Iterator[None]:
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # ------------------------------------------------------------------
    # introspection (tests and diagnostics)
    # ------------------------------------------------------------------
    def held_exclusive(self) -> bool:
        return self._writer is not None

    def held_exclusive_by_me(self) -> bool:
        """True when the *calling thread* holds the exclusive lock.

        Distinct from :meth:`held_exclusive`: a writer deciding whether
        it is nested inside its own exclusive statement must not be
        fooled by some other thread happening to hold the lock.
        """
        return self._writer == threading.get_ident()

    def reader_count(self) -> int:
        with self._cond:
            return len(self._readers)
