"""``psqlj`` command line: translate, package, customize.

Examples::

    psqlj app.psqlj                          # translate next to source
    psqlj app.psqlj -d build --package       # emit build/app.pjar too
    psqlj app.psqlj --exemplar pydbc:standard:payroll
    psqlj --customize acme,zenith build/app.pjar
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import errors
from repro.profiles.customizer import customize_pjar, customize_profile_file
from repro.translator.translator import TranslationOptions, Translator

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="psqlj",
        description="PySQLJ translator and profile customizer",
    )
    parser.add_argument(
        "inputs", nargs="+",
        help=".psqlj sources to translate, or .pjar/.ser files with "
             "--customize",
    )
    parser.add_argument(
        "-d", "--output-dir", default=None,
        help="directory for generated modules and profiles",
    )
    parser.add_argument(
        "--package", action="store_true",
        help="also package each translation into a .pjar",
    )
    parser.add_argument(
        "--exemplar", default=None,
        help="PyDBC URL of an exemplar schema for online checking",
    )
    parser.add_argument(
        "--customize", default=None, metavar="DIALECTS",
        help="comma-separated dialects to customize the given .pjar/.ser "
             "files for (no translation is performed)",
    )
    parser.add_argument(
        "--show", action="store_true",
        help="print the entries and customizations of the given "
             ".ser/.pjar files (no translation is performed)",
    )
    parser.add_argument(
        "--warnings-as-errors", action="store_true",
        help="fail translation on checker warnings",
    )
    parser.add_argument(
        "--trace", nargs="?", const="tree", choices=("json", "tree"),
        default=None, metavar="MODE",
        help="emit observability spans while translating (json lines or "
             "an indented tree, default tree); equivalent to setting "
             "REPRO_TRACE",
    )
    return parser


def _customize(paths: List[str], dialects: List[str]) -> int:
    status = 0
    for path in paths:
        try:
            if path.endswith(".ser"):
                for dialect in dialects:
                    customize_profile_file(path, dialect)
            else:
                customize_pjar(path, dialects)
            print(f"customized {path} for {', '.join(dialects)}")
        except errors.SQLException as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            status = 1
    return status


def _show(paths: List[str]) -> int:
    from repro.profiles.pjar import read_pjar
    from repro.profiles.serialization import (
        load_profile,
        profile_from_bytes,
    )

    status = 0
    for path in paths:
        try:
            if path.endswith(".ser"):
                profiles = [load_profile(path)]
            else:
                profiles = [
                    profile_from_bytes(payload)
                    for name, payload in sorted(read_pjar(path).items())
                    if name.endswith(".ser")
                ]
        except errors.SQLException as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        print(f"{path}:")
        for profile in profiles:
            print(
                f"  profile {profile.name} "
                f"(context {profile.context_type}, "
                f"{profile.entry_count()} entries)"
            )
            for entry in profile.data:
                print(f"    {entry.describe()}")
                for param in entry.param_types:
                    mode = f" [{param.mode}]" if param.mode != "IN" else ""
                    print(f"      param :{param.name}{mode}")
            for customization in profile.customizations:
                print(f"    customization: {customization.describe()}")
    return status


def main(argv: Optional[List[str]] = None) -> int:
    args = build_arg_parser().parse_args(argv)

    if args.trace:
        from repro.observability import enable_tracing

        enable_tracing(args.trace)

    if args.show:
        return _show(args.inputs)

    if args.customize:
        dialects = [d.strip() for d in args.customize.split(",") if d.strip()]
        return _customize(args.inputs, dialects)

    options = TranslationOptions(
        warnings_as_errors=args.warnings_as_errors
    )
    if args.exemplar:
        from repro.dbapi.driver import DriverManager

        options.exemplar = DriverManager.get_connection(
            args.exemplar
        ).session
    translator = Translator(options)

    from repro.observability import tracing as _tracing

    status = 0
    for path in args.inputs:
        try:
            with _tracing.span("translate", source=path):
                result = translator.translate_file(
                    path, output_dir=args.output_dir, package=args.package
                )
        except errors.TranslationError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            for message in getattr(exc, "messages", []):
                print(f"  {message.format()}", file=sys.stderr)
            status = 1
            continue
        print(f"translated {path} -> {result.module_path}")
        for profile_path in result.profile_paths:
            print(f"  profile {profile_path}")
        if result.pjar_path:
            print(f"  packaged {result.pjar_path}")
        for message in result.messages:
            print(f"  {message.format()}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
