"""Mapping host-language exceptions to SQLSTATEs.

The paper's Part 1 error-handling rule: exceptions caught inside the
routine are invisible to SQL; exceptions that escape "become SQLSTATE
error codes", with the thrown message as the SQLSTATE's message text.
This module centralises that mapping for every invocation path.
"""

from __future__ import annotations

from repro import errors

__all__ = ["to_sql_exception", "SQLSTATE_BY_EXCEPTION"]

#: Python exception type -> SQLSTATE for common host-language failures.
SQLSTATE_BY_EXCEPTION = {
    ZeroDivisionError: "22012",
    ValueError: "22023",
    TypeError: "39004",
    AttributeError: "39004",
    KeyError: "22023",
    IndexError: "22023",
    OverflowError: "22003",
    MemoryError: "53200",
    RecursionError: "54001",
}


def to_sql_exception(exc: BaseException) -> errors.SQLException:
    """Convert an exception escaping a routine body into SQLException.

    SQLExceptions pass through untouched (they already carry a SQLSTATE —
    e.g. an engine error raised by SQL the routine executed).  Everything
    else becomes an :class:`repro.errors.ExternalRoutineError` whose
    message is the raised exception's text, per the paper.
    """
    if isinstance(exc, errors.SQLException):
        return exc
    sqlstate = "38000"
    for exc_type, state in SQLSTATE_BY_EXCEPTION.items():
        if isinstance(exc, exc_type):
            sqlstate = state
            break
    wrapped = errors.ExternalRoutineError(
        str(exc) or type(exc).__name__, sqlstate=sqlstate
    )
    wrapped.__cause__ = exc
    return wrapped
