"""Property-based tests (hypothesis) over core invariants."""

import decimal
import re

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import errors
from repro import Database
from repro.engine.ast import Select
from repro.engine.executor import _RowSet
from repro.engine.lexer import KEYWORDS, Token, tokenize
from repro.engine.parser import parse_expression, parse_statement
from repro.engine.render import render_expression, render_statement
from repro.profiles.serialization import (
    profile_from_bytes,
    profile_to_bytes,
)
from repro.profiles.model import EntryInfo, Profile, TypeInfo
from repro.procedures.archives import build_par_bytes, read_par
from repro.sqltypes import (
    CharType,
    DecimalType,
    IntegerType,
    VarCharType,
    compare_values,
)
from repro.sqltypes.values import sort_key
from repro.translator.hostvars import extract_host_variables

D = decimal.Decimal

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

identifiers = st.from_regex(r"[a-z][a-z0-9_]{0,10}", fullmatch=True).filter(
    lambda s: s.upper() not in KEYWORDS
)

sql_strings = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs",), blacklist_characters="\x00"
    ),
    max_size=30,
)

scalar_values = st.one_of(
    st.none(),
    st.integers(min_value=-(10 ** 9), max_value=10 ** 9),
    st.decimals(
        allow_nan=False, allow_infinity=False, places=2,
        min_value=-(10 ** 6), max_value=10 ** 6,
    ),
    st.text(max_size=12),
)


class TestLexerProperties:
    @given(sql_strings)
    def test_string_literal_roundtrip(self, text):
        literal = "'" + text.replace("'", "''") + "'"
        tokens = tokenize(literal)
        assert tokens[0].kind == Token.STRING
        assert tokens[0].value == text

    @given(identifiers)
    def test_identifier_roundtrip(self, name):
        tokens = tokenize(name)
        assert tokens[0].kind == Token.IDENT
        assert tokens[0].value == name.lower()

    @given(st.integers(min_value=0, max_value=10 ** 15))
    def test_integer_literal_roundtrip(self, value):
        tokens = tokenize(str(value))
        assert tokens[0].kind == Token.NUMBER
        assert int(tokens[0].value) == value


class TestCompareValueProperties:
    @given(scalar_values, scalar_values)
    def test_antisymmetry(self, a, b):
        try:
            ab = compare_values(a, b)
            ba = compare_values(b, a)
        except errors.InvalidCastError:
            return  # mixed domains
        if ab is None:
            assert ba is None
        else:
            assert ab == -ba

    @given(scalar_values)
    def test_reflexivity(self, a):
        result = compare_values(a, a)
        if a is None:
            assert result is None
        else:
            assert result == 0

    @given(st.lists(st.one_of(st.none(), st.integers()), max_size=20))
    def test_sort_key_total_order_with_nulls_last(self, values):
        ordered = sorted(values, key=sort_key)
        non_null = [v for v in ordered if v is not None]
        assert non_null == sorted(non_null)
        if None in values:
            first_null = ordered.index(None)
            assert all(v is None for v in ordered[first_null:])


class TestTypeProperties:
    @given(st.integers(min_value=1, max_value=30), st.text(max_size=30))
    def test_char_coercion_always_padded_or_error(self, length, text):
        descriptor = CharType(length)
        try:
            stored = descriptor.coerce(text)
        except errors.SQLException:
            return
        assert len(stored) == length

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=6),
        st.decimals(
            allow_nan=False, allow_infinity=False,
            min_value=-(10 ** 6), max_value=10 ** 6,
        ),
    )
    def test_decimal_coercion_scale_invariant(self, precision, scale,
                                              value):
        if scale > precision:
            return
        descriptor = DecimalType(precision, scale)
        try:
            stored = descriptor.coerce(value)
        except errors.SQLException:
            return
        assert isinstance(stored, D)
        exponent = stored.as_tuple().exponent
        assert exponent == -scale

    @given(st.integers())
    def test_integer_coercion_identity_in_range(self, value):
        descriptor = IntegerType()
        if -(2 ** 31) <= value < 2 ** 31:
            assert descriptor.coerce(value) == value
        else:
            with pytest.raises(errors.NumericOverflowError):
                descriptor.coerce(value)


class TestParserRenderProperties:
    @given(
        identifiers, identifiers,
        st.integers(min_value=0, max_value=1000),
        sql_strings,
    )
    @settings(suppress_health_check=[HealthCheck.too_slow], deadline=None)
    def test_select_roundtrip(self, table, column, number, text):
        literal = text.replace("'", "''")
        sql = (
            f"SELECT {column}, {number}, '{literal}' FROM {table} "
            f"WHERE {column} > {number}"
        )
        first = parse_statement(sql)
        rendered = render_statement(first)
        second = parse_statement(rendered)
        assert first == second

    @given(st.integers(min_value=-999, max_value=999),
           st.integers(min_value=-999, max_value=999))
    def test_arithmetic_expression_roundtrip(self, a, b):
        expr = parse_expression(f"{a} + {b} * ({a} - {b})")
        rendered = render_expression(expr)
        assert parse_expression(rendered) == expr


class TestHostVarProperties:
    @given(st.lists(identifiers, min_size=1, max_size=8))
    def test_hostvar_extraction_order(self, names):
        sql = "INSERT INTO t VALUES (" + ", ".join(
            f":{n}" for n in names
        ) + ")"
        rewritten, found = extract_host_variables(sql)
        # Bare ``:in``/``:out``/``:inout`` lex as variable names; a name
        # that *prefixes* with a mode keyword plus space would shift, but
        # these are single identifiers so the name list is exact.
        assert [v.name for v in found] == names
        assert rewritten.count("?") == len(names)
        assert ":" not in rewritten

    @given(sql_strings)
    def test_hostvars_never_extracted_from_strings(self, text):
        literal = text.replace("'", "''")
        sql = f"SELECT '{literal}' FROM t"
        rewritten, found = extract_host_variables(sql)
        assert found == []
        assert rewritten == sql


class TestArchiveProperties:
    @given(
        st.dictionaries(
            identifiers,
            st.text(
                alphabet=st.characters(
                    min_codepoint=32, max_codepoint=126
                ),
                max_size=50,
            ),
            min_size=1,
            max_size=5,
        )
    )
    def test_par_roundtrip(self, modules):
        payload = build_par_bytes(modules)
        loaded, descriptor = read_par(payload)
        assert loaded == modules
        assert descriptor is None


class TestProfileProperties:
    @given(
        st.lists(
            st.tuples(identifiers, st.sampled_from(
                ["QUERY", "UPDATE", "CALL", "DDL"]
            )),
            min_size=1,
            max_size=6,
        )
    )
    def test_profile_serialization_roundtrip(self, specs):
        profile = Profile(name="p_SJProfile0", context_type="Default")
        for index, (name, role) in enumerate(specs):
            profile.data.add(
                EntryInfo(
                    index=index,
                    sql=f"DELETE FROM {name}",
                    role=role,
                    param_types=[TypeInfo(name=name)],
                )
            )
        again = profile_from_bytes(profile_to_bytes(profile))
        assert again.entry_count() == len(specs)
        for index, (name, role) in enumerate(specs):
            entry = again.get_entry(index)
            assert entry.sql == f"DELETE FROM {name}"
            assert entry.role == role


class TestRowSetProperties:
    @given(st.lists(st.tuples(scalar_values, scalar_values), max_size=30))
    def test_rowset_deduplicates_exactly(self, rows):
        seen = _RowSet()
        kept = [row for row in rows if seen.add(row)]

        def key(row):
            return tuple(
                v.rstrip(" ") if isinstance(v, str) else
                D(str(v)) if isinstance(v, (int, float, D)) and not
                isinstance(v, bool) else v
                for v in row
            )

        unique = []
        observed = set()
        for row in rows:
            k = key(row)
            if k not in observed:
                observed.add(k)
                unique.append(row)
        assert len(kept) == len(unique)


class TestEngineQueryProperties:
    @settings(
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-100, max_value=100),
                st.one_of(st.none(),
                          st.integers(min_value=-100, max_value=100)),
            ),
            max_size=25,
        ),
        st.integers(min_value=-100, max_value=100),
    )
    def test_where_filter_matches_python_oracle(self, rows, threshold):
        database = Database(name="prop")
        session = database.create_session(autocommit=True)
        session.execute("create table t (a integer, b integer)")
        for a, b in rows:
            b_text = "null" if b is None else str(b)
            session.execute(f"insert into t values ({a}, {b_text})")
        result = session.execute(
            "select a from t where b > ? order by a", [threshold]
        )
        expected = sorted(
            a for a, b in rows if b is not None and b > threshold
        )
        assert [r[0] for r in result.rows] == expected

    @settings(
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        st.lists(
            st.integers(min_value=-50, max_value=50), max_size=30
        )
    )
    def test_aggregates_match_python_oracle(self, values):
        database = Database(name="prop2")
        session = database.create_session(autocommit=True)
        session.execute("create table t (a integer)")
        for value in values:
            session.execute(f"insert into t values ({value})")
        row = session.execute(
            "select count(*), sum(a), min(a), max(a) from t"
        ).rows[0]
        assert row[0] == len(values)
        assert row[1] == (sum(values) if values else None)
        assert row[2] == (min(values) if values else None)
        assert row[3] == (max(values) if values else None)

    @settings(
        max_examples=25,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(st.lists(st.text(
        alphabet="ab_%", max_size=6
    ), max_size=15), st.text(alphabet="ab_%", max_size=4))
    def test_like_matches_regex_oracle(self, values, pattern):
        database = Database(name="prop3")
        session = database.create_session(autocommit=True)
        session.execute("create table t (s varchar(20))")
        for value in values:
            escaped = value.replace("'", "''")
            session.execute(f"insert into t values ('{escaped}')")
        escaped_pattern = pattern.replace("'", "''")
        result = session.execute(
            f"select s from t where s like '{escaped_pattern}'"
        )
        regex = re.compile(
            "^"
            + "".join(
                ".*" if c == "%" else "." if c == "_" else re.escape(c)
                for c in pattern
            )
            + "$",
            re.DOTALL,
        )
        expected = [v for v in values if regex.match(v)]
        assert sorted(r[0] for r in result.rows) == sorted(expected)


class TestTransactionProperties:
    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        st.lists(
            st.one_of(
                st.tuples(st.just("insert"),
                          st.integers(min_value=-99, max_value=99)),
                st.tuples(st.just("delete"),
                          st.integers(min_value=-99, max_value=99)),
                st.tuples(st.just("update"),
                          st.integers(min_value=-99, max_value=99)),
            ),
            max_size=12,
        )
    )
    def test_rollback_restores_exact_state(self, operations):
        database = Database(name="txprop")
        session = database.create_session(autocommit=False)
        session.execute("create table t (a integer)")
        for seed in (5, 10, 15):
            session.execute(f"insert into t values ({seed})")
        session.commit()
        before = session.execute("select a from t").rows

        for kind, value in operations:
            if kind == "insert":
                session.execute(f"insert into t values ({value})")
            elif kind == "delete":
                session.execute(f"delete from t where a < {value}")
            else:
                session.execute(
                    f"update t set a = a + 1 where a > {value}"
                )
        session.rollback()
        after = session.execute("select a from t").rows
        assert after == before

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(st.lists(st.integers(min_value=-99, max_value=99),
                    max_size=10))
    def test_commit_then_rollback_is_noop(self, values):
        database = Database(name="txprop2")
        session = database.create_session(autocommit=False)
        session.execute("create table t (a integer)")
        for value in values:
            session.execute(f"insert into t values ({value})")
        session.commit()
        committed = session.execute("select a from t").rows
        session.rollback()
        assert session.execute("select a from t").rows == committed


class TestQueryOracleProperties:
    """Engine behaviour cross-checked against plain-Python oracles."""

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(st.lists(st.integers(min_value=-20, max_value=20),
                    max_size=30))
    def test_distinct_matches_set_oracle(self, values):
        database = Database(name="oracle1")
        session = database.create_session(autocommit=True)
        session.execute("create table t (a integer)")
        for value in values:
            session.execute(f"insert into t values ({value})")
        result = session.execute(
            "select distinct a from t order by a"
        ).rows
        assert [r[0] for r in result] == sorted(set(values))

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(st.lists(st.integers(min_value=-20, max_value=20),
                    max_size=25),
           st.lists(st.integers(min_value=-20, max_value=20),
                    max_size=25))
    def test_set_operations_match_python_oracle(self, left, right):
        database = Database(name="oracle2")
        session = database.create_session(autocommit=True)
        session.execute("create table l (a integer)")
        session.execute("create table r (a integer)")
        for value in left:
            session.execute(f"insert into l values ({value})")
        for value in right:
            session.execute(f"insert into r values ({value})")

        def q(sql):
            return sorted(
                row[0] for row in session.execute(sql).rows
            )

        assert q("select a from l union select a from r") == \
            sorted(set(left) | set(right))
        assert q("select a from l intersect select a from r") == \
            sorted(set(left) & set(right))
        assert q("select a from l except select a from r") == \
            sorted(set(left) - set(right))
        assert q("select a from l union all select a from r") == \
            sorted(left + right)

        # Bag semantics for INTERSECT ALL / EXCEPT ALL.
        from collections import Counter

        lc, rc = Counter(left), Counter(right)
        assert q("select a from l intersect all select a from r") == \
            sorted((lc & rc).elements())
        assert q("select a from l except all select a from r") == \
            sorted((lc - rc).elements())

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.integers(min_value=-50, max_value=50),
            ),
            max_size=30,
        )
    )
    def test_group_by_matches_dict_oracle(self, pairs):
        database = Database(name="oracle3")
        session = database.create_session(autocommit=True)
        session.execute("create table t (k integer, v integer)")
        for key, value in pairs:
            session.execute(f"insert into t values ({key}, {value})")
        result = session.execute(
            "select k, count(*), sum(v) from t group by k order by k"
        ).rows
        expected = {}
        for key, value in pairs:
            count, total = expected.get(key, (0, 0))
            expected[key] = (count + 1, total + value)
        assert result == [
            [key, count, total]
            for key, (count, total) in sorted(expected.items())
        ]

    @settings(
        max_examples=20,
        suppress_health_check=[HealthCheck.too_slow],
        deadline=None,
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=-9, max_value=9),
                st.text(alphabet="abc", min_size=1, max_size=3),
            ),
            max_size=20,
        )
    )
    def test_order_by_two_keys_matches_sorted_oracle(self, rows_in):
        database = Database(name="oracle4")
        session = database.create_session(autocommit=True)
        session.execute("create table t (a integer, s varchar(5))")
        for a, s in rows_in:
            session.execute(f"insert into t values ({a}, '{s}')")
        result = session.execute(
            "select a, s from t order by a desc, s"
        ).rows
        expected = sorted(rows_in, key=lambda r: (-r[0], r[1]))
        assert [(r[0], r[1]) for r in result] == expected
