"""Deterministic fault injection.

A :class:`FaultPlan` is a list of rules bound to the named sites in
:mod:`repro.faultpoints` (executor, storage, pool checkout/checkin,
procedure invocation).  Each rule can **raise** a typed SQL error,
**delay** execution, or **corrupt** the value flowing through a pipe
site — governed by a *seeded* RNG, so a failing schedule replays
exactly under the same seed and single-threaded order (under threads,
determinism is per-interleaving; use ``times``/``after`` for exact
multi-thread scripts).

Cookbook::

    plan = FaultPlan(seed=7)
    plan.inject("storage.insert", error=errors.OperatorExecutionError,
                probability=0.25)
    plan.inject("pool.checkout", delay=0.01, times=3)
    with plan.armed():
        run_workload()
    assert plan.fired["storage.insert"] > 0

Rules fire in registration order; every fired rule is tallied in
``plan.fired`` (site -> count).  ``error`` may be an exception class
(instantiated with an "injected fault" message), an instance, or a
zero-argument factory.  Omitting ``error``, ``delay`` and ``corrupt``
still counts matches — useful as a probe that a site is reached.
"""

from __future__ import annotations

import collections
import contextlib
import random
import threading
import time
from typing import Any, Callable, Iterator, List, Optional, Union

from repro import errors, faultpoints

__all__ = ["FaultPlan", "FaultRule"]

ErrorSpec = Union[
    BaseException, type, Callable[[], BaseException], None
]


class FaultRule:
    """One injection rule: where, what, and how often."""

    def __init__(
        self,
        site: str,
        *,
        error: ErrorSpec = None,
        delay: Optional[float] = None,
        corrupt: Optional[Callable[[Any], Any]] = None,
        probability: float = 1.0,
        times: Optional[int] = None,
        after: int = 0,
    ) -> None:
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        self.site = site
        self.error = error
        self.delay = delay
        self.corrupt = corrupt
        self.probability = probability
        self.times = times
        self.after = after
        self.matches = 0  # site hits considered by this rule
        self.fired = 0  # times the rule actually fired

    def _should_fire(self, rng: random.Random) -> bool:
        self.matches += 1
        if self.matches <= self.after:
            return False
        if self.times is not None and self.fired >= self.times:
            return False
        if self.probability < 1.0 and rng.random() >= self.probability:
            return False
        self.fired += 1
        return True

    def _raise_error(self, site: str) -> None:
        spec = self.error
        if spec is None:
            return
        if isinstance(spec, BaseException):
            raise spec
        if isinstance(spec, type) and issubclass(spec, BaseException):
            raise spec(f"injected fault at {site!r}")
        raise spec()


class FaultPlan:
    """A seeded, replayable set of fault rules."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._rules: List[FaultRule] = []
        self._lock = threading.Lock()
        #: site -> number of rule firings observed there.
        self.fired: collections.Counter = collections.Counter()

    # ------------------------------------------------------------------
    # rule registration (chainable)
    # ------------------------------------------------------------------
    def inject(
        self,
        site: str,
        *,
        error: ErrorSpec = None,
        delay: Optional[float] = None,
        corrupt: Optional[Callable[[Any], Any]] = None,
        probability: float = 1.0,
        times: Optional[int] = None,
        after: int = 0,
    ) -> "FaultPlan":
        """Add a rule for ``site``; returns ``self`` for chaining.

        ``after`` skips the first N hits (fire on the N+1th onwards);
        ``times`` caps total firings; ``probability`` gates each hit on
        the plan's seeded RNG.
        """
        self._rules.append(
            FaultRule(
                site,
                error=error,
                delay=delay,
                corrupt=corrupt,
                probability=probability,
                times=times,
                after=after,
            )
        )
        return self

    # ------------------------------------------------------------------
    # the faultpoints contract
    # ------------------------------------------------------------------
    def fire(self, site: str, value: Any = None) -> Any:
        """Called by :mod:`repro.faultpoints` at an armed site."""
        to_raise: Optional[FaultRule] = None
        total_delay = 0.0
        with self._lock:
            for rule in self._rules:
                if rule.site != site:
                    continue
                if not rule._should_fire(self._rng):
                    continue
                self.fired[site] += 1
                if rule.delay:
                    total_delay += rule.delay
                if rule.corrupt is not None:
                    value = rule.corrupt(value)
                if rule.error is not None and to_raise is None:
                    to_raise = rule
        # Sleep and raise outside the plan lock so a delaying rule never
        # serialises unrelated sites through the plan.
        if total_delay:
            time.sleep(total_delay)
        if to_raise is not None:
            to_raise._raise_error(site)
        return value

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def install(self) -> None:
        faultpoints.install(self)

    def uninstall(self) -> None:
        if faultpoints.installed() is self:
            faultpoints.uninstall()

    @contextlib.contextmanager
    def armed(self) -> Iterator["FaultPlan"]:
        """Arm the plan for the duration of a ``with`` block."""
        self.install()
        try:
            yield self
        finally:
            self.uninstall()

    # ------------------------------------------------------------------
    # replay support
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Rewind counters and reseed the RNG for an exact replay."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.fired.clear()
            for rule in self._rules:
                rule.matches = 0
                rule.fired = 0
