"""EXPLAIN: structured plan introspection plus text rendering.

The supported surface is the typed :class:`PlanNode` tree returned by
``Session.explain(sql)`` (and the ``Connection`` / ``RemoteSession``
duck-typed equivalents) and by ``EXPLAIN (FORMAT JSON) <query>``.  Each
node carries the operator kind, a one-line description, the planner's
estimated rows/cost (when ANALYZE statistics exist), actual rows/time
when the plan was executed (EXPLAIN ANALYZE), and the alternatives the
cost-based planner *rejected* with their estimated costs — so EXPLAIN
can show why a plan won.

Text EXPLAIN remains, as a formatter over the tree::

    Sort (1 key)
      Project
        Filter (sales > 100)
          SeqScan on emps

``EXPLAIN ANALYZE <query>`` executes the query with an instrumented plan
(:func:`repro.engine.executor.instrument_plan`) and each line carries
actual row counts and cumulative time::

    Project (4 columns) (actual rows=3 time=0.041 ms)
      SeqScan on emps (actual rows=10 time=0.012 ms)

:func:`format_plan` (render straight from an operator tree) is kept as a
deprecation shim for pre-PlanNode callers.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.engine.executor import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    SingleRow,
    Sort,
    UnionOp,
    operator_children,
)
from repro.engine.virtual import VirtualScan

__all__ = [
    "PlanAlternative",
    "PlanNode",
    "build_plan_tree",
    "format_plan_tree",
    "describe_operator",
    "format_plan",
]


@dataclass
class PlanAlternative:
    """A plan choice the planner considered and rejected, with its cost."""

    description: str
    estimated_cost: Optional[float] = None
    estimated_rows: Optional[float] = None
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "description": self.description,
            "estimated_cost": self.estimated_cost,
            "estimated_rows": self.estimated_rows,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanAlternative":
        return cls(
            description=data.get("description", ""),
            estimated_cost=data.get("estimated_cost"),
            estimated_rows=data.get("estimated_rows"),
            reason=data.get("reason", ""),
        )


@dataclass
class PlanNode:
    """One node of a compiled plan, as surfaced to API consumers.

    The tree is plain data — it serialises over protocol v2 (dicts,
    lists, scalars) via :meth:`to_dict` / :meth:`from_dict`, which is
    exactly what ``EXPLAIN (FORMAT JSON)`` emits.
    """

    kind: str
    description: str
    estimated_rows: Optional[float] = None
    estimated_cost: Optional[float] = None
    actual_rows: Optional[int] = None
    actual_ms: Optional[float] = None
    rejected: List[PlanAlternative] = field(default_factory=list)
    children: List["PlanNode"] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "description": self.description,
        }
        if self.estimated_rows is not None:
            data["estimated_rows"] = self.estimated_rows
        if self.estimated_cost is not None:
            data["estimated_cost"] = self.estimated_cost
        if self.actual_rows is not None:
            data["actual_rows"] = self.actual_rows
        if self.actual_ms is not None:
            data["actual_ms"] = self.actual_ms
        if self.rejected:
            data["rejected"] = [alt.to_dict() for alt in self.rejected]
        data["children"] = [child.to_dict() for child in self.children]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanNode":
        return cls(
            kind=data.get("kind", "?"),
            description=data.get("description", ""),
            estimated_rows=data.get("estimated_rows"),
            estimated_cost=data.get("estimated_cost"),
            actual_rows=data.get("actual_rows"),
            actual_ms=data.get("actual_ms"),
            rejected=[
                PlanAlternative.from_dict(alt)
                for alt in data.get("rejected", ())
            ],
            children=[
                cls.from_dict(child)
                for child in data.get("children", ())
            ],
        )

    # -- traversal helpers (handy in tests and tooling) ----------------
    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: str) -> Optional["PlanNode"]:
        for node in self.walk():
            if node.kind == kind:
                return node
        return None


def describe_operator(operator: Operator) -> str:
    """One-line description of a single operator."""
    if isinstance(operator, VirtualScan):
        return f"VirtualScan on {operator.table.name}"
    if isinstance(operator, SeqScan):
        return f"SeqScan on {operator.table.name}"
    if isinstance(operator, IndexScan):
        line = (
            f"IndexScan using {operator.index.name} "
            f"on {operator.table.name}"
        )
        if operator.description:
            line = f"{line} ({operator.description})"
        return line
    if isinstance(operator, SingleRow):
        return "Result (no table)"
    if isinstance(operator, Filter):
        if operator.description:
            return f"Filter ({operator.description})"
        return "Filter"
    if isinstance(operator, Project):
        return f"Project ({len(operator.items)} columns)"
    if isinstance(operator, NestedLoopJoin):
        return f"NestedLoopJoin ({operator.kind})"
    if isinstance(operator, HashJoin):
        kind = operator.kind
        if getattr(operator, "build", "right") == "left":
            kind = f"{kind}, build=left"
        line = f"HashJoin ({kind})"
        if operator.description:
            line = f"{line} ({operator.description})"
        return line
    if isinstance(operator, Sort):
        keys = len(operator.keys)
        return f"Sort ({keys} key{'s' if keys != 1 else ''})"
    if isinstance(operator, Limit):
        return "Limit"
    if isinstance(operator, Distinct):
        return "Distinct"
    if isinstance(operator, GroupAggregate):
        return (
            f"GroupAggregate ({len(operator.keys)} group keys, "
            f"{len(operator.aggregates)} aggregates)"
        )
    if isinstance(operator, UnionOp):
        label = operator.op.capitalize()
        return f"{label} ALL" if operator.all_rows else label
    return type(operator).__name__


def _coerce_alternative(alternative: Any) -> PlanAlternative:
    if isinstance(alternative, PlanAlternative):
        return alternative
    if isinstance(alternative, dict):
        return PlanAlternative.from_dict(alternative)
    return PlanAlternative(description=str(alternative))


def build_plan_tree(
    operator: Operator,
    instrumentation: Any = None,
) -> PlanNode:
    """Materialise the typed :class:`PlanNode` tree for an operator tree.

    Planner cost annotations (``estimated_rows`` / ``estimated_cost`` /
    ``rejected`` attributes the cost-based planner leaves on operators)
    are lifted onto the nodes; when ``instrumentation`` (a
    :class:`~repro.engine.executor.PlanInstrumentation`) is given,
    actual row counts and times from an executed plan ride along too.
    """
    node = PlanNode(
        kind=type(operator).__name__,
        description=describe_operator(operator),
        estimated_rows=getattr(operator, "estimated_rows", None),
        estimated_cost=getattr(operator, "estimated_cost", None),
        rejected=[
            _coerce_alternative(alt)
            for alt in getattr(operator, "rejected", ()) or ()
        ],
    )
    if instrumentation is not None:
        stats = instrumentation.stats_for(operator)
        if stats is not None:
            node.actual_rows = stats.rows_out
            node.actual_ms = stats.seconds * 1000.0
    node.children = [
        build_plan_tree(child, instrumentation)
        for child in operator_children(operator)
    ]
    return node


def format_plan_tree(node: PlanNode, indent: int = 0) -> List[str]:
    """Render a :class:`PlanNode` tree as indented lines, root first.

    This is the text EXPLAIN output; estimates appear only when the
    planner had statistics, actuals only for EXPLAIN ANALYZE, so plans
    over un-ANALYZEd tables render exactly as they always have.
    """
    line = "  " * indent + node.description
    if node.estimated_cost is not None:
        rows = node.estimated_rows
        rows_text = f" rows={rows:.0f}" if rows is not None else ""
        line = f"{line} (cost={node.estimated_cost:.1f}{rows_text})"
    if node.actual_rows is not None:
        time_ms = node.actual_ms if node.actual_ms is not None else 0.0
        line = (
            f"{line} (actual rows={node.actual_rows} "
            f"time={time_ms:.3f} ms)"
        )
    lines = [line]
    for alternative in node.rejected:
        alt_line = "  " * (indent + 1) + f"Rejected: {alternative.description}"
        if alternative.estimated_cost is not None:
            alt_line = f"{alt_line} (cost={alternative.estimated_cost:.1f})"
        if alternative.reason:
            alt_line = f"{alt_line} [{alternative.reason}]"
        lines.append(alt_line)
    for child in node.children:
        lines.extend(format_plan_tree(child, indent + 1))
    return lines


def format_plan(
    operator: Operator,
    indent: int = 0,
    annotate: Optional[Callable[[Operator], Optional[str]]] = None,
) -> List[str]:
    """Deprecated: render an operator tree directly as text lines.

    Kept for pre-PlanNode callers.  Use ``Session.explain(sql)`` for the
    typed tree, or :func:`build_plan_tree` + :func:`format_plan_tree`
    when you already hold an operator tree.  ``annotate`` may return a
    per-node suffix; None or an empty string leaves the line bare.
    """
    warnings.warn(
        "format_plan() is deprecated; use Session.explain() or "
        "build_plan_tree()/format_plan_tree()",
        DeprecationWarning,
        stacklevel=2,
    )
    return _format_operator(operator, indent, annotate)


def _format_operator(
    operator: Operator,
    indent: int = 0,
    annotate: Optional[Callable[[Operator], Optional[str]]] = None,
) -> List[str]:
    line = "  " * indent + describe_operator(operator)
    if annotate is not None:
        suffix = annotate(operator)
        if suffix:
            line = f"{line} ({suffix})"
    lines = [line]
    for child in operator_children(operator):
        lines.extend(_format_operator(child, indent + 1, annotate))
    return lines
