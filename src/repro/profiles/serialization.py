"""Profile serialization (`*.ser` files).

The paper serializes profiles with Java object serialization; the Python
analogue is pickle.  AST nodes, TypeInfos and customizations are all
plain dataclasses, so profiles round-trip losslessly — including the
pre-parsed statements a dialect customization carries.
"""

from __future__ import annotations

import io
import os
import pickle
from typing import Union

from repro import errors
from repro.profiles.model import Profile

__all__ = ["save_profile", "load_profile", "profile_to_bytes",
           "profile_from_bytes", "SER_SUFFIX"]

#: File suffix for serialized profiles, matching the paper's ``.ser``.
SER_SUFFIX = ".ser"


def profile_to_bytes(profile: Profile) -> bytes:
    """Serialise a profile to bytes."""
    try:
        return pickle.dumps(profile, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise errors.ProfileError(
            f"profile {profile.name!r} is not serialisable: {exc}"
        ) from exc


def profile_from_bytes(payload: bytes) -> Profile:
    """Deserialise a profile from bytes."""
    try:
        profile = pickle.loads(payload)
    except Exception as exc:
        raise errors.ProfileError(
            f"cannot deserialise profile: {exc}"
        ) from exc
    if not isinstance(profile, Profile):
        raise errors.ProfileError(
            f"payload is a {type(profile).__name__}, not a Profile"
        )
    return profile


def save_profile(profile: Profile, directory: str) -> str:
    """Write ``<directory>/<name>.ser``; returns the path."""
    path = os.path.join(directory, profile.name + SER_SUFFIX)
    with open(path, "wb") as handle:
        handle.write(profile_to_bytes(profile))
    return path


def load_profile(source: Union[str, bytes, io.IOBase]) -> Profile:
    """Load a profile from a path, bytes, or binary stream."""
    if isinstance(source, (bytes, bytearray)):
        return profile_from_bytes(bytes(source))
    if isinstance(source, str):
        if not os.path.exists(source):
            raise errors.ProfileError(
                f"profile file {source!r} does not exist"
            )
        with open(source, "rb") as handle:
            return profile_from_bytes(handle.read())
    return profile_from_bytes(source.read())
