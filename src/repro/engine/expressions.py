"""Expression compilation and evaluation.

The planner compiles every AST expression into a Python closure once per
statement; executing a row then costs only closure calls.  Compilation
also performs name resolution (binding column references to row positions,
with correlated references bound through an outer-scope chain) and type
inference, which the SQLJ ``describe`` protocol and typed iterators rely
on.

SQL three-valued logic is observed throughout: ``None`` is NULL/unknown.

SQLJ Part 2 hooks live here as well: ``NEW type(args)`` constructor calls,
``expr>>attr`` attribute reads and ``expr>>method(args)`` invocations,
including *static* members referenced through the type name and dynamic
dispatch on the runtime class (substitutability).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import errors
from repro.engine import ast
from repro.engine.catalog import MethodBinding, UserDefinedType
from repro.engine.functions import NULL_TOLERANT, lookup_builtin
from repro.sqltypes import (
    BooleanType,
    DoubleType,
    IntegerType,
    ObjectType,
    TypeDescriptor,
    VarCharType,
    common_supertype,
    compare_values,
    type_from_python_value,
)

__all__ = ["ColumnInfo", "RowShape", "Env", "Compiled", "ExpressionCompiler"]


@dataclass
class ColumnInfo:
    """One column of a row shape: optional table qualifier, name, type."""

    alias: Optional[str]
    name: str
    descriptor: Optional[TypeDescriptor]


class RowShape:
    """Describes the columns of rows flowing through an operator."""

    def __init__(self, columns: Sequence[ColumnInfo]) -> None:
        self.columns = list(columns)

    def __len__(self) -> int:
        return len(self.columns)

    def find(self, name: str, table: Optional[str] = None) -> Optional[int]:
        """Position of column ``name`` (optionally table-qualified).

        Returns None when absent; raises on ambiguity.
        """
        matches = [
            i
            for i, col in enumerate(self.columns)
            if col.name == name and (table is None or col.alias == table)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            qualifier = f"{table}." if table else ""
            raise errors.CatalogError(
                f"ambiguous column reference {qualifier}{name!r}"
            )
        return matches[0]

    def merge(self, other: "RowShape") -> "RowShape":
        return RowShape(self.columns + other.columns)

    def with_alias(self, alias: str) -> "RowShape":
        return RowShape(
            [ColumnInfo(alias, c.name, c.descriptor) for c in self.columns]
        )


class Env:
    """Runtime environment for one row: values, parameters, outer row."""

    __slots__ = ("row", "params", "outer", "session")

    def __init__(
        self,
        row: Sequence[Any],
        params: Sequence[Any],
        outer: Optional["Env"] = None,
        session: Any = None,
    ) -> None:
        self.row = row
        self.params = params
        self.outer = outer
        self.session = session


@dataclass
class Compiled:
    """A compiled expression: evaluator closure plus inferred type."""

    fn: Callable[[Env], Any]
    descriptor: Optional[TypeDescriptor]


class _OrderedByMethod:
    """Sort-key wrapper dispatching comparisons to an ordering method."""

    __slots__ = ("value", "method")

    def __init__(self, value: Any, method: str) -> None:
        self.value = value
        self.method = method

    def _cmp(self, other: "_OrderedByMethod") -> int:
        return int(getattr(self.value, self.method)(other.value))

    def __lt__(self, other: "_OrderedByMethod") -> bool:
        return self._cmp(other) < 0

    def __le__(self, other: "_OrderedByMethod") -> bool:
        return self._cmp(other) <= 0

    def __gt__(self, other: "_OrderedByMethod") -> bool:
        return self._cmp(other) > 0

    def __ge__(self, other: "_OrderedByMethod") -> bool:
        return self._cmp(other) >= 0

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderedByMethod) and \
            self._cmp(other) == 0

    def __hash__(self) -> int:  # pragma: no cover - not hashed in sorts
        return hash(id(self.value))


def _like_to_regex(pattern: str, escape: Optional[str]) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern into an anchored regex."""
    if escape is not None and len(escape) != 1:
        raise errors.DataError("LIKE escape must be a single character")
    out: List[str] = []
    i = 0
    while i < len(pattern):
        ch = pattern[i]
        if escape is not None and ch == escape:
            if i + 1 >= len(pattern):
                raise errors.DataError("dangling LIKE escape character")
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _and3(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return True


def _or3(left: Optional[bool], right: Optional[bool]) -> Optional[bool]:
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return False


_COMPARE_TESTS = {
    "=": lambda c: c == 0,
    "<>": lambda c: c != 0,
    "<": lambda c: c < 0,
    "<=": lambda c: c <= 0,
    ">": lambda c: c > 0,
    ">=": lambda c: c >= 0,
}


class ExpressionCompiler:
    """Compiles AST expressions against a row shape.

    Parameters
    ----------
    shape:
        Columns visible to unqualified references at this query level.
    session:
        The executing :class:`repro.engine.database.Session` (for catalog
        lookups, external function invocation and subquery planning).
    outer:
        Enclosing compiler for correlated subqueries, or None.
    allow_aggregates:
        When False (the default), encountering an AggregateCall raises —
        the planner replaces aggregates before compiling final projections.
    """

    def __init__(
        self,
        shape: RowShape,
        session: Any,
        outer: Optional["ExpressionCompiler"] = None,
        allow_aggregates: bool = False,
    ) -> None:
        self.shape = shape
        self.session = session
        self.outer = outer
        self.allow_aggregates = allow_aggregates

    # ------------------------------------------------------------------
    def compile(self, expr: ast.Expression) -> Compiled:
        method = getattr(self, f"_compile_{type(expr).__name__}", None)
        if method is None:
            raise errors.FeatureNotSupportedError(
                f"cannot compile expression node {type(expr).__name__}"
            )
        return method(expr)

    def compile_predicate(self, expr: ast.Expression) -> Callable[[Env], bool]:
        """Compile a WHERE/HAVING/ON predicate: unknown counts as false."""
        compiled = self.compile(expr)
        fn = compiled.fn
        return lambda env: fn(env) is True

    # -- leaves -----------------------------------------------------------
    def _compile_Literal(self, expr: ast.Literal) -> Compiled:
        value = expr.value
        descriptor = None if value is None else type_from_python_value(value)
        return Compiled(lambda env: value, descriptor)

    def _compile_Parameter(self, expr: ast.Parameter) -> Compiled:
        index = expr.index

        def fetch(env: Env) -> Any:
            params = env.params
            if params is None or index >= len(params):
                raise errors.DataError(
                    f"no value bound for parameter {index + 1}"
                )
            return params[index]

        return Compiled(fetch, None)

    def _compile_ColumnRef(self, expr: ast.ColumnRef) -> Compiled:
        position = self.shape.find(expr.name, expr.table)
        if position is not None:
            descriptor = self.shape.columns[position].descriptor
            return Compiled(
                lambda env, i=position: env.row[i], descriptor
            )
        # Correlated reference into an enclosing query?
        depth = 0
        scope = self.outer
        while scope is not None:
            depth += 1
            position = scope.shape.find(expr.name, expr.table)
            if position is not None:
                descriptor = scope.shape.columns[position].descriptor

                def fetch_outer(env: Env, d=depth, i=position) -> Any:
                    target = env
                    for _ in range(d):
                        if target.outer is None:
                            raise errors.DataError(
                                "missing outer row for correlated reference"
                            )
                        target = target.outer
                    return target.row[i]

                return Compiled(fetch_outer, descriptor)
            scope = scope.outer
        raise errors.UndefinedColumnError(
            f"column {expr.display()!r} does not exist in this scope"
        )

    # -- operators ----------------------------------------------------------
    def _compile_Unary(self, expr: ast.Unary) -> Compiled:
        operand = self.compile(expr.operand)
        fn = operand.fn
        if expr.op == "NOT":
            def negate(env: Env) -> Optional[bool]:
                value = fn(env)
                if value is None:
                    return None
                return not value
            return Compiled(negate, BooleanType())
        if expr.op == "-":
            def minus(env: Env) -> Any:
                value = fn(env)
                return None if value is None else -value
            return Compiled(minus, operand.descriptor)
        return Compiled(fn, operand.descriptor)  # unary +

    def _compile_Binary(self, expr: ast.Binary) -> Compiled:
        if expr.op == "AND":
            left, right = self.compile(expr.left).fn, self.compile(
                expr.right
            ).fn
            return Compiled(
                lambda env: _and3(left(env), right(env)), BooleanType()
            )
        if expr.op == "OR":
            left, right = self.compile(expr.left).fn, self.compile(
                expr.right
            ).fn
            return Compiled(
                lambda env: _or3(left(env), right(env)), BooleanType()
            )
        if expr.op in _COMPARE_TESTS:
            return self._compile_comparison(expr)
        return self._compile_arithmetic(expr)

    def _compile_comparison(self, expr: ast.Binary) -> Compiled:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        if (
            left.descriptor is not None
            and right.descriptor is not None
            and not left.descriptor.comparable_with(right.descriptor)
        ):
            raise errors.InvalidCastError(
                f"cannot compare {left.descriptor.sql_spelling()} with "
                f"{right.descriptor.sql_spelling()}"
            )
        test = _COMPARE_TESTS[expr.op]
        lf, rf = left.fn, right.fn

        # Part 2 ordering spec: route comparisons of UDT values through
        # the declared comparison method.
        ordering = self._udt_ordering(left.descriptor) or \
            self._udt_ordering(right.descriptor)
        if ordering is not None:
            kind, method_name = ordering
            if kind == "EQUALS" and expr.op not in ("=", "<>"):
                raise errors.InvalidCastError(
                    "type declares EQUALS ONLY ordering; relational "
                    f"operator {expr.op} is not available"
                )

            def compare_by_method(env: Env) -> Optional[bool]:
                lv, rv = lf(env), rf(env)
                if lv is None or rv is None:
                    return None
                try:
                    outcome = int(getattr(lv, method_name)(rv))
                except errors.SQLException:
                    raise
                except Exception as exc:
                    raise errors.ExternalRoutineError.from_python(
                        exc
                    ) from exc
                return test(outcome)

            return Compiled(compare_by_method, BooleanType())

        def compare(env: Env) -> Optional[bool]:
            result = compare_values(lf(env), rf(env))
            return None if result is None else test(result)

        return Compiled(compare, BooleanType())

    def _udt_ordering(
        self, descriptor: Optional[TypeDescriptor]
    ) -> Optional[Tuple[str, str]]:
        """(kind, python method) of the UDT's ordering spec, if any."""
        if not isinstance(descriptor, ObjectType):
            return None
        udt = self.session.catalog.types.get(descriptor.udt_name)
        if udt is None:
            return None
        return udt.find_ordering()

    def compile_sort_key(self, expr: ast.Expression):
        """Compile an ORDER BY key, honouring Part 2 FULL orderings."""
        compiled = self.compile(expr)
        ordering = self._udt_ordering(compiled.descriptor)
        if ordering is None:
            return compiled.fn
        kind, method_name = ordering
        if kind != "FULL":
            raise errors.InvalidCastError(
                "cannot ORDER BY a type with EQUALS ONLY ordering"
            )
        fn = compiled.fn

        def wrapped(env: Env):
            value = fn(env)
            if value is None:
                return None
            return _OrderedByMethod(value, method_name)

        return wrapped

    def _compile_arithmetic(self, expr: ast.Binary) -> Compiled:
        left = self.compile(expr.left)
        right = self.compile(expr.right)
        op = expr.op
        lf, rf = left.fn, right.fn
        dialect = getattr(self.session, "dialect", None)
        plus_concat = bool(
            dialect is not None and dialect.plus_concatenates_strings
        )

        descriptor: Optional[TypeDescriptor]
        if op == "||":
            descriptor = VarCharType(None)
        else:
            try:
                if left.descriptor is not None and right.descriptor is not None:
                    descriptor = common_supertype(
                        left.descriptor, right.descriptor
                    )
                    if op == "/" and isinstance(descriptor, IntegerType):
                        descriptor = IntegerType()
                else:
                    descriptor = None
            except errors.SQLException:
                if op == "+" and plus_concat:
                    descriptor = VarCharType(None)
                else:
                    raise

        def arith(env: Env) -> Any:
            lv, rv = lf(env), rf(env)
            if lv is None or rv is None:
                return None
            if op == "||":
                return str(lv) + str(rv)
            if isinstance(lv, str) or isinstance(rv, str):
                if op == "+" and plus_concat:
                    return str(lv) + str(rv)
                raise errors.InvalidCastError(
                    f"operator {op} not defined for strings"
                )
            try:
                if op == "+":
                    return lv + rv
                if op == "-":
                    return lv - rv
                if op == "*":
                    return lv * rv
                if op == "%":
                    if rv == 0:
                        raise errors.DivisionByZeroError("modulo by zero")
                    return lv % rv
                # division
                if rv == 0:
                    raise errors.DivisionByZeroError("division by zero")
                if isinstance(lv, int) and isinstance(rv, int):
                    quotient = abs(lv) // abs(rv)
                    return quotient if (lv >= 0) == (rv >= 0) else -quotient
                return lv / rv
            except TypeError:
                raise errors.InvalidCastError(
                    f"operator {op} not defined for "
                    f"{type(lv).__name__} and {type(rv).__name__}"
                ) from None

        return Compiled(arith, descriptor)

    # -- predicates -----------------------------------------------------------
    def _compile_IsNull(self, expr: ast.IsNull) -> Compiled:
        operand = self.compile(expr.operand).fn
        if expr.negated:
            return Compiled(
                lambda env: operand(env) is not None, BooleanType()
            )
        return Compiled(lambda env: operand(env) is None, BooleanType())

    def _compile_Between(self, expr: ast.Between) -> Compiled:
        operand = self.compile(expr.operand).fn
        low = self.compile(expr.low).fn
        high = self.compile(expr.high).fn
        negated = expr.negated

        def between(env: Env) -> Optional[bool]:
            value = operand(env)
            low_cmp = compare_values(value, low(env))
            high_cmp = compare_values(value, high(env))
            lower_ok = None if low_cmp is None else low_cmp >= 0
            upper_ok = None if high_cmp is None else high_cmp <= 0
            result = _and3(lower_ok, upper_ok)
            if result is None:
                return None
            return (not result) if negated else result

        return Compiled(between, BooleanType())

    def _compile_InList(self, expr: ast.InList) -> Compiled:
        operand = self.compile(expr.operand).fn
        items = [self.compile(item).fn for item in expr.items]
        negated = expr.negated

        def in_list(env: Env) -> Optional[bool]:
            value = operand(env)
            if value is None:
                return None
            saw_null = False
            for item in items:
                comparison = compare_values(value, item(env))
                if comparison is None:
                    saw_null = True
                elif comparison == 0:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return Compiled(in_list, BooleanType())

    def _compile_Like(self, expr: ast.Like) -> Compiled:
        operand = self.compile(expr.operand).fn
        pattern = self.compile(expr.pattern)
        escape = self.compile(expr.escape).fn if expr.escape else None
        negated = expr.negated

        # Fast path: constant pattern compiled once.
        constant_regex = None
        if isinstance(expr.pattern, ast.Literal) and expr.escape is None \
                and expr.pattern.value is not None:
            constant_regex = _like_to_regex(str(expr.pattern.value), None)

        def like(env: Env) -> Optional[bool]:
            value = operand(env)
            if value is None:
                return None
            if constant_regex is not None:
                regex = constant_regex
            else:
                pattern_value = pattern.fn(env)
                if pattern_value is None:
                    return None
                escape_value = escape(env) if escape else None
                regex = _like_to_regex(str(pattern_value), escape_value)
            matched = regex.match(str(value)) is not None
            return (not matched) if negated else matched

        return Compiled(like, BooleanType())

    def _compile_CaseExpr(self, expr: ast.CaseExpr) -> Compiled:
        operand = self.compile(expr.operand) if expr.operand else None
        whens: List[Tuple[Callable[[Env], Any], Callable[[Env], Any]]] = []
        result_types: List[TypeDescriptor] = []
        for when in expr.whens:
            condition = self.compile(when.condition)
            result = self.compile(when.result)
            if result.descriptor is not None:
                result_types.append(result.descriptor)
            whens.append((condition.fn, result.fn))
        else_fn = None
        if expr.else_result is not None:
            else_compiled = self.compile(expr.else_result)
            if else_compiled.descriptor is not None:
                result_types.append(else_compiled.descriptor)
            else_fn = else_compiled.fn

        descriptor: Optional[TypeDescriptor] = None
        for rt in result_types:
            descriptor = rt if descriptor is None else common_supertype(
                descriptor, rt
            )

        if operand is None:
            def searched(env: Env) -> Any:
                for condition, result in whens:
                    if condition(env) is True:
                        return result(env)
                return else_fn(env) if else_fn else None
            return Compiled(searched, descriptor)

        operand_fn = operand.fn

        def simple(env: Env) -> Any:
            value = operand_fn(env)
            for condition, result in whens:
                if compare_values(value, condition(env)) == 0:
                    return result(env)
            return else_fn(env) if else_fn else None

        return Compiled(simple, descriptor)

    def _compile_Cast(self, expr: ast.Cast) -> Compiled:
        from repro.sqltypes.values import cast_value

        operand = self.compile(expr.operand).fn
        descriptor = self.session.catalog.resolve_type(expr.target_type)
        return Compiled(
            lambda env: cast_value(operand(env), descriptor), descriptor
        )

    # -- calls ---------------------------------------------------------------
    def _compile_FunctionCall(self, expr: ast.FunctionCall) -> Compiled:
        args = [self.compile(a) for a in expr.args]
        arg_fns = [a.fn for a in args]
        name = expr.name.lower()

        if name == "current_user":
            return Compiled(
                lambda env: self.session.user, VarCharType(None)
            )

        builtin = lookup_builtin(name)
        if builtin is not None:
            tolerant = name in NULL_TOLERANT

            def call_builtin(env: Env) -> Any:
                values = [fn(env) for fn in arg_fns]
                if not tolerant and any(v is None for v in values):
                    return None
                return builtin(*values)

            return Compiled(call_builtin, _builtin_result_type(name, args))

        # SQLJ Part 1 external function.
        routine = self.session.catalog.find_function(name)
        if routine is None:
            raise errors.UndefinedRoutineError(
                f"function {expr.name!r} does not exist"
            )
        if len(routine.params) != len(arg_fns):
            raise errors.SQLSyntaxError(
                f"function {expr.name!r} takes {len(routine.params)} "
                f"arguments, got {len(arg_fns)}"
            )
        self.session.check_execute_privilege(routine)
        session = self.session

        def call_function(env: Env) -> Any:
            values = [fn(env) for fn in arg_fns]
            return session.invoke_function(routine, values)

        return Compiled(call_function, routine.returns)

    # -- SQLJ Part 2 -----------------------------------------------------------
    def _compile_NewObject(self, expr: ast.NewObject) -> Compiled:
        udt = self.session.catalog.get_type(expr.type_name.lower())
        self.session.check_usage_privilege(udt)
        args = [self.compile(a) for a in expr.args]
        constructor = _select_constructor(udt, len(args))
        arg_fns = [a.fn for a in args]
        param_descriptors = constructor.param_descriptors
        python_class = udt.python_class

        def construct(env: Env) -> Any:
            values = [
                descriptor.coerce(fn(env)) if descriptor is not None else fn(env)
                for fn, descriptor in zip(arg_fns, param_descriptors)
            ]
            try:
                return python_class(*values)
            except errors.SQLException:
                raise
            except Exception as exc:
                raise errors.ExternalRoutineError.from_python(exc) from exc

        return Compiled(construct, udt.descriptor())

    def _static_udt_target(
        self, expr: ast.Expression
    ) -> Optional[UserDefinedType]:
        """If ``expr`` is a bare name that is *not* a visible column but
        *is* a UDT name, return the UDT (static member access)."""
        if not isinstance(expr, ast.ColumnRef) or expr.table is not None:
            return None
        if self.shape.find(expr.name) is not None:
            return None
        scope = self.outer
        while scope is not None:
            if scope.shape.find(expr.name) is not None:
                return None
            scope = scope.outer
        return self.session.catalog.types.get(expr.name)

    def _compile_AttributeRef(self, expr: ast.AttributeRef) -> Compiled:
        static_udt = self._static_udt_target(expr.target)
        if static_udt is not None:
            binding = static_udt.find_attribute(expr.attribute)
            if binding is None or not binding.static:
                raise errors.UndefinedColumnError(
                    f"type {static_udt.name!r} has no static attribute "
                    f"{expr.attribute!r}"
                )
            python_class = static_udt.python_class
            field = binding.field_name
            return Compiled(
                lambda env: getattr(python_class, field), binding.descriptor
            )

        target = self.compile(expr.target)
        attribute = expr.attribute
        static_descriptor = self._attribute_descriptor(
            target.descriptor, attribute
        )
        session = self.session

        def read(env: Env) -> Any:
            obj = target.fn(env)
            if obj is None:
                return None
            binding = _find_instance_attribute(session, obj, attribute)
            return getattr(obj, binding.field_name)

        return Compiled(read, static_descriptor)

    def _attribute_descriptor(
        self, descriptor: Optional[TypeDescriptor], attribute: str
    ) -> Optional[TypeDescriptor]:
        if not isinstance(descriptor, ObjectType):
            return None
        udt = self.session.catalog.types.get(descriptor.udt_name)
        if udt is None:
            return None
        binding = udt.find_attribute(attribute)
        if binding is None:
            raise errors.UndefinedColumnError(
                f"type {udt.name!r} has no attribute {attribute!r}"
            )
        return binding.descriptor

    def _compile_MethodCall(self, expr: ast.MethodCall) -> Compiled:
        args = [self.compile(a) for a in expr.args]
        arg_fns = [a.fn for a in args]
        session = self.session

        static_udt = self._static_udt_target(expr.target)
        if static_udt is not None:
            binding = static_udt.find_method(expr.method)
            if binding is None or not binding.static:
                raise errors.UndefinedRoutineError(
                    f"type {static_udt.name!r} has no static method "
                    f"{expr.method!r}"
                )
            python_class = static_udt.python_class
            return Compiled(
                _make_method_invoker(
                    lambda env: python_class, binding, arg_fns, static=True
                ),
                binding.returns,
            )

        target = self.compile(expr.target)
        method_name = expr.method
        returns = self._method_descriptor(target.descriptor, method_name)
        target_fn = target.fn

        def invoke(env: Env) -> Any:
            obj = target_fn(env)
            if obj is None:
                return None
            binding = _find_instance_method(session, obj, method_name)
            values = [
                d.coerce(fn(env)) if d is not None else fn(env)
                for fn, d in zip(arg_fns, binding.param_descriptors)
            ]
            # Value semantics: the receiver may be a *stored* object and
            # the method may mutate it; invoke on a copy so queries can
            # never change table contents.
            import copy

            obj = copy.deepcopy(obj)
            try:
                result = getattr(obj, binding.python_name)(*values)
            except errors.SQLException:
                raise
            except Exception as exc:
                raise errors.ExternalRoutineError.from_python(exc) from exc
            if binding.returns is not None:
                result = binding.returns.coerce(result)
            return result

        return Compiled(invoke, returns)

    def _method_descriptor(
        self, descriptor: Optional[TypeDescriptor], method: str
    ) -> Optional[TypeDescriptor]:
        if not isinstance(descriptor, ObjectType):
            return None
        udt = self.session.catalog.types.get(descriptor.udt_name)
        if udt is None:
            return None
        binding = udt.find_method(method)
        if binding is None:
            raise errors.UndefinedRoutineError(
                f"type {udt.name!r} has no method {method!r}"
            )
        return binding.returns

    # -- aggregates and subqueries ----------------------------------------------
    def _compile_AggregateCall(self, expr: ast.AggregateCall) -> Compiled:
        raise errors.SQLSyntaxError(
            f"aggregate {expr.name} is not allowed in this context"
        )

    def _compile_ScalarSubquery(self, expr: ast.ScalarSubquery) -> Compiled:
        plan, shape = self._plan_subquery(expr.query)
        if len(shape) != 1:
            raise errors.SQLSyntaxError(
                "scalar subquery must return exactly one column"
            )
        session = self.session

        def scalar(env: Env) -> Any:
            rows = plan.run_correlated(session, env)
            if not rows:
                return None
            if len(rows) > 1:
                raise errors.CardinalityError(
                    "scalar subquery returned more than one row"
                )
            return rows[0][0]

        return Compiled(scalar, shape.columns[0].descriptor)

    def _compile_Exists(self, expr: ast.Exists) -> Compiled:
        plan, _shape = self._plan_subquery(expr.query)
        negated = expr.negated
        session = self.session

        def exists(env: Env) -> bool:
            found = bool(plan.run_correlated(session, env, limit=1))
            return (not found) if negated else found

        return Compiled(exists, BooleanType())

    def _compile_InSubquery(self, expr: ast.InSubquery) -> Compiled:
        operand = self.compile(expr.operand).fn
        plan, shape = self._plan_subquery(expr.subquery)
        if len(shape) != 1:
            raise errors.SQLSyntaxError(
                "IN subquery must return exactly one column"
            )
        negated = expr.negated
        session = self.session

        def in_subquery(env: Env) -> Optional[bool]:
            value = operand(env)
            if value is None:
                return None
            saw_null = False
            for row in plan.run_correlated(session, env):
                comparison = compare_values(value, row[0])
                if comparison is None:
                    saw_null = True
                elif comparison == 0:
                    return False if negated else True
            if saw_null:
                return None
            return True if negated else False

        return Compiled(in_subquery, BooleanType())

    def _plan_subquery(self, query: ast.Node):
        from repro.engine import planner  # local import: cycle avoidance

        return planner.plan_query(query, self.session, outer=self)


def _builtin_result_type(
    name: str, args: List[Compiled]
) -> Optional[TypeDescriptor]:
    """Best-effort result-type inference for built-in functions."""
    string_result = {
        "upper", "lower", "substring", "substr", "trim", "ltrim", "rtrim",
        "replace", "concat",
    }
    int_result = {
        "length", "char_length", "character_length", "position", "floor",
        "ceiling", "ceil", "sign",
    }
    double_result = {"power", "sqrt"}
    if name in string_result:
        return VarCharType(None)
    if name in int_result:
        return IntegerType()
    if name in double_result:
        return DoubleType()
    if name in ("abs", "mod", "round", "coalesce", "nullif") and args:
        return args[0].descriptor
    return None


def _select_constructor(udt: UserDefinedType, arity: int) -> MethodBinding:
    for constructor in udt.constructors:
        if len(constructor.param_descriptors) == arity:
            return constructor
    raise errors.UndefinedRoutineError(
        f"type {udt.name!r} has no {arity}-argument constructor"
    )


def _runtime_udt(session: Any, obj: Any) -> UserDefinedType:
    udt = session.catalog.type_for_class(type(obj))
    if udt is None:
        raise errors.UndefinedTypeError(
            f"class {type(obj).__name__!r} is not registered as a SQL type"
        )
    return udt


def _find_instance_attribute(session: Any, obj: Any, attribute: str):
    udt = _runtime_udt(session, obj)
    binding = udt.find_attribute(attribute)
    if binding is None:
        raise errors.UndefinedColumnError(
            f"type {udt.name!r} has no attribute {attribute!r}"
        )
    return binding


def _find_instance_method(session: Any, obj: Any, method: str):
    udt = _runtime_udt(session, obj)
    binding = udt.find_method(method)
    if binding is None:
        raise errors.UndefinedRoutineError(
            f"type {udt.name!r} has no method {method!r}"
        )
    return binding


def _make_method_invoker(target_fn, binding: MethodBinding, arg_fns, static):
    def invoke(env: Env) -> Any:
        target = target_fn(env)
        values = [
            d.coerce(fn(env)) if d is not None else fn(env)
            for fn, d in zip(arg_fns, binding.param_descriptors)
        ]
        try:
            result = getattr(target, binding.python_name)(*values)
        except errors.SQLException:
            raise
        except Exception as exc:
            raise errors.ExternalRoutineError.from_python(exc) from exc
        if binding.returns is not None:
            result = binding.returns.coerce(result)
        return result

    return invoke
