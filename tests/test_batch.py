"""Bulk-load / batch execution fast path.

One parse, one plan, one WAL record, one round trip per batch:

* engine — ``Session.execute_batch`` runs every parameter row in one
  transaction through the bulk-insert path (all row versions under one
  ``mutation_lock`` acquisition, unique checks amortised per batch);
* durability — a batch costs exactly one logical WAL record plus the
  commit marker and one fsync barrier, and recovers all-or-nothing;
* dbapi — ``Cursor.executemany`` and the JDBC batch forms
  (``Statement.execute_batch``, ``PreparedStatement.add_batch``) ride
  the same path with atomic partial-failure semantics;
* wire — a remote batch is one ``MSG_EXECUTE_BATCH`` round trip;
* translator — ``#sql`` clauses in pure-bind loops compile to one
  ``sqlj.execute_batch`` call;
* differential — outcomes match ``sqlite3.executemany`` row for row.
"""

from __future__ import annotations

import importlib
import io
import json
import os
import sqlite3
import sys

import pytest

import repro
from repro import ConnectionContext, Database, errors
from repro.engine.durability import WAL_FILENAME, open_database
from repro.engine.wal import KIND_BATCH, scan_records
from repro.dbapi.statement import BatchUpdateError
from repro.observability import metrics as _metrics
from repro.observability import slowlog
from repro.testing.faults import FaultPlan


ROWS = [(n, n * 10) for n in range(1, 101)]


def fresh_session(name):
    return Database(name=name).create_session(autocommit=True)


def counters():
    return _metrics.snapshot()["counters"]


# ---------------------------------------------------------------------------
# engine semantics
# ---------------------------------------------------------------------------
class TestEngineBatch:
    def test_insert_batch_counts_and_state(self):
        s = fresh_session("eb1")
        s.execute("create table t (k int, v int)")
        counts = s.execute_batch(
            "insert into t values (?, ?)", [list(r) for r in ROWS]
        )
        assert counts == [1] * len(ROWS)
        [[n, total]] = s.execute("select count(*), sum(v) from t").rows
        assert (n, total) == (len(ROWS), sum(v for _k, v in ROWS))

    def test_multi_row_values_counts(self):
        s = fresh_session("eb2")
        s.execute("create table t (k int, v int)")
        counts = s.execute_batch(
            "insert into t values (?, ?), (?, ?)",
            [[1, 10, 2, 20], [3, 30, 4, 40]],
        )
        assert counts == [2, 2]
        assert s.execute("select count(*) from t").rows == [[4]]

    def test_update_and_delete_batches(self):
        s = fresh_session("eb3")
        s.execute("create table t (k int, v int)")
        s.execute_batch(
            "insert into t values (?, ?)", [[1, 1], [2, 2], [3, 3]]
        )
        counts = s.execute_batch(
            "update t set v = ? where k = ?", [[10, 1], [20, 2], [99, 7]]
        )
        assert counts == [1, 1, 0]
        counts = s.execute_batch(
            "delete from t where k = ?", [[3], [4]]
        )
        assert counts == [1, 0]
        assert sorted(s.execute("select k, v from t").rows) == [
            [1, 10], [2, 20]
        ]

    def test_unique_violation_rolls_back_whole_batch(self):
        s = fresh_session("eb4")
        s.execute("create table t (k int unique, v int)")
        s.execute("insert into t values (50, 0)")
        with pytest.raises(errors.UniqueViolationError):
            s.execute_batch(
                "insert into t values (?, ?)",
                [[1, 1], [2, 2], [50, 3], [4, 4]],
            )
        assert s.execute("select k, v from t").rows == [[50, 0]]

    def test_intra_batch_duplicate_detected(self):
        s = fresh_session("eb5")
        s.execute("create table t (k int unique)")
        with pytest.raises(errors.UniqueViolationError):
            s.execute_batch(
                "insert into t values (?)", [[1], [2], [1]]
            )
        assert s.execute("select count(*) from t").rows == [[0]]

    def test_unique_allows_multiple_nulls_in_batch(self):
        s = fresh_session("eb6")
        s.execute("create table t (k int unique)")
        counts = s.execute_batch(
            "insert into t values (?)", [[None], [None], [1]]
        )
        assert counts == [1, 1, 1]

    def test_empty_batch(self):
        s = fresh_session("eb7")
        s.execute("create table t (k int)")
        assert s.execute_batch("insert into t values (?)", []) == []

    def test_queries_rejected(self):
        s = fresh_session("eb8")
        s.execute("create table t (k int)")
        with pytest.raises(errors.FeatureNotSupportedError):
            s.execute_batch("select * from t", [[]])

    def test_explicit_transaction_batch_visible_after_commit(self):
        db = Database(name="eb9")
        writer = db.create_session(autocommit=False)
        reader = db.create_session(autocommit=True)
        writer.execute("create table t (k int)")
        writer.commit()
        writer.execute_batch("insert into t values (?)", [[1], [2]])
        assert reader.execute("select count(*) from t").rows == [[0]]
        writer.commit()
        assert reader.execute("select count(*) from t").rows == [[2]]

    def test_explicit_transaction_batch_rolls_back(self):
        db = Database(name="eb10")
        s = db.create_session(autocommit=False)
        s.execute("create table t (k int)")
        s.commit()
        s.execute_batch("insert into t values (?)", [[1], [2]])
        s.rollback()
        assert s.execute("select count(*) from t").rows == [[0]]
        s.rollback()

    def test_secondary_index_consistent_after_batch(self):
        s = fresh_session("eb11")
        s.execute("create table t (k int, v int)")
        s.execute("create index t_k on t (k)")
        s.execute_batch(
            "insert into t values (?, ?)", [[n, n] for n in range(50)]
        )
        assert s.execute(
            "select v from t where k = 37"
        ).rows == [[37]]
        with pytest.raises(errors.ReproError):
            s.execute_batch(
                "insert into t values (?, ?)", [[100, 1], ["boom"], [101]]
            )
        # the failed batch left no index entries behind
        assert s.execute("select v from t where k = 100").rows == []


# ---------------------------------------------------------------------------
# durability: one WAL record, one fsync, all-or-nothing recovery
# ---------------------------------------------------------------------------
class TestBatchDurability:
    def test_one_wal_record_one_fsync_per_batch(self, tmp_path):
        db = open_database(str(tmp_path), checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        before = counters()
        s.execute_batch(
            "INSERT INTO t VALUES (?, ?)", [[n, n] for n in range(1000)]
        )
        after = counters()
        # one KIND_BATCH record + one commit marker, one fsync barrier
        assert after["wal.records"] - before.get("wal.records", 0) == 2
        assert after["wal.fsyncs"] - before.get("wal.fsyncs", 0) == 1
        # the on-disk log holds exactly one logical record for the batch
        wal_path = os.path.join(str(tmp_path), WAL_FILENAME)
        with open(wal_path, "rb") as handle:
            records, _valid = scan_records(handle.read())
        kinds = [r.kind for r in records]
        assert kinds.count(KIND_BATCH) == 1
        db.close()

    def test_batch_metrics_counters(self):
        s = fresh_session("bm1")
        s.execute("create table t (k int)")
        before = counters()
        s.execute_batch("insert into t values (?)", [[1], [2], [3]])
        after = counters()
        assert after["batch.executed"] - before.get("batch.executed", 0) \
            == 1
        assert after["batch.rows"] - before.get("batch.rows", 0) == 3

    def test_recovery_replays_batch(self, tmp_path):
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute_batch(
            "INSERT INTO t VALUES (?, ?)", [[n, n * 2] for n in range(200)]
        )
        del s, db  # crash: no close, no checkpoint

        db2 = open_database(d)
        s2 = db2.create_session(autocommit=True)
        [[n, total]] = s2.execute("SELECT count(*), sum(v) FROM t").rows
        assert (n, total) == (200, sum(n * 2 for n in range(200)))
        db2.close()

    @pytest.mark.parametrize("site", ["wal.append", "wal.write"])
    def test_crash_during_batch_append_is_all_or_nothing(
        self, tmp_path, site
    ):
        """Kill the process mid-batch-WAL-append: recovery must show
        either every row of the batch or none of them — never a prefix."""
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (0, 0)")  # acked before the fault

        plan = FaultPlan(seed=17)
        plan.inject(site, error=errors.OperatorExecutionError, times=1)
        with plan.armed():
            with pytest.raises(errors.ReproError):
                s.execute_batch(
                    "INSERT INTO t VALUES (?, ?)",
                    [[n, n] for n in range(1, 500)],
                )
        assert plan.fired[site] == 1
        del s, db  # crash

        db2 = open_database(d)
        s2 = db2.create_session(autocommit=True)
        rows = s2.execute("SELECT k FROM t ORDER BY k").rows
        assert rows == [[0]]  # acked prefix only; no partial batch
        db2.close()

    def test_torn_batch_record_recovers_to_nothing(self, tmp_path):
        """Truncate the WAL inside the batch record: the torn tail is
        discarded and no row of the batch survives."""
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT)")
        wal_path = os.path.join(d, WAL_FILENAME)
        base = os.path.getsize(wal_path)
        s.execute_batch(
            "INSERT INTO t VALUES (?)", [[n] for n in range(300)]
        )
        del s, db  # crash

        # tear the batch record (and everything after it) mid-frame
        with open(wal_path, "r+b") as handle:
            handle.truncate(base + 40)

        db2 = open_database(d)
        s2 = db2.create_session(autocommit=True)
        assert s2.execute("SELECT count(*) FROM t").rows == [[0]]
        db2.close()


# ---------------------------------------------------------------------------
# dbapi: cursor + JDBC batch forms
# ---------------------------------------------------------------------------
class TestDbapiBatch:
    def _connection(self, name):
        return repro.DriverManager.get_connection(f"pydbc:standard:{name}")

    def test_cursor_executemany(self):
        conn = self._connection("db1")
        cur = conn.cursor()
        cur.execute("create table t (k int, v int)")
        cur.executemany(
            "insert into t values (?, ?)", [(n, n) for n in range(25)]
        )
        assert cur.rowcount == 25
        cur.execute("select count(*) from t")
        assert cur.fetchone() == (25,)
        assert cur.fetchone() is None

    def test_cursor_module_attributes(self):
        from repro import dbapi

        assert dbapi.paramstyle == "qmark"
        assert dbapi.apilevel == "2.0"

    def test_prepared_add_batch_execute_batch(self):
        conn = self._connection("db2")
        conn.create_statement().execute_update(
            "create table t (k int, v int)"
        )
        prepared = conn.prepare_statement("insert into t values (?, ?)")
        for n in range(10):
            prepared.set_int(1, n)
            prepared.set_int(2, n * 2)
            prepared.add_batch()
        counts = prepared.execute_batch()
        assert counts == [1] * 10
        assert conn.session.execute("select sum(v) from t").rows == [
            [sum(n * 2 for n in range(10))]
        ]

    def test_prepared_batch_failure_is_atomic_with_empty_counts(self):
        conn = self._connection("db3")
        statement = conn.create_statement()
        statement.execute_update("create table t (k int unique)")
        prepared = conn.prepare_statement("insert into t values (?)")
        for value in (1, 2, 2, 3):
            prepared.set_int(1, value)
            prepared.add_batch()
        with pytest.raises(BatchUpdateError) as excinfo:
            prepared.execute_batch()
        assert excinfo.value.update_counts == []
        assert conn.session.execute("select count(*) from t").rows == [[0]]
        assert conn.autocommit  # restored after the rollback

    def test_statement_batch_rolls_back_whole_batch(self):
        conn = self._connection("db4")
        statement = conn.create_statement()
        statement.execute_update("create table t (k int unique)")
        statement.add_batch("insert into t values (900)")
        statement.add_batch("insert into t values (901)")
        statement.add_batch("insert into t values (900)")  # duplicate
        with pytest.raises(BatchUpdateError) as excinfo:
            statement.execute_batch()
        # counts are informational: two statements succeeded before the
        # failure, but the transaction rolled back as one unit
        assert excinfo.value.update_counts == [1, 1]
        assert conn.session.execute("select count(*) from t").rows == [[0]]
        assert conn.autocommit

    def test_statement_batch_in_explicit_transaction(self):
        conn = self._connection("db5")
        statement = conn.create_statement()
        statement.execute_update("create table t (k int)")
        conn.set_auto_commit(False)
        statement.add_batch("insert into t values (1)")
        statement.add_batch("insert into t values (2)")
        assert statement.execute_batch() == [1, 1]
        conn.rollback()  # caller owns the transaction: batch undone
        assert conn.session.execute("select count(*) from t").rows == [[0]]
        conn.rollback()


# ---------------------------------------------------------------------------
# differential vs sqlite3.executemany
# ---------------------------------------------------------------------------
class TestSqliteDifferential:
    SCHEMA = "CREATE TABLE t (k INT UNIQUE, v INT)"
    INSERT = "INSERT INTO t VALUES (?, ?)"

    def _both(self, name):
        repro_session = fresh_session(name)
        repro_session.execute(self.SCHEMA)
        lite = sqlite3.connect(":memory:")
        lite.execute(self.SCHEMA)
        return repro_session, lite

    def _states(self, repro_session, lite):
        ours = sorted(
            tuple(r)
            for r in repro_session.execute("SELECT k, v FROM t").rows
        )
        theirs = sorted(lite.execute("SELECT k, v FROM t").fetchall())
        return ours, theirs

    def test_same_rows_same_state(self):
        repro_session, lite = self._both("sd1")
        rows = [(n, n * 3) for n in range(40)]
        repro_session.execute_batch(self.INSERT, [list(r) for r in rows])
        with lite:
            lite.executemany(self.INSERT, rows)
        ours, theirs = self._states(repro_session, lite)
        assert ours == theirs

    def test_same_constraint_violation_same_final_state(self):
        repro_session, lite = self._both("sd2")
        rows = [(1, 1), (2, 2), (1, 3), (4, 4)]  # duplicate key 1
        with pytest.raises(errors.UniqueViolationError):
            repro_session.execute_batch(
                self.INSERT, [list(r) for r in rows]
            )
        with pytest.raises(sqlite3.IntegrityError):
            with lite:  # transactional: rolls back on error
                lite.executemany(self.INSERT, rows)
        ours, theirs = self._states(repro_session, lite)
        assert ours == theirs == []

    def test_same_update_effects(self):
        repro_session, lite = self._both("sd3")
        seed = [(n, 0) for n in range(10)]
        repro_session.execute_batch(self.INSERT, [list(r) for r in seed])
        with lite:
            lite.executemany(self.INSERT, seed)
        update = "UPDATE t SET v = ? WHERE k = ?"
        params = [(n * 7, n) for n in range(0, 20, 2)]
        repro_session.execute_batch(update, [list(r) for r in params])
        with lite:
            lite.executemany(update, params)
        ours, theirs = self._states(repro_session, lite)
        assert ours == theirs


# ---------------------------------------------------------------------------
# wire: one MSG_EXECUTE_BATCH round trip
# ---------------------------------------------------------------------------
class TestRemoteBatch:
    def _server(self, **kwargs):
        from repro.server import ReproServer

        return ReproServer(**kwargs).start_background()

    def test_bulk_ingest_is_one_round_trip(self):
        srv = self._server()
        try:
            conn = repro.connect(f"repro://127.0.0.1:{srv.port}/rb1")
            cur = conn.cursor()
            cur.execute("create table t (k int, v int)")
            rows = [(n, n) for n in range(10_000)]
            before = counters().get("remote.executions", 0)
            cur.executemany("insert into t values (?, ?)", rows)
            delta = counters().get("remote.executions", 0) - before
            assert delta == 1  # the whole batch crossed in one frame
            assert cur.rowcount == 10_000
            cur.execute("select count(*) from t")
            assert cur.fetchone() == (10_000,)
            conn.close()
        finally:
            srv.stop_background()
            repro.registry.clear()

    def test_remote_batch_failure_is_atomic(self):
        srv = self._server()
        try:
            conn = repro.connect(f"repro://127.0.0.1:{srv.port}/rb2")
            statement = conn.create_statement()
            statement.execute_update("create table t (k int unique)")
            prepared = conn.prepare_statement("insert into t values (?)")
            for value in (7, 8, 7):
                prepared.set_int(1, value)
                prepared.add_batch()
            with pytest.raises(BatchUpdateError):
                prepared.execute_batch()
            cur = conn.cursor()
            cur.execute("select count(*) from t")
            assert cur.fetchone() == (0,)
            conn.close()
        finally:
            srv.stop_background()
            repro.registry.clear()


# ---------------------------------------------------------------------------
# observability: one statements entry, slow-log batch shape
# ---------------------------------------------------------------------------
class TestBatchObservability:
    def test_statements_view_one_call_with_row_total(self):
        s = fresh_session("ob1")
        s.execute("create table t (k int, v int)")
        s.execute_batch(
            "insert into t values (?, ?)", [[n, n] for n in range(32)]
        )
        result = s.execute(
            "select calls, rows_returned from repro_stats.statements "
            "where statement = 'INSERT INTO t VALUES ( ? , ? )'"
        )
        [[calls, rows]] = result.rows
        assert calls == 1  # one batch, one statistics entry
        assert rows == 32  # ...carrying the whole batch's row count

    def test_slowlog_records_batch_size_and_per_row_mean(self):
        out = io.StringIO()
        slowlog.configure(0.0, stream=out)
        try:
            s = fresh_session("ob2")
            s.execute("create table t (k int)")
            s.execute_batch(
                "insert into t values (?)", [[n] for n in range(8)]
            )
        finally:
            slowlog.configure(None)
        records = [
            json.loads(line) for line in out.getvalue().splitlines()
        ]
        batch_records = [r for r in records if r.get("batch_rows")]
        assert batch_records, records
        record = batch_records[-1]
        assert record["batch_rows"] == 8
        assert record["per_row_ms"] == pytest.approx(
            record["duration_ms"] / 8
        )


# ---------------------------------------------------------------------------
# translator: pure-bind loops become one execute_batch call
# ---------------------------------------------------------------------------
BATCH_SOURCE = '''
def load(rows):
    for row in rows:
        name, year = row
        #sql { INSERT INTO people VALUES (:name, :year) };
    return True

def load_guarded(rows):
    for row in rows:
        name, year = row
        if year > 0:
            #sql { INSERT INTO people VALUES (:name, :year) };
    return True

def load_with_else(rows):
    for name, year in rows:
        #sql { INSERT INTO people VALUES (:name, :year) };
    else:
        pass
    return True
'''


class TestTranslatorBatching:
    def _exemplar(self):
        database = Database(name="trb")
        session = database.create_session(autocommit=True)
        session.execute(
            "create table people (name varchar(50), year int)"
        )
        return database, session

    def _translate(self, tmp_path, database, source, module_name):
        from repro.profiles.serialization import save_profile
        from repro.translator import TranslationOptions, Translator

        options = TranslationOptions(exemplar=database)
        result = Translator(options).translate_source(source, module_name)
        module_path = os.path.join(str(tmp_path), module_name + ".py")
        with open(module_path, "w") as handle:
            handle.write(result.python_source)
        for profile in result.profiles:
            save_profile(profile, str(tmp_path))
        return result

    def test_pure_bind_loop_compiles_to_execute_batch(self, tmp_path):
        database, _session = self._exemplar()
        result = self._translate(
            tmp_path, database, BATCH_SOURCE, "trb_gen"
        )
        source = result.python_source
        assert source.count("execute_batch") == 1
        # the guarded loop and the for/else loop keep per-row execution
        assert source.count("_sqlj_rt.execute(") == 2

    def test_batched_loop_runs_and_loads(self, tmp_path):
        database, session = self._exemplar()
        self._translate(tmp_path, database, BATCH_SOURCE, "trb_mod")
        context = ConnectionContext(database)
        ConnectionContext.set_default_context(context)
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("trb_mod")
            module = importlib.reload(module)
            module.load([("A", 1), ("B", 2), ("C", 3)])
            module.load_guarded([("D", 4), ("E", -1)])
            module.load_with_else([("F", 6)])
        finally:
            sys.path.remove(str(tmp_path))
            ConnectionContext.set_default_context(None)
        rows = session.execute(
            "select name, year from people order by year"
        ).rows
        assert rows == [
            ["A", 1], ["B", 2], ["C", 3], ["D", 4], ["F", 6]
        ]

    def test_batched_loop_failure_is_atomic(self, tmp_path):
        database = Database(name="trb2")
        session = database.create_session(autocommit=True)
        session.execute("create table people (name varchar(50) unique)")
        source = (
            "def load(rows):\n"
            "    for name in rows:\n"
            "        #sql { INSERT INTO people VALUES (:name) };\n"
            "    return True\n"
        )
        self._translate(tmp_path, database, source, "trb_atomic")
        context = ConnectionContext(database)
        ConnectionContext.set_default_context(context)
        sys.path.insert(0, str(tmp_path))
        try:
            module = importlib.import_module("trb_atomic")
            module = importlib.reload(module)
            with pytest.raises(errors.UniqueViolationError):
                module.load(["x", "y", "x"])
        finally:
            sys.path.remove(str(tmp_path))
            ConnectionContext.set_default_context(None)
        assert session.execute(
            "select count(*) from people"
        ).rows == [[0]]
