"""The ``sqlj`` system procedures.

Registered into every database at bootstrap:

* ``sqlj.install_par(url, par_name)`` — read an archive, register all of
  its modules (loading each to reflect its contents), and implicitly run
  the deployment descriptor's INSTALL actions.
* ``sqlj.remove_par(par_name)`` — run the descriptor's REMOVE actions and
  uninstall the archive.
* ``sqlj.replace_par(url, par_name)`` — swap an installed archive's
  contents in place, re-resolving every routine bound to it (the paper
  lists replace/refresh as follow-on facilities; it is implemented here).
* ``sqlj.alter_module_path(par_name, path)`` — set the archive's SQL
  path used for cross-archive name resolution.

System procedures execute with the *caller's* rights (installation and
descriptor actions are performed by, and owned by, the installing user).
"""

from __future__ import annotations

from repro import errors
from repro.engine.catalog import InstalledPar, Routine, RoutineParam
from repro.engine.database import Database, Session
from repro.procedures.archives import read_par
from repro.procedures.descriptors import DeploymentDescriptor
from repro.procedures.loader import ParModuleLoader
from repro.procedures.paths import parse_path_spec
from repro.procedures.registration import resolve_external
from repro.sqltypes import VarCharType

__all__ = ["register_system_routines", "install_par", "remove_par",
           "replace_par", "alter_module_path"]


def install_par(session: Session, url: str, par_name: str) -> None:
    """Implementation of ``sqlj.install_par``."""
    if not par_name:
        raise errors.ParInstallationError("par name must not be empty")
    modules, descriptor_text = read_par(url)
    par = InstalledPar(
        name=par_name.lower(),
        url=str(url),
        modules=modules,
        deployment_descriptor=descriptor_text,
        owner=session.user,
    )
    session.catalog.install_par(par)
    loader = session.database.par_loader

    try:
        # Reflection pass: load every module now so that installation
        # errors surface at install time, as the paper's install_jar does
        # when it reflects over the archive.  Unresolved *imports* are
        # tolerated — the paper's path mechanism (alter_module_path) is
        # configured after installation, so cross-archive references must
        # stay lazy, exactly like Java class loading.
        for module_name in modules:
            try:
                loader.load_module(par, module_name)
            except errors.SQLException as exc:
                if isinstance(exc.__cause__, ImportError):
                    continue  # resolved later through the SQL path
                raise
        if descriptor_text is not None:
            descriptor = DeploymentDescriptor.parse(descriptor_text)
            for statement in descriptor.install_actions:
                session.execute(statement)
    except Exception:
        loader.invalidate_par(par.name)
        session.catalog.pars.pop(par.name, None)
        raise


def remove_par(session: Session, par_name: str) -> None:
    """Implementation of ``sqlj.remove_par``."""
    par = session.catalog.get_par(par_name.lower())
    _require_par_ownership(session, par)

    if par.deployment_descriptor is not None:
        descriptor = DeploymentDescriptor.parse(par.deployment_descriptor)
        for statement in descriptor.remove_actions:
            session.execute(statement)

    dependents = [
        routine.name
        for routine in session.catalog.routines.values()
        if routine.par_name == par.name
    ]
    if dependents:
        raise errors.ParInstallationError(
            f"archive {par.name!r} is still referenced by routines: "
            f"{', '.join(sorted(dependents))}"
        )

    session.catalog.remove_par(par.name)
    session.database.par_loader.invalidate_par(par.name)
    session.database.privileges.drop_object("PAR", par.name)


def replace_par(session: Session, url: str, par_name: str) -> None:
    """Implementation of ``sqlj.replace_par``."""
    par = session.catalog.get_par(par_name.lower())
    _require_par_ownership(session, par)
    modules, descriptor_text = read_par(url)

    old_modules = par.modules
    old_descriptor = par.deployment_descriptor
    old_url = par.url
    loader = session.database.par_loader

    par.modules = modules
    par.deployment_descriptor = descriptor_text
    par.url = str(url)
    loader.invalidate_par(par.name)

    # Re-resolve every routine bound to this archive against the new
    # contents; roll the whole replacement back if any resolution fails.
    try:
        for routine in session.catalog.routines.values():
            if routine.par_name == par.name:
                routine.callable = resolve_external(
                    session, routine.external_name
                )
    except Exception:
        par.modules = old_modules
        par.deployment_descriptor = old_descriptor
        par.url = old_url
        loader.invalidate_par(par.name)
        for routine in session.catalog.routines.values():
            if routine.par_name == par.name:
                routine.callable = resolve_external(
                    session, routine.external_name
                )
        raise


def alter_module_path(session: Session, par_name: str, path: str) -> None:
    """Implementation of ``sqlj.alter_module_path``."""
    par = session.catalog.get_par(par_name.lower())
    _require_par_ownership(session, par)
    par.path = parse_path_spec(path)
    session.database.par_loader.invalidate_par(par.name)


def _require_par_ownership(session: Session, par: InstalledPar) -> None:
    if session.user not in (par.owner, session.database.admin_user):
        raise errors.PrivilegeError(
            f"user {session.user!r} may not administer archive "
            f"{par.name!r}"
        )


def _system_routine(name: str, params, target, database: Database) -> None:
    routine = Routine(
        name=name,
        kind="PROCEDURE",
        params=[RoutineParam(p, VarCharType(None), "IN") for p in params],
        returns=None,
        data_access="MODIFIES SQL DATA",
        dynamic_result_sets=0,
        external_name=f"<system>.{name}",
        language="SYSTEM",
        parameter_style="PYTHON",
        owner=database.admin_user,
        callable=target,
    )
    database.catalog.create_routine(routine)
    database.privileges.grant(
        "EXECUTE",
        "ROUTINE",
        name,
        ["public"],
        grantor=database.admin_user,
        owner=database.admin_user,
    )


def register_system_routines(database: Database) -> None:
    """Install the ``sqlj.*`` procedures and the archive loader."""
    database.par_loader = ParModuleLoader(database)
    _system_routine(
        "sqlj.install_par", ["url", "par"], install_par, database
    )
    _system_routine("sqlj.remove_par", ["par"], remove_par, database)
    _system_routine(
        "sqlj.replace_par", ["url", "par"], replace_par, database
    )
    _system_routine(
        "sqlj.alter_module_path", ["par", "path"], alter_module_path,
        database,
    )
