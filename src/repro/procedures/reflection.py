"""Reflection over archive contents.

``install_par`` "uses reflection to determine their names, methods and
signatures" (the paper, on ``install_jar``).  This module provides that
reflection for Python: enumerating the callables and classes an archive
module defines, mapping Python type annotations to SQL type descriptors,
and validating a Python callable's signature against a routine's declared
SQL signature (IN parameters, OUT containers, result-set containers).
"""

from __future__ import annotations

import datetime
import decimal
import inspect
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro import errors
from repro.engine.catalog import Routine
from repro.sqltypes import (
    BlobType,
    BooleanType,
    DateType,
    DecimalType,
    DoubleType,
    IntegerType,
    TimestampType,
    TimeType,
    TypeDescriptor,
    VarCharType,
)

__all__ = [
    "ReflectedCallable",
    "reflect_module",
    "descriptor_for_annotation",
    "validate_signature",
    "expected_parameter_count",
]

_ANNOTATION_MAP = {
    int: IntegerType,
    str: lambda: VarCharType(None),
    float: DoubleType,
    bool: BooleanType,
    bytes: BlobType,
    decimal.Decimal: DecimalType,
    datetime.date: DateType,
    datetime.time: TimeType,
    datetime.datetime: TimestampType,
}


@dataclass
class ReflectedCallable:
    """Summary of one callable discovered in an archive module."""

    name: str
    qualified_name: str
    kind: str  # "function" or "class"
    parameter_names: List[str]
    parameter_types: List[Optional[TypeDescriptor]]
    return_type: Optional[TypeDescriptor]


def descriptor_for_annotation(annotation: Any) -> Optional[TypeDescriptor]:
    """Map a Python annotation to a SQL descriptor (None when unmapped)."""
    factory = _ANNOTATION_MAP.get(annotation)
    if factory is None:
        return None
    return factory()


def _reflect_callable(
    name: str, obj: Any, module_name: str
) -> Optional[ReflectedCallable]:
    kind = "class" if inspect.isclass(obj) else "function"
    try:
        signature = inspect.signature(obj)
    except (TypeError, ValueError):
        return None
    parameter_names: List[str] = []
    parameter_types: List[Optional[TypeDescriptor]] = []
    for parameter in signature.parameters.values():
        if parameter.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        parameter_names.append(parameter.name)
        annotation = (
            parameter.annotation
            if parameter.annotation is not inspect.Parameter.empty
            else None
        )
        parameter_types.append(
            descriptor_for_annotation(annotation) if annotation else None
        )
    return_annotation = (
        signature.return_annotation
        if signature.return_annotation is not inspect.Signature.empty
        else None
    )
    return ReflectedCallable(
        name=name,
        qualified_name=f"{module_name}.{name}",
        kind=kind,
        parameter_names=parameter_names,
        parameter_types=parameter_types,
        return_type=(
            descriptor_for_annotation(return_annotation)
            if return_annotation
            else None
        ),
    )


def reflect_module(module: Any) -> Dict[str, ReflectedCallable]:
    """Enumerate public callables and classes defined in ``module``."""
    found: Dict[str, ReflectedCallable] = {}
    module_name = getattr(module, "__name__", "<module>")
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", module_name) not in (
            module_name, None
        ):
            continue  # re-exported from elsewhere
        reflected = _reflect_callable(name, obj, module_name)
        if reflected is not None:
            found[name] = reflected
    return found


def expected_parameter_count(routine: Routine) -> int:
    """Python parameters the callable must accept: one per SQL parameter
    (OUT/INOUT passed as containers) plus one container per dynamic
    result set."""
    return len(routine.params) + routine.dynamic_result_sets


def validate_signature(routine: Routine, target: Any) -> None:
    """Check that ``target`` can be invoked for ``routine``.

    Raises :class:`repro.errors.RoutineResolutionError` on arity mismatch.
    Missing annotations are tolerated (Python is dynamically typed); when
    annotations are present they must be compatible with the declared SQL
    parameter types.
    """
    if not callable(target):
        raise errors.RoutineResolutionError(
            f"external name of routine {routine.name!r} does not resolve "
            "to a callable"
        )
    try:
        signature = inspect.signature(target)
    except (TypeError, ValueError):
        return  # builtins without introspectable signatures: trust them

    expected = expected_parameter_count(routine)
    positional = [
        p
        for p in signature.parameters.values()
        if p.kind
        in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        )
    ]
    has_varargs = any(
        p.kind is inspect.Parameter.VAR_POSITIONAL
        for p in signature.parameters.values()
    )
    required = len([p for p in positional if p.default is p.empty])
    if has_varargs:
        if required > expected:
            raise errors.RoutineResolutionError(
                f"routine {routine.name!r} supplies {expected} arguments "
                f"but the callable requires at least {required}"
            )
        return
    if not (required <= expected <= len(positional)):
        raise errors.RoutineResolutionError(
            f"routine {routine.name!r} supplies {expected} arguments but "
            f"the callable accepts "
            f"{required}..{len(positional)}"
        )

    # Annotation compatibility for IN parameters (best effort).
    in_modes = [p for p in routine.params if p.mode in ("IN", "INOUT")]
    for sql_param, py_param in zip(routine.params, positional):
        if sql_param.mode != "IN":
            continue
        if py_param.annotation is inspect.Parameter.empty:
            continue
        descriptor = descriptor_for_annotation(py_param.annotation)
        if descriptor is None:
            continue
        if not descriptor.comparable_with(sql_param.descriptor):
            raise errors.RoutineResolutionError(
                f"parameter {sql_param.name!r} of routine "
                f"{routine.name!r}: SQL type "
                f"{sql_param.descriptor.sql_spelling()} does not match "
                f"annotation {py_param.annotation!r}"
            )
    del in_modes
