"""Tests for GRANT / REVOKE and privilege enforcement."""

import pytest

from repro import errors


@pytest.fixture
def owner(db):
    """The paper's granting user (owns the schema objects)."""
    session = db.create_session(user="owner", autocommit=True)
    session.execute("create table accounts (customer varchar(20), "
                    "balance integer)")
    session.execute("insert into accounts values ('ann', 10)")
    return session


@pytest.fixture
def smith(db):
    return db.create_session(user="smith", autocommit=True)


class TestTablePrivileges:
    def test_unprivileged_select_denied(self, owner, smith):
        with pytest.raises(errors.PrivilegeError):
            smith.execute("select * from accounts")

    def test_granted_select_allowed(self, owner, smith):
        owner.execute("grant select on accounts to smith")
        assert smith.execute("select * from accounts").rows == \
            [["ann", 10]]

    def test_select_does_not_imply_insert(self, owner, smith):
        owner.execute("grant select on accounts to smith")
        with pytest.raises(errors.PrivilegeError):
            smith.execute("insert into accounts values ('bob', 1)")

    def test_grant_all(self, owner, smith):
        owner.execute("grant all on accounts to smith")
        smith.execute("insert into accounts values ('bob', 1)")
        smith.execute("update accounts set balance = 2 "
                      "where customer = 'bob'")
        smith.execute("delete from accounts where customer = 'bob'")

    def test_revoke(self, owner, smith):
        owner.execute("grant select on accounts to smith")
        owner.execute("revoke select on accounts from smith")
        with pytest.raises(errors.PrivilegeError):
            smith.execute("select * from accounts")

    def test_grant_to_public(self, owner, smith, db):
        owner.execute("grant select on accounts to public")
        assert smith.execute("select count(*) from accounts").rows == \
            [[1]]
        other = db.create_session(user="zoe")
        assert other.execute("select count(*) from accounts").rows == \
            [[1]]

    def test_owner_always_allowed(self, owner):
        assert owner.execute("select * from accounts").rows

    def test_admin_always_allowed(self, owner, db):
        admin = db.create_session()  # dba
        assert admin.execute("select * from accounts").rows

    def test_non_owner_cannot_grant(self, owner, smith):
        with pytest.raises(errors.PrivilegeError):
            smith.execute("grant select on accounts to smith")

    def test_non_owner_cannot_drop(self, owner, smith):
        with pytest.raises(errors.PrivilegeError):
            smith.execute("drop table accounts")

    def test_view_privileges_independent_of_table(self, owner, smith):
        owner.execute(
            "create view balances as select balance from accounts"
        )
        owner.execute("grant select on balances to smith")
        # Smith may read through the view (definer's rights inside)...
        assert smith.execute("select * from balances").rows == [[10]]
        # ...but still not the base table.
        with pytest.raises(errors.PrivilegeError):
            smith.execute("select * from accounts")


class TestRoutinePrivileges:
    @pytest.fixture
    def routine_db(self, payroll, db):
        return db

    def test_execute_denied_without_grant(self, routine_db):
        smith = routine_db.create_session(user="smith", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            smith.execute("call correct_states('CAL', 'CA')")

    def test_execute_granted(self, payroll, routine_db):
        payroll.execute("grant execute on correct_states to smith")
        smith = routine_db.create_session(user="smith", autocommit=True)
        smith.execute("call correct_states('CAL', 'CA')")

    def test_function_in_query_needs_execute(self, payroll, routine_db):
        payroll.execute("grant select on emps to smith")
        smith = routine_db.create_session(user="smith", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            smith.execute("select region_of(state) from emps")
        payroll.execute("grant execute on region_of to smith")
        assert smith.execute(
            "select region_of(state) from emps where name = 'Alice'"
        ).rows == [[3]]

    def test_definers_rights(self, payroll, routine_db):
        # Smith gets EXECUTE on correct_states but no table privileges;
        # the procedure updates emps anyway (definer's rights).
        payroll.execute("grant execute on correct_states to smith")
        smith = routine_db.create_session(user="smith", autocommit=True)
        smith.execute("call correct_states('TX', 'CA')")
        assert payroll.execute(
            "select count(*) from emps where state = 'CA'"
        ).rows == [[2]]

    def test_public_can_run_sqlj_procs(self, db, routines_par):
        smith = db.create_session(user="smith", autocommit=True)
        smith.execute(
            f"call sqlj.install_par('{routines_par}', 'smith_par')"
        )
        assert "smith_par" in db.catalog.pars


class TestParAndTypePrivileges:
    def test_usage_on_par_required_for_create(self, db, routines_par):
        installer = db.create_session(user="installer", autocommit=True)
        installer.execute(
            f"call sqlj.install_par('{routines_par}', 'rp')"
        )
        other = db.create_session(user="other", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            other.execute(
                "create function r(state char(20)) returns integer "
                "no sql external name 'rp:routines1.region' "
                "language python parameter style python"
            )
        installer.execute("grant usage on rp to other")
        other.execute(
            "create function r(state char(20)) returns integer "
            "no sql external name 'rp:routines1.region' "
            "language python parameter style python"
        )

    def test_usage_on_datatype(self, address_types, db):
        # address_types registered by dba; smith needs usage to use addr.
        smith = db.create_session(user="smith", autocommit=True)
        address_types.execute("create table a_t (a addr)")
        address_types.execute("grant select on a_t to smith")
        address_types.execute("grant insert on a_t to smith")
        with pytest.raises(errors.PrivilegeError):
            smith.execute(
                "insert into a_t values (new addr('s', 'z'))"
            )
        address_types.execute("grant usage on datatype addr to smith")
        smith.execute("insert into a_t values (new addr('s', 'z'))")

    def test_grant_usage_on_datatype_to_public(self, address_types, db):
        address_types.execute("grant usage on datatype addr to public")
        smith = db.create_session(user="smith", autocommit=True)
        address_types.execute("create table b_t (a addr)")
        address_types.execute("grant all on b_t to smith")
        smith.execute("insert into b_t values (new addr('s', 'z'))")

    def test_unknown_privilege_kind_combination(self, db):
        session = db.create_session(autocommit=True)
        session.execute("create table t (a integer)")
        with pytest.raises(errors.CatalogError):
            session.execute("grant execute on table t to smith")
