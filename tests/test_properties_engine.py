"""Hand-rolled, seeded property tests for the engine and pool.

No hypothesis dependency: each property draws its cases from a
:class:`repro.testing.WorkloadGenerator` (or a bare ``random.Random``)
with a fixed seed, so every run checks the same cases and a failure
reports enough to replay it exactly.

Properties:

* **Render idempotence** — ``parse -> render`` reaches a fixed point in
  one step: rendering the re-parsed AST reproduces the same text.
* **Transaction invariants** — ROLLBACK restores the exact pre-
  transaction table state; COMMIT makes it permanent (a following
  ROLLBACK is a no-op).
* **Pool conservation** — any interleaving of checkout / return / kill
  keeps ``in_use + idle <= max_size`` with non-negative components, and
  returning everything leaves ``in_use == 0``.
"""

from __future__ import annotations

import random

from repro import errors
from repro.dbapi.pool import ConnectionPool
from repro import Database
from repro.engine.dialects import STANDARD
from repro.engine.parser import parse_statement
from repro.engine.render import render_statement
from repro.testing import WorkloadGenerator

CASES = 120


class TestRenderRoundtrip:
    def test_generated_statements_render_to_fixed_point(self):
        """For every generated DML/SELECT statement: parse it, render
        it, re-parse the rendering — rendering again must reproduce the
        same text (idempotence), and both ASTs must execute alike."""
        gen = WorkloadGenerator(seed=31)
        statements = gen.seed_statements(10) + gen.statements(CASES)
        for sql in statements:
            first_ast = parse_statement(sql)
            rendered = render_statement(first_ast, STANDARD)
            second_ast = parse_statement(rendered, STANDARD)
            rerendered = render_statement(second_ast, STANDARD)
            assert rendered == rerendered, (
                f"render not idempotent for {sql!r}: "
                f"{rendered!r} != {rerendered!r}"
            )

    def test_rendered_statement_behaves_identically(self):
        """Executing the rendered text produces the same outcome as the
        original text (sampled over two parallel databases)."""
        gen = WorkloadGenerator(seed=32)
        original = Database(name="rt_a").create_session(autocommit=True)
        rendered_db = Database(name="rt_b").create_session(autocommit=True)
        original.execute(gen.ddl())
        rendered_db.execute(gen.ddl())
        statements = gen.seed_statements(10) + gen.statements(60)
        for sql in statements:
            rendered = render_statement(parse_statement(sql), STANDARD)
            mine = original.execute(sql)
            theirs = rendered_db.execute(rendered)
            if mine.is_rowset:
                assert sorted(map(tuple, mine.rows)) == \
                    sorted(map(tuple, theirs.rows)), sql
            else:
                assert mine.update_count == theirs.update_count, sql
        final_a = original.execute("SELECT * FROM workload").rows
        final_b = rendered_db.execute("SELECT * FROM workload").rows
        assert sorted(map(tuple, final_a)) == sorted(map(tuple, final_b))


class TestTransactionInvariants:
    @staticmethod
    def _table_state(session):
        return sorted(
            map(tuple, session.execute("SELECT * FROM workload").rows)
        )

    def test_rollback_restores_exact_state(self):
        gen = WorkloadGenerator(seed=41)
        session = Database(name="txp").create_session(autocommit=True)
        session.execute(gen.ddl())
        for stmt in gen.seed_statements(15):
            session.execute(stmt)
        rng = random.Random(41)
        for _round in range(12):
            before = self._table_state(session)
            session.autocommit = False
            for _ in range(rng.randint(1, 6)):
                roll = rng.random()
                if roll < 0.4:
                    session.execute(gen.insert())
                elif roll < 0.8:
                    session.execute(gen.update())
                else:
                    session.execute(gen.delete())
            session.rollback()
            session.autocommit = True
            assert self._table_state(session) == before
        session.close()

    def test_commit_is_permanent(self):
        gen = WorkloadGenerator(seed=42)
        session = Database(name="txc").create_session(autocommit=True)
        session.execute(gen.ddl())
        rng = random.Random(42)
        session.autocommit = False
        inserted = 0
        for _ in range(rng.randint(5, 10)):
            session.execute(gen.insert())
            inserted += 1
        session.commit()
        committed = self._table_state(session)
        assert len(committed) == inserted
        session.rollback()  # nothing pending: must not undo the commit
        assert self._table_state(session) == committed
        session.close()

    def test_rowcounts_sum_to_table_size(self):
        """COUNT(*) always equals inserts minus deleted rows as reported
        by each statement's update count."""
        gen = WorkloadGenerator(seed=43)
        session = Database(name="txn").create_session(autocommit=True)
        session.execute(gen.ddl())
        expected = 0
        rng = random.Random(43)
        for _ in range(CASES):
            roll = rng.random()
            if roll < 0.5:
                expected += session.execute(gen.insert()).update_count
            elif roll < 0.8:
                session.execute(gen.update())  # size-neutral
            else:
                expected -= session.execute(gen.delete()).update_count
            count = session.execute(
                "SELECT COUNT(*) FROM workload"
            ).rows[0][0]
            assert count == expected
        session.close()


class TestPoolConservation:
    def test_random_checkout_return_kill_conserves_slots(self):
        db = Database(name="poolprop")
        pool = ConnectionPool(db, max_size=5, timeout=0.05)
        rng = random.Random(51)
        held = []
        for _step in range(200):
            stats = pool.stats()
            assert 0 <= stats["in_use"] <= pool.max_size
            assert 0 <= stats["idle"] <= pool.max_size
            assert stats["in_use"] + stats["idle"] <= pool.max_size
            assert stats["in_use"] == len(held)
            roll = rng.random()
            if roll < 0.5:
                try:
                    held.append(pool.checkout(timeout=0.01))
                except errors.PoolTimeoutError:
                    assert len(held) == pool.max_size
            elif held:
                conn = held.pop(rng.randrange(len(held)))
                if roll < 0.6:  # kill before returning
                    conn.session.close()
                conn.close()
        for conn in held:
            conn.close()
        stats = pool.stats()
        assert stats["in_use"] == 0
        assert stats["idle"] <= pool.max_size
        # The pool still serves a healthy session after the churn.
        conn = pool.checkout()
        assert conn.session.execute("SELECT 1").rows == [[1]]
        conn.close()
        pool.close()

    def test_min_size_opens_eagerly_and_survives(self):
        db = Database(name="poolmin")
        pool = ConnectionPool(db, min_size=3, max_size=5)
        assert pool.stats()["idle"] == 3
        conns = [pool.checkout() for _ in range(5)]
        assert pool.stats() == {
            "name": "poolmin", "in_use": 5, "idle": 0, "size": 5,
            "max_size": 5, "closed": False,
        }
        for conn in conns:
            conn.close()
        assert pool.stats()["idle"] == 5
        pool.close()
