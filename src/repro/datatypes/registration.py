"""CREATE TYPE execution (SQLJ Part 2).

Binds a SQL type name to a Python class and records the SQL↔Python member
maps.  Following the paper:

* the EXTERNAL NAME of the type names the class (``Address``); member
  clauses name fields and methods (``zip_attr char(10) external name
  zip``, ``method to_string() returns varchar(255) external name
  toString``);
* a method whose SQL name equals the type name is a constructor;
* ``STATIC`` marks class-level attributes/methods (the paper's
  ``recommended_width`` and ``contiguous``);
* ``UNDER`` declares a subtype whose class must subclass the supertype's
  class; members are inherited through the supertype chain.
"""

from __future__ import annotations

import inspect
from typing import Any, Optional

from repro import errors
from repro.engine import ast
from repro.engine.catalog import (
    AttributeBinding,
    MethodBinding,
    UserDefinedType,
    parse_external_name,
)
from repro.procedures.registration import resolve_external

__all__ = ["execute_create_type", "resolve_type_class"]


def resolve_type_class(session: Any, external_name: str) -> type:
    """Resolve a type's EXTERNAL NAME to a Python class.

    Accepts ``par:module.Class``, ``module.Class``, or a bare class name,
    which is searched across all installed archives (the Java analogy:
    resolving a class name through the database's class path).
    """
    par_name, module_name, member = parse_external_name(external_name)
    if par_name is not None or module_name:
        target = resolve_external(session, external_name)
    else:
        target = _search_archives_for_class(session, member)
    if not inspect.isclass(target):
        raise errors.RoutineResolutionError(
            f"EXTERNAL NAME {external_name!r} does not resolve to a class"
        )
    return target


def _search_archives_for_class(session: Any, class_name: str) -> type:
    loader = session.database.par_loader
    for par_key in sorted(session.catalog.pars):
        par = session.catalog.pars[par_key]
        for module_name in sorted(par.modules):
            module = loader.load_module(par, module_name)
            candidate = getattr(module, class_name, None)
            if inspect.isclass(candidate):
                return candidate
    raise errors.RoutineResolutionError(
        f"no installed archive defines a class named {class_name!r}"
    )


def _member_name(external: str) -> str:
    """Member clauses may carry ``module.Class.member`` externals; only
    the last path component names the Python member."""
    return external.split(":")[-1].split(".")[-1]


def execute_create_type(stmt: ast.CreateType, session: Any) -> None:
    catalog = session.catalog
    if stmt.language not in ("PYTHON", "JAVA"):
        raise errors.FeatureNotSupportedError(
            f"LANGUAGE {stmt.language} types are not supported"
        )
    if not stmt.external_name:
        raise errors.SQLSyntaxError(
            f"type {stmt.name!r} requires an EXTERNAL NAME clause"
        )

    python_class = resolve_type_class(session, stmt.external_name)

    supertype: Optional[UserDefinedType] = None
    if stmt.under is not None:
        supertype = catalog.get_type(stmt.under)
        if not issubclass(python_class, supertype.python_class):
            raise errors.CatalogError(
                f"class {python_class.__name__!r} does not subclass "
                f"{supertype.python_class.__name__!r}; it cannot be "
                f"UNDER {supertype.name!r}"
            )

    udt = UserDefinedType(
        name=stmt.name,
        external_name=stmt.external_name,
        python_class=python_class,
        owner=session.user,
        supertype=supertype,
    )

    # Register first so member clauses may reference the type itself
    # (constructors return the type being defined).
    catalog.create_type(udt)
    try:
        _bind_members(stmt, udt, session)
    except Exception:
        catalog.types.pop(udt.name, None)
        raise


def _bind_members(
    stmt: ast.CreateType, udt: UserDefinedType, session: Any
) -> None:
    catalog = session.catalog
    python_class = udt.python_class
    simple_type_name = stmt.name.split(".")[-1]

    for attr in stmt.attributes:
        field_name = _member_name(attr.external_name)
        if attr.static and not hasattr(python_class, field_name):
            raise errors.RoutineResolutionError(
                f"class {python_class.__name__!r} has no static attribute "
                f"{field_name!r}"
            )
        if attr.sql_name in udt.attributes:
            raise errors.DuplicateObjectError(
                f"duplicate attribute {attr.sql_name!r} in type "
                f"{udt.name!r}"
            )
        udt.attributes[attr.sql_name] = AttributeBinding(
            sql_name=attr.sql_name,
            field_name=field_name,
            descriptor=catalog.resolve_type(attr.type_spelling),
            static=attr.static,
        )

    for method in stmt.methods:
        python_name = _member_name(method.external_name)
        param_descriptors = [
            catalog.resolve_type(p.type_spelling) for p in method.params
        ]
        returns = (
            catalog.resolve_type(method.returns)
            if method.returns is not None
            else None
        )
        is_constructor = method.sql_name == simple_type_name
        if is_constructor:
            if python_name != python_class.__name__:
                raise errors.RoutineResolutionError(
                    f"constructor of type {udt.name!r} must have external "
                    f"name {python_class.__name__!r}, got {python_name!r}"
                )
            udt.constructors.append(
                MethodBinding(
                    sql_name=method.sql_name,
                    python_name=python_class.__name__,
                    param_descriptors=param_descriptors,
                    returns=returns,
                    static=True,
                    is_constructor=True,
                )
            )
            continue
        target = getattr(python_class, python_name, None)
        if target is None or not callable(target):
            raise errors.RoutineResolutionError(
                f"class {python_class.__name__!r} has no method "
                f"{python_name!r}"
            )
        if method.sql_name in udt.methods:
            raise errors.DuplicateObjectError(
                f"duplicate method {method.sql_name!r} in type "
                f"{udt.name!r}"
            )
        udt.methods[method.sql_name] = MethodBinding(
            sql_name=method.sql_name,
            python_name=python_name,
            param_descriptors=param_descriptors,
            returns=returns,
            static=method.static,
        )

    if stmt.ordering is not None:
        _bind_ordering(stmt, udt)


def _bind_ordering(stmt: ast.CreateType, udt: UserDefinedType) -> None:
    """Resolve ``ordering ... by method <name>`` against the class.

    The named method must be an instance method taking one argument (the
    other instance) and returning an integer comparator result (negative
    / zero / positive); for EQUALS ONLY orderings zero/non-zero is
    enough.
    """
    binding = udt.find_method(stmt.ordering.method)
    if binding is not None:
        python_name = binding.python_name
    else:
        python_name = stmt.ordering.method
    target = getattr(udt.python_class, python_name, None)
    if target is None or not callable(target):
        raise errors.RoutineResolutionError(
            f"ordering method {stmt.ordering.method!r} of type "
            f"{udt.name!r} does not resolve to a method of "
            f"{udt.python_class.__name__!r}"
        )
    udt.ordering_kind = stmt.ordering.kind
    udt.ordering_method = python_name
