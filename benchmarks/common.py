"""Shared workload builders for the benchmark harness.

Every experiment (see DESIGN.md's experiment index) builds on the
paper's payroll schema.  The helpers here create engines of a given
size, install the paper's routines, register the Address types, and
translate small SQLJ programs on the fly.
"""

from __future__ import annotations

import importlib
import itertools
import os
import sys
import tempfile
import time
from typing import Callable, List, Optional, Tuple

from repro import observability
from repro import Database
from repro.procedures import build_par_bytes
from repro.procedures.archives import build_par
from repro.profiles.serialization import save_profile
from repro import ConnectionContext
from repro.translator import TranslationOptions, Translator

#: States used to synthesise employee rows; mix of mapped and unmapped.
STATES = ["CA", "MN", "NV", "FL", "VT", "GA", "AZ", "TX", "WA", "NH"]

ROUTINES1_SOURCE = '''
from repro import DriverManager


def region(s):
    if s in ("MN", "VT", "NH"):
        return 1
    if s in ("FL", "GA", "AL"):
        return 2
    if s in ("CA", "AZ", "NV"):
        return 3
    return 4


def correct_states(old_spelling, new_spelling):
    conn = DriverManager.get_connection("JDBC:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "UPDATE emps SET state = ? WHERE state = ?")
    stmt.set_string(1, new_spelling)
    stmt.set_string(2, old_spelling)
    stmt.execute_update()
'''

ROUTINES2_SOURCE = '''
from repro import DriverManager


def best_two_emps(n1, id1, r1, s1, n2, id2, r2, s2, region_parm):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, id, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    r = stmt.execute_query()
    if r.next():
        n1[0] = r.get_string("name")
        id1[0] = r.get_string("id")
        r1[0] = r.get_int("region")
        s1[0] = r.get_decimal("sales")
    else:
        n1[0] = "****"
        return
    if r.next():
        n2[0] = r.get_string("name")
        id2[0] = r.get_string("id")
        r2[0] = r.get_int("region")
        s2[0] = r.get_decimal("sales")
    else:
        n2[0] = "****"
'''

ROUTINES3_SOURCE = '''
from repro import DriverManager


def ordered_emps(region_parm, rs):
    conn = DriverManager.get_connection("DBAPI:DEFAULT:CONNECTION")
    stmt = conn.prepare_statement(
        "SELECT name, region_of(state) as region, sales FROM emps "
        "WHERE region_of(state) > ? AND sales IS NOT NULL "
        "ORDER BY sales DESC")
    stmt.set_int(1, region_parm)
    rs[0] = stmt.execute_query()
'''

ADDRESS_SOURCE = '''
class Address:
    recommended_width = 25

    def __init__(self, street="Unknown", zip="None"):
        self.street = street
        self.zip = zip

    def to_string(self):
        return "Street= " + self.street + " ZIP= " + self.zip

    def __eq__(self, other):
        return (type(other) is type(self)
                and self.street == other.street
                and self.zip == other.zip)

    def __hash__(self):
        return hash((self.street, self.zip))


class Address2Line(Address):
    def __init__(self, street="Unknown", line2=" ", zip="None"):
        super().__init__(street, zip)
        self.line2 = line2

    def to_string(self):
        return ("Street= " + self.street + " Line2= " + self.line2
                + " ZIP= " + self.zip)
'''

_COUNTER = itertools.count()


def fresh_name(prefix: str) -> str:
    """Unique database name (pytest-benchmark repeats fixtures)."""
    return f"{prefix}_{next(_COUNTER)}"


def make_emps_db(
    rows: int, dialect: str = "standard", name: Optional[str] = None
) -> Tuple[Database, "object"]:
    """Engine with the paper's emps table holding ``rows`` rows."""
    database = Database(
        name=name or fresh_name("bench"), dialect=dialect
    )
    session = database.create_session(autocommit=True)
    session.execute(
        "create table emps (name varchar(50), id char(5), "
        "state char(20), sales decimal(8,2))"
    )
    table = database.catalog.get_table("emps")
    from decimal import Decimal

    # Insert straight into storage (the rows setter seeds committed
    # versions): benchmark setup, not the thing being measured.
    table.rows = [
        [
            f"Emp{i:06d}",
            f"E{i % 100000:05d}"[:5].ljust(5),
            STATES[i % len(STATES)].ljust(20),
            Decimal(i % 50000) / 100,
        ]
        for i in range(rows)
    ]
    return database, session


def install_paper_routines(database: Database, session) -> None:
    """Install Routines1-3 and their SQL names into ``database``."""
    payload = build_par_bytes(
        {
            "routines1": ROUTINES1_SOURCE,
            "routines2": ROUTINES2_SOURCE,
            "routines3": ROUTINES3_SOURCE,
        }
    )
    with tempfile.NamedTemporaryFile(
        suffix=".par", delete=False
    ) as handle:
        handle.write(payload)
        par_path = handle.name
    try:
        session.execute(
            f"call sqlj.install_par('{par_path}', 'routines_par')"
        )
    finally:
        os.unlink(par_path)
    session.execute(
        "create function region_of(state char(20)) returns integer "
        "no sql external name 'routines_par:routines1.region' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure correct_states(old char(20), new char(20)) "
        "modifies sql data "
        "external name 'routines_par:routines1.correct_states' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure best2 ("
        "out n1 varchar(50), out id1 varchar(5), out r1 integer, "
        "out s1 decimal(8,2), out n2 varchar(50), out id2 varchar(5), "
        "out r2 integer, out s2 decimal(8,2), region integer) "
        "reads sql data "
        "external name 'routines_par:routines2.best_two_emps' "
        "language python parameter style python"
    )
    session.execute(
        "create procedure ranked_emps (region integer) "
        "dynamic result sets 1 reads sql data "
        "external name 'routines_par:routines3.ordered_emps' "
        "language python parameter style python"
    )


def install_address_types(database: Database, session) -> None:
    """Register the paper's addr / addr_2_line types."""
    import tempfile as _tempfile

    with _tempfile.TemporaryDirectory() as workdir:
        par_path = build_par(
            os.path.join(workdir, "address.par"),
            {"addressmod": ADDRESS_SOURCE},
        )
        session.execute(
            f"call sqlj.install_par('{par_path}', 'address_par')"
        )
    session.execute("""
        create type addr
        external name 'address_par:addressmod.Address' language python (
          zip_attr char(10) external name zip,
          street_attr varchar(50) external name street,
          method addr (s_parm varchar(50), z_parm char(10)) returns addr
            external name Address,
          method to_string () returns varchar(255)
            external name to_string
        )
    """)
    session.execute("""
        create type addr_2_line under addr
        external name 'address_par:addressmod.Address2Line'
        language python (
          line2_attr varchar(100) external name line2,
          method addr_2_line (s_parm varchar(50), s2_parm char(100),
            z_parm char(10)) returns addr_2_line
            external name Address2Line,
          method to_string () returns varchar(255)
            external name to_string
        )
    """)


def translate_and_import(
    source: str, module_name: str, exemplar: Database, workdir: str
):
    """Translate SQLJ source and import the generated module."""
    translator = Translator(TranslationOptions(exemplar=exemplar))
    result = translator.translate_source(source, module_name)
    module_path = os.path.join(workdir, module_name + ".py")
    with open(module_path, "w") as handle:
        handle.write(result.python_source)
    for profile in result.profiles:
        save_profile(profile, workdir)
    sys.path.insert(0, workdir)
    try:
        module = importlib.import_module(module_name)
        module = importlib.reload(module)
    finally:
        sys.path.remove(workdir)
    return module, result


def set_default_context(database: Database) -> ConnectionContext:
    context = ConnectionContext(database)
    ConnectionContext.set_default_context(context)
    return context


def metrics_summary() -> str:
    """Compact one-cell summary of the process metrics snapshot.

    Suitable as a metrics-snapshot column in :func:`report` rows (or as
    the trailing summary line ``report(metrics=True)`` prints).
    """
    counters = observability.snapshot()["counters"]
    statements = sum(
        value for name, value in counters.items()
        if name.startswith("statements.")
    )
    sql_errors = sum(
        value for name, value in counters.items()
        if name.startswith("errors.")
    )
    return (
        f"stmts={statements}"
        f" rows={counters.get('rows.returned', 0)}"
        f" scanned={counters.get('rows.scanned', 0)}"
        f" procs={counters.get('procedures.calls', 0)}"
        f" errs={sql_errors}"
    )


def report(
    title: str,
    rows: List[Tuple],
    headers: Tuple,
    metrics: bool = False,
) -> None:
    """Print a small aligned table (shows under pytest -s and in the
    captured bench output).  With ``metrics=True`` a metrics-snapshot
    summary line follows the table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows
        else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n== {title} ==")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if metrics:
        print(f"-- metrics: {metrics_summary()}")


# ---------------------------------------------------------------------------
# Tracing-overhead guard
# ---------------------------------------------------------------------------

#: Hook activations per executed statement modelled by the probe:
#: four tracer-enabled gates (SQLJ entry point, clause execution,
#: statement execution, dispatch), four counter touches (sqlj.clauses,
#: statement-cache hit, statements.<kind> with its type lookup, the
#: rowset branch that guards rows.returned), plus the complete
#: statement-statistics sequence a statement pays in the default
#: configuration (stats on, tracing off): the enabled gate, the
#: thread-context bracket, two clock reads, the per-session counter,
#: the slow-query arm check and the collector's record-accumulate.
#: The wait-event hooks contribute nothing here by design: they run on
#: the *blocked* acquisition path only, so the uncontended fast path
#: never reaches them.
HOOKS_PER_STATEMENT = 14


class _ProbeSession:
    """Stand-in for the Session attribute traffic a statement pays."""

    __slots__ = ("statements_executed", "slow_query_ms")

    def __init__(self) -> None:
        self.statements_executed = 0
        self.slow_query_ms = None


def measure_noop_hook_cost(
    samples: int = 20_000, repeats: int = 5
) -> float:
    """Seconds of per-statement observability work, default config.

    Each probe iteration performs the activations a statement pays with
    tracing off and statement statistics on.  The statistics share is
    not simulated: the loop calls the real ``stats.begin()`` and
    ``StatementStats.record()`` on a warmed collector, brackets them
    with the same two ``perf_counter`` reads the engine makes, bumps
    the session statement counter and peeks the slow-query arm exactly
    as ``Session._record_statement`` does.  An empty-loop baseline is
    subtracted (the workload pays its own loop bookkeeping, so the
    probe must not bill it to the hooks) and the best of ``repeats``
    runs is taken, mirroring the best-of-runs workload measurement in
    :func:`assert_tracing_overhead`.
    """
    from time import perf_counter  # bound, as the engine binds it

    from repro.observability import slowlog, stats, tracing

    previous = tracing.get_tracer()
    tracing.disable_tracing()
    try:
        counter = observability.registry.counter("bench.noop_hook_probe")
        counters = {int: counter}
        collector = stats.StatementStats()
        session = _ProbeSession()
        sql = "SELECT 1"
        collector.record(sql, 0.0)  # warm the entry + raw-text alias
        best = None
        for _ in range(max(1, repeats)):
            begin = time.perf_counter()
            for _ in range(samples):
                pass
            baseline = time.perf_counter() - begin
            begin = time.perf_counter()
            for _ in range(samples):
                if tracing.current.enabled:  # SQLJ entry-point gate
                    pass
                if tracing.current.enabled:  # clause-execution gate
                    pass
                if tracing.current.enabled:  # execute_statement gate
                    pass
                if tracing.current.enabled:  # dispatch gate
                    pass
                counter.value += 1  # sqlj.clauses
                counter.value += 1  # statement-cache hit
                by_type = counters.get(int)  # statements.<kind> lookup
                by_type.value += 1
                if counter is None:  # rows.returned rowset branch
                    counter.value += 1
                # --- statement statistics: the real calls ------------
                if stats.enabled:  # collector gate
                    context = stats.begin()
                    t0 = perf_counter()  # statement start clock
                    elapsed = perf_counter() - t0  # end clock
                    session.statements_executed += 1
                    if (  # slow-query arm peek
                        session.slow_query_ms is not None
                        or slowlog._threshold_ms is not None
                    ):
                        pass
                    collector.record(sql, elapsed, 0, context, None, False)
            elapsed = time.perf_counter() - begin - baseline
            best = elapsed if best is None else min(best, elapsed)
    finally:
        tracing.set_tracer(
            previous if previous.enabled else None
        )
    return best / samples


def assert_tracing_overhead(
    workload: Callable[[], None],
    statements_per_run: int,
    repeats: int = 3,
    budget: float = 0.05,
) -> Tuple[float, float]:
    """Assert per-statement observability costs < ``budget`` of a workload.

    Runs ``workload`` ``repeats`` times (tracing disabled, statement
    statistics on — the normal configuration), takes the best time, then
    estimates the share of it spent in observability hooks from the
    measured per-statement hook cost and ``statements_per_run``.
    Returns ``(overhead_seconds, workload_seconds)`` for reporting.
    """
    best = min(
        _timed(workload) for _ in range(max(1, repeats))
    )
    hook_cost = measure_noop_hook_cost()
    overhead = hook_cost * statements_per_run
    assert overhead < budget * best, (
        f"no-op tracing hooks cost {overhead * 1e6:.1f}us, which exceeds "
        f"{budget:.0%} of the {best * 1e6:.1f}us workload"
    )
    return overhead, best


def _timed(workload: Callable[[], None]) -> float:
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


class BenchAddress:
    """Picklable address class for the E8 storage comparison.

    Defined at module level (rather than inside a par archive) because
    the BLOB baseline pickles instances, and pickle requires an
    importable defining module.
    """

    def __init__(self, street="Unknown", zip="None"):
        self.street = street
        self.zip = zip

    def to_string(self):
        return "Street= " + self.street + " ZIP= " + self.zip

    def __eq__(self, other):
        return (type(other) is type(self)
                and self.street == other.street
                and self.zip == other.zip)

    def __hash__(self):
        return hash((self.street, self.zip))


def install_bench_address_type(session) -> None:
    """Register BenchAddress as SQL type ``addr`` via direct import."""
    session.execute("""
        create type addr
        external name 'benchmarks.common.BenchAddress' language python (
          zip_attr char(10) external name zip,
          street_attr varchar(50) external name street,
          method addr (s_parm varchar(50), z_parm char(10)) returns addr
            external name BenchAddress,
          method to_string () returns varchar(255)
            external name to_string
        )
    """)
