"""E5 — Strongly typed cursors (paper slide 8).

The paper's two iterator flavours against a plain ResultSet:

* positional (``FETCH :iter INTO :a, :b``),
* named (``iter.name()``, ``iter.year()``),
* raw dbapi ResultSet (``get_string(1)`` / ``get_int(2)``).

We verify all three see the same data, measure fetch throughput over an
N-row result, and — the real payoff — show the typed iterators reject a
shape-incompatible query at *bind* time, where the ResultSet happily
returns mistyped values until some downstream computation explodes.

Expected shape: comparable throughput (same order), typed iterators
slightly slower per row (type checks), errors move from "sometime later"
to bind time.
"""

import pytest

from benchmarks.common import make_emps_db, report
from repro import errors
from repro import DriverManager
from repro.runtime import NamedIterator, PositionalIterator

N_ROWS = 2000
QUERY = "select name, sales from emps where sales is not null"
# A query whose shape silently differs: columns swapped.
SWAPPED = "select sales, name from emps where sales is not null"


class ByPos(PositionalIterator):
    _column_types = (str, float)


class ByName(NamedIterator):
    _columns = (("name", str), ("sales", float))

    def name(self):
        return self._get("name")

    def sales(self):
        return self._get("sales")


@pytest.fixture(scope="module")
def engine():
    database, session = make_emps_db(N_ROWS, name="e5")
    conn = DriverManager.get_connection(
        "pydbc:standard:x", database=database
    )
    return database, session, conn


def drain_positional(session):
    iterator = ByPos(session.execute(QUERY))
    total = 0.0
    count = 0
    while True:
        row = iterator.fetch_row()
        if row is None:
            break
        total += row[1]
        count += 1
    iterator.close()
    return count, total


def drain_named(session):
    iterator = ByName(session.execute(QUERY))
    total = 0.0
    count = 0
    while iterator.next():
        total += iterator.sales()
        count += 1
    iterator.close()
    return count, total


def drain_resultset(conn):
    rs = conn.create_statement().execute_query(QUERY)
    total = 0.0
    count = 0
    while rs.next():
        rs.get_string(1)
        total += rs.get_float(2)
        count += 1
    rs.close()
    return count, total


class TestIteratorEquivalence:
    def test_all_three_drain_identically(self, engine):
        _database, session, conn = engine
        results = {
            "positional": drain_positional(session),
            "named": drain_named(session),
            "resultset": drain_resultset(conn),
        }
        assert results["positional"] == results["named"] == \
            results["resultset"]
        report(
            "E5: drained rows / checksum per access path",
            [(k, v[0], round(v[1], 2)) for k, v in results.items()],
            ("path", "rows", "sum(sales)"),
        )

    def test_typed_iterators_fail_at_bind_time(self, engine):
        _database, session, conn = engine
        # Positional: swapped columns rejected before any row is read.
        with pytest.raises(errors.InvalidCastError):
            ByPos(session.execute(SWAPPED))
        # Named: still works on swapped output (bound by name!).
        iterator = ByName(session.execute(SWAPPED))
        assert iterator.next()
        assert isinstance(iterator.name(), str)

    def test_resultset_reports_nothing_until_misuse(self, engine):
        _database, _session, conn = engine
        rs = conn.create_statement().execute_query(SWAPPED)
        rs.next()
        # The untyped path returns the wrong column silently...
        name_value = rs.get_string(1)  # actually sales
        assert name_value is not None
        # ...and only a stricter accessor finally notices.
        with pytest.raises(errors.InvalidCastError):
            rs.get_float(2)  # actually name


@pytest.mark.benchmark(group="e5-fetch")
def test_positional_iterator_throughput(benchmark, engine):
    _database, session, _conn = engine
    count, _total = benchmark(drain_positional, session)
    assert count == N_ROWS


@pytest.mark.benchmark(group="e5-fetch")
def test_named_iterator_throughput(benchmark, engine):
    _database, session, _conn = engine
    count, _total = benchmark(drain_named, session)
    assert count == N_ROWS


@pytest.mark.benchmark(group="e5-fetch")
def test_resultset_throughput(benchmark, engine):
    _database, _session, conn = engine
    count, _total = benchmark(drain_resultset, conn)
    assert count == N_ROWS
