"""Barrier-driven concurrency harness.

:func:`run_concurrent` launches N threads, optionally lines them all up
on a :class:`threading.Barrier` so their first operation races for real
(without the barrier, thread 0 often finishes before thread N-1 even
starts), and collects every per-thread return value and exception.
Nothing is swallowed and nothing can hang the test process: worker
exceptions are captured and re-raisable via :meth:`ConcurrentResult.raise_first`,
and both the barrier and the join carry timeouts.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, List, Optional, Sequence, Union

__all__ = ["ConcurrentResult", "run_concurrent"]


class ConcurrentResult:
    """Outcome of a :func:`run_concurrent` run.

    ``values[i]`` / ``errors[i]`` are thread *i*'s return value and
    captured exception (exactly one of the pair is meaningful).
    """

    def __init__(
        self,
        values: List[Any],
        errors: List[Optional[BaseException]],
        stragglers: int,
    ) -> None:
        self.values = values
        self.errors = errors
        #: threads that failed to finish within the join timeout.
        self.stragglers = stragglers

    @property
    def failures(self) -> List[BaseException]:
        return [exc for exc in self.errors if exc is not None]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.stragglers

    def raise_first(self) -> "ConcurrentResult":
        """Re-raise the first captured exception, if any (chainable)."""
        if self.stragglers:
            raise TimeoutError(
                f"{self.stragglers} worker thread(s) did not finish"
            )
        for exc in self.errors:
            if exc is not None:
                raise exc
        return self


def run_concurrent(
    n_threads: int,
    ops: Union[Callable[[int], Any], Sequence[Callable[[], Any]]],
    *,
    barrier: bool = True,
    repeat: int = 1,
    timeout: float = 60.0,
) -> ConcurrentResult:
    """Run ``ops`` across ``n_threads`` threads and collect outcomes.

    ``ops`` is either one callable invoked as ``ops(thread_index)`` on
    every thread, or a sequence of ``n_threads`` zero-argument callables
    (one per thread).  With ``barrier=True`` (the default) all threads
    rendezvous before their first call, maximising real interleaving.
    ``repeat`` reruns each thread's op that many times, returning the
    list of per-iteration results as the thread's value; the first
    exception stops that thread's loop and is recorded.
    """
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    if callable(ops):
        workers = [
            (lambda i=i: ops(i)) for i in range(n_threads)
        ]
    else:
        workers = list(ops)
        if len(workers) != n_threads:
            raise ValueError(
                f"got {len(workers)} ops for {n_threads} threads"
            )

    start = (
        threading.Barrier(n_threads) if barrier and n_threads > 1 else None
    )
    values: List[Any] = [None] * n_threads
    errors: List[Optional[BaseException]] = [None] * n_threads

    def runner(index: int, work: Callable[[], Any]) -> None:
        try:
            if start is not None:
                start.wait(timeout)
            if repeat == 1:
                values[index] = work()
            else:
                out = []
                for _ in range(repeat):
                    out.append(work())
                values[index] = out
        except BaseException as exc:  # noqa: BLE001 - harness captures all
            errors[index] = exc
            if start is not None:
                # Don't strand threads still waiting on the barrier.
                start.abort()

    threads = [
        threading.Thread(
            target=runner, args=(i, work), name=f"run-concurrent-{i}",
            daemon=True,
        )
        for i, work in enumerate(workers)
    ]
    for thread in threads:
        thread.start()
    stragglers = 0
    for thread in threads:
        thread.join(timeout)
        if thread.is_alive():
            stragglers += 1
    return ConcurrentResult(values, errors, stragglers)
