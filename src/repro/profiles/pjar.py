"""Packaging translated programs (the paper's ``Foo.jar``).

A ``.pjar`` is a zip holding the generated host module(s) (``Foo.py`` —
standing in for ``Foo.class``) and the serialized profiles
(``Foo_SJProfile0.ser``, ...).  The customizer utility
(:mod:`repro.profiles.customizer`) rewrites profiles inside the archive,
and :func:`unpack_pjar` deploys the members next to each other so the
generated module can be imported and finds its profiles.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Dict, Iterable

from repro import errors

__all__ = [
    "build_pjar",
    "read_pjar",
    "write_pjar_members",
    "unpack_pjar",
]


def build_pjar(path: str, member_paths: Iterable[str]) -> str:
    """Create a pjar at ``path`` from existing files.

    Each member is stored under its base name (generated modules and
    their profiles live side by side, as the paper's jar layout shows).
    """
    member_paths = list(member_paths)
    if not member_paths:
        raise errors.ProfileError("cannot build an empty pjar")
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for member_path in member_paths:
            if not os.path.exists(member_path):
                raise errors.ProfileError(
                    f"pjar member {member_path!r} does not exist"
                )
            archive.write(member_path, os.path.basename(member_path))
    return path


def read_pjar(path: str) -> Dict[str, bytes]:
    """Read all members of a pjar into memory."""
    if not os.path.exists(path):
        raise errors.ProfileError(f"pjar {path!r} does not exist")
    try:
        with zipfile.ZipFile(path) as archive:
            return {
                name: archive.read(name)
                for name in archive.namelist()
                if not name.endswith("/")
            }
    except zipfile.BadZipFile:
        raise errors.ProfileError(
            f"{path!r} is not a valid pjar archive"
        ) from None


def write_pjar_members(path: str, members: Dict[str, bytes]) -> str:
    """Rewrite a pjar with the given members (used by the customizer)."""
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        for name in sorted(members):
            archive.writestr(name, members[name])
    with open(path, "wb") as handle:
        handle.write(buffer.getvalue())
    return path


def unpack_pjar(path: str, directory: str) -> Dict[str, str]:
    """Extract a pjar into ``directory``; returns member name -> path."""
    os.makedirs(directory, exist_ok=True)
    extracted: Dict[str, str] = {}
    for name, payload in read_pjar(path).items():
        target = os.path.join(directory, name)
        with open(target, "wb") as handle:
            handle.write(payload)
        extracted[name] = target
    return extracted
