"""E1 — "SQLJ more concise than JDBC" (paper slide 7).

The paper shows the same INSERT written in SQLJ (one clause) and JDBC
(prepare, bind, execute, close).  This experiment quantifies the claim
on the paper's own examples — statement counts and token counts of the
application-visible code — and measures that the concision costs nothing
at run time (both paths execute the same engine work).

Expected shape: SQLJ needs 2-4x fewer statements/tokens; per-operation
run times are comparable (same order of magnitude).
"""

import io
import tempfile
import tokenize as pytokenize

import pytest

from benchmarks.common import (
    assert_tracing_overhead,
    make_emps_db,
    report,
    set_default_context,
    translate_and_import,
)

# The paper's slide-7 pair: INSERT with one host variable / parameter.
SQLJ_INSERT_SNIPPET = """\
#sql { INSERT INTO emp VALUES (:n) };
"""

JDBC_INSERT_SNIPPET = """\
stmt = conn.prepare_statement("INSERT INTO emp VALUES (?)")
stmt.set_int(1, n)
stmt.execute()
stmt.close()
"""

# The paper's positional-iterator loop vs its dbapi equivalent.
SQLJ_ITERATOR_SNIPPET = """\
#sql positer = { SELECT name, year FROM people };
while True:
    #sql { FETCH :positer INTO :name, :year };
    if positer.endfetch():
        break
    process(name, year)
positer.close()
"""

JDBC_ITERATOR_SNIPPET = """\
stmt = conn.prepare_statement("SELECT name, year FROM people")
rs = stmt.execute_query()
while rs.next():
    name = rs.get_string(1)
    year = rs.get_int(2)
    process(name, year)
rs.close()
stmt.close()
"""


def count_statements(snippet: str) -> int:
    """Logical statements: non-empty lines that are not pure control
    punctuation."""
    return sum(
        1
        for line in snippet.splitlines()
        if line.strip() and line.strip() not in ("break",)
    )


def count_tokens(snippet: str) -> int:
    source = snippet.replace("#sql", "sql_marker")
    tokens = list(
        pytokenize.generate_tokens(io.StringIO(source).readline)
    )
    return sum(
        1
        for t in tokens
        if t.type
        not in (
            pytokenize.NEWLINE,
            pytokenize.NL,
            pytokenize.INDENT,
            pytokenize.DEDENT,
            pytokenize.ENDMARKER,
        )
    )


class TestConcisenesCounts:
    def test_insert_example_counts(self):
        rows = []
        for label, sqlj, jdbc in [
            ("insert", SQLJ_INSERT_SNIPPET, JDBC_INSERT_SNIPPET),
            ("iterate", SQLJ_ITERATOR_SNIPPET, JDBC_ITERATOR_SNIPPET),
        ]:
            sqlj_statements = count_statements(sqlj)
            jdbc_statements = count_statements(jdbc)
            sqlj_tokens = count_tokens(sqlj)
            jdbc_tokens = count_tokens(jdbc)
            rows.append(
                (
                    label,
                    sqlj_statements,
                    jdbc_statements,
                    f"{jdbc_statements / sqlj_statements:.1f}x",
                    sqlj_tokens,
                    jdbc_tokens,
                    f"{jdbc_tokens / sqlj_tokens:.1f}x",
                )
            )
            assert sqlj_statements < jdbc_statements
            assert sqlj_tokens < jdbc_tokens
        report(
            "E1: SQLJ vs dbapi code size (paper slide 7)",
            rows,
            ("example", "sqlj stmts", "dbapi stmts", "stmt ratio",
             "sqlj tokens", "dbapi tokens", "token ratio"),
            metrics=True,
        )
        # The INSERT example: the paper shows 1 clause vs 4 statements.
        assert rows[0][1] == 1
        assert rows[0][2] == 4


SQLJ_PROGRAM = """
def insert(n):
    #sql { INSERT INTO emp VALUES (:n) };
    pass
"""


@pytest.fixture(scope="module")
def e1_setup():
    database, session = make_emps_db(0, name="e1")
    session.execute("create table emp (n integer)")
    with tempfile.TemporaryDirectory() as workdir:
        module, _result = translate_and_import(
            SQLJ_PROGRAM, "e1_sqlj_mod", database, workdir
        )
        context = set_default_context(database)
        from repro import DriverManager

        conn = DriverManager.get_connection(
            "pydbc:standard:x", database=database
        )
        yield module, conn, context


@pytest.mark.benchmark(group="e1-insert")
def test_sqlj_insert_runtime(benchmark, e1_setup):
    module, _conn, _ctx = e1_setup
    benchmark(module.insert, 7)


@pytest.mark.benchmark(group="e1-insert")
def test_dbapi_insert_runtime(benchmark, e1_setup):
    _module, conn, _ctx = e1_setup

    def jdbc_style():
        stmt = conn.prepare_statement("INSERT INTO emp VALUES (?)")
        stmt.set_int(1, 7)
        stmt.execute()
        stmt.close()

    benchmark(jdbc_style)


@pytest.mark.benchmark(group="e1-insert")
def test_dbapi_insert_prepared_once_runtime(benchmark, e1_setup):
    _module, conn, _ctx = e1_setup
    stmt = conn.prepare_statement("INSERT INTO emp VALUES (?)")

    def bound():
        stmt.set_int(1, 7)
        stmt.execute()

    benchmark(bound)


def test_tracing_disabled_overhead_negligible(e1_setup):
    """The no-op tracer must add <5% to the E1 insert workload."""
    module, _conn, ctx = e1_setup
    # The suite-wide autouse fixture clears the default context after
    # every test; the module-scoped fixture installed it only once.
    from repro import ConnectionContext

    ConnectionContext.set_default_context(ctx)
    statements = 200

    def workload():
        for _ in range(statements):
            module.insert(7)

    overhead, best = assert_tracing_overhead(
        workload, statements_per_run=statements, budget=0.05
    )
    report(
        "E1: no-op tracing overhead",
        [(f"{best * 1e3:.2f}", f"{overhead * 1e6:.1f}",
          f"{overhead / best:.2%}")],
        ("workload ms", "hook cost us", "share"),
    )
