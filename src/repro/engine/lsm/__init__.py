"""LSM-backed table storage: memtable + SSTable runs + manifest.

Selected per database directory with
``repro.connect(url, durable=True, storage="lsm")`` (or
``repro.open_database(directory, storage="lsm")``); the default
remains the snapshot engine.  See docs/STORAGE.md for the full
walkthrough and the tradeoff table, and the module docstrings here for
the layer-by-layer contracts:

* :mod:`repro.engine.lsm.sstable` — immutable sorted run files with
  Bloom filters and sparse block indexes;
* :mod:`repro.engine.lsm.manifest` — the atomically-replaced file
  naming the live runs;
* :mod:`repro.engine.lsm.store` — flush, merged reads, vacuum/DDL
  hooks and background size-tiered compaction.
"""

from repro.engine.lsm.manifest import MANIFEST_FILENAME
from repro.engine.lsm.sstable import SSTableReader, write_sstable
from repro.engine.lsm.store import LsmStore

__all__ = [
    "LsmStore",
    "MANIFEST_FILENAME",
    "SSTableReader",
    "write_sstable",
]
