"""Differential testing: repro engine vs stdlib ``sqlite3``.

The same seeded workloads (SELECT / INSERT / UPDATE / DELETE over the
:class:`repro.testing.WorkloadGenerator` schema) run against both
engines.  After every statement the outcomes must agree:

* query results as **multisets** of rows (order is not part of the
  contract — generated SELECTs carry no ORDER BY);
* update counts for DML;
* error behaviour — a statement both engines reject counts as
  agreement (the taxonomies differ, the accept/reject boundary must
  not);

and at the end of each workload the full table contents must match.

Known, deliberate divergences live in :data:`ALLOWLIST`; an empty entry
list documents that none are currently needed.  Every observed
divergence must match an allowlist entry or the test fails with a
replayable report (seed + statement index + statement text).
"""

from __future__ import annotations

import sqlite3
from typing import Any, List, Optional, Tuple

from repro import errors
from repro import Database
from repro.engine.durability import open_database
from repro.testing import (
    WorkloadGenerator,
    retry_serialization,
    run_concurrent,
)

#: Accepted engine-vs-sqlite divergences: substring of the offending
#: statement -> reason.  Keep this list empty unless a divergence is
#: understood and deliberate; unexplained divergences fail the suite.
ALLOWLIST: List[Tuple[str, str]] = []

SEEDS = (101, 202, 303, 404)
STATEMENTS_PER_SEED = 60  # 4 seeds x 60 = 240 generated statements
SEED_ROWS = 25


def _allowlisted(statement: str) -> Optional[str]:
    for fragment, reason in ALLOWLIST:
        if fragment in statement:
            return reason
    return None


def _normalise(rows: Any) -> List[Tuple[Any, ...]]:
    """Order-insensitive canonical form of a result set."""
    return sorted((tuple(row) for row in rows), key=repr)


class _ReproRunner:
    def __init__(self, seed: int) -> None:
        self.session = Database(name=f"diff{seed}").create_session(
            autocommit=True
        )

    def run(self, statement: str):
        result = self.session.execute(statement)
        if result.is_rowset:
            return ("rows", _normalise(result.rows))
        return ("count", result.update_count)


class _SqliteRunner:
    def __init__(self) -> None:
        self.conn = sqlite3.connect(":memory:")

    def run(self, statement: str):
        cursor = self.conn.execute(statement)
        if cursor.description is not None:
            return ("rows", _normalise(cursor.fetchall()))
        # sqlite reports -1 for statements with no row count (DDL);
        # the repro engine reports 0.  DML is always >= 0 on both, so
        # clamping cannot mask a real DML divergence.
        return ("count", max(cursor.rowcount, 0))


def _run_workload(seed: int, count: int) -> List[str]:
    """Run one generated workload on both engines; return divergences."""
    gen = WorkloadGenerator(seed=seed)
    statements = (
        [gen.ddl()] + gen.seed_statements(SEED_ROWS)
        + gen.statements(count)
    )
    repro = _ReproRunner(seed)
    sqlite = _SqliteRunner()
    divergences: List[str] = []

    for index, statement in enumerate(statements):
        repro_outcome = repro_error = None
        sqlite_outcome = sqlite_error = None
        try:
            repro_outcome = repro.run(statement)
        except errors.SQLException as exc:
            repro_error = exc
        try:
            sqlite_outcome = sqlite.run(statement)
        except sqlite3.Error as exc:
            sqlite_error = exc

        if (repro_error is None) != (sqlite_error is None):
            diverged = (
                f"seed={seed} stmt#{index} accept/reject split "
                f"(repro={repro_error!r}, sqlite={sqlite_error!r}): "
                f"{statement}"
            )
        elif repro_error is not None:
            continue  # both rejected: agreement
        elif repro_outcome != sqlite_outcome:
            diverged = (
                f"seed={seed} stmt#{index} result mismatch "
                f"(repro={repro_outcome!r}, sqlite={sqlite_outcome!r}): "
                f"{statement}"
            )
        else:
            continue
        if _allowlisted(statement) is None:
            divergences.append(diverged)

    final_repro = repro.run(f"SELECT * FROM {gen.table}")
    final_sqlite = sqlite.run(f"SELECT * FROM {gen.table}")
    if final_repro != final_sqlite:
        divergences.append(
            f"seed={seed} final table state mismatch: "
            f"repro={final_repro!r} sqlite={final_sqlite!r}"
        )
    repro.session.close()
    sqlite.conn.close()
    return divergences


class TestDifferential:
    def test_generated_workloads_match_sqlite(self):
        all_divergences: List[str] = []
        for seed in SEEDS:
            all_divergences.extend(
                _run_workload(seed, STATEMENTS_PER_SEED)
            )
        assert not all_divergences, "\n".join(all_divergences)

    def test_workload_is_replayable(self):
        """The differential harness itself is deterministic: the same
        seed generates byte-identical statement streams."""
        first = WorkloadGenerator(seed=SEEDS[0]).statements(50)
        second = WorkloadGenerator(seed=SEEDS[0]).statements(50)
        assert first == second

    def test_indexed_engine_matches_unindexed(self):
        """Repro-vs-repro: secondary indexes are pure access-path
        choices, so the same generated workload (240+ statements across
        4 seeds) must produce identical outcomes — results, update
        counts, and error classes — with and without indexes on every
        workload column."""
        index_ddl = [
            "CREATE INDEX wl_id ON workload (id)",
            "CREATE INDEX wl_grp ON workload (grp)",
            "CREATE INDEX wl_grp_amount ON workload (grp, amount)",
        ]
        divergences: List[str] = []
        for seed in SEEDS:
            gen = WorkloadGenerator(seed=seed)
            statements = (
                [gen.ddl()] + gen.seed_statements(SEED_ROWS)
                + gen.statements(STATEMENTS_PER_SEED)
            )
            plain = _ReproRunner(seed)
            indexed = _ReproRunner(seed)
            for index, statement in enumerate(statements):
                if index == 1:
                    # Table exists now; index half the pair before any
                    # data lands so maintenance runs through the whole
                    # stream.
                    for ddl in index_ddl:
                        indexed.run(ddl)
                try:
                    mine = plain.run(statement)
                except errors.SQLException as exc:
                    mine = ("error", type(exc).__name__)
                try:
                    theirs = indexed.run(statement)
                except errors.SQLException as exc:
                    theirs = ("error", type(exc).__name__)
                if mine != theirs:
                    divergences.append(
                        f"seed={seed} stmt#{index} "
                        f"(plain={mine!r}, indexed={theirs!r}): "
                        f"{statement}"
                    )
            final_plain = plain.run(f"SELECT * FROM {gen.table}")
            final_indexed = indexed.run(f"SELECT * FROM {gen.table}")
            if final_plain != final_indexed:
                divergences.append(
                    f"seed={seed} final state mismatch"
                )
            plain.session.close()
            indexed.session.close()
        assert not divergences, "\n".join(divergences)

    def test_concurrent_history_replays_serially(self, tmp_path):
        """Snapshot-equivalence of concurrent histories: N sessions run
        generated transactions concurrently under MVCC; the WAL then
        holds that history with each statement's snapshot and each
        commit's stamp.  Crash recovery replays it *serially*, and the
        replayed state must be byte-identical to what the concurrent
        execution produced — zero divergences."""
        directory = str(tmp_path / "concdiff")
        db = open_database(
            directory, sync=False, checkpoint_interval=0
        )
        setup = db.create_session("dba", autocommit=True)
        gen = WorkloadGenerator(seed=4242)
        setup.execute(gen.ddl())
        for statement in gen.seed_statements(SEED_ROWS):
            setup.execute(statement)

        def worker(index):
            worker_gen = WorkloadGenerator(seed=5000 + index)
            session = db.create_session("dba", autocommit=False)
            session.lock_timeout = 2.0
            try:
                for _ in range(6):
                    statements = [
                        worker_gen.statement() for _ in range(3)
                    ]

                    def txn():
                        for sql in statements:
                            session.execute(sql)
                        session.commit()

                    retry_serialization(
                        txn, attempts=50, on_failure=session.rollback
                    )
            finally:
                session.close()

        run_concurrent(6, worker, timeout=120.0).raise_first()
        concurrent_state = _normalise(
            setup.execute(f"SELECT * FROM {gen.table}").rows
        )
        setup.close()
        # Crash without a checkpoint: the WAL still holds the entire
        # concurrent history for recovery to replay serially.
        db.durability.close(checkpoint=False)

        replayed = open_database(directory)
        check = replayed.create_session("dba", autocommit=True)
        replayed_state = _normalise(
            check.execute(f"SELECT * FROM {gen.table}").rows
        )
        assert replayed_state == concurrent_state
        for table in replayed.catalog.tables.values():
            for index_ in table.indexes:
                index_.verify_against_heap()
        check.close()
        replayed.close()

    def test_update_heavy_workload_matches(self):
        """A dedicated update/delete-heavy stream (skewed away from the
        select-heavy default mix) still agrees on final state."""
        seed = 777
        gen = WorkloadGenerator(seed=seed)
        repro = _ReproRunner(seed)
        sqlite = _SqliteRunner()
        repro.run(gen.ddl())
        sqlite.run(gen.ddl())
        for statement in gen.seed_statements(30):
            repro.run(statement)
            sqlite.run(statement)
        divergences = []
        for index in range(60):
            statement = (
                gen.update() if index % 3 else gen.delete()
            )
            if index % 7 == 0:
                statement = gen.insert()
            try:
                mine = repro.run(statement)
            except errors.SQLException as exc:
                mine = ("error", type(exc).__name__)
            try:
                theirs = sqlite.run(statement)
            except sqlite3.Error:
                theirs = ("error", "sqlite")
            both_errored = mine[0] == "error" and theirs[0] == "error"
            if mine != theirs and not both_errored:
                divergences.append(f"stmt#{index}: {statement}")
        assert repro.run(f"SELECT * FROM {gen.table}") == sqlite.run(
            f"SELECT * FROM {gen.table}"
        )
        assert not divergences, "\n".join(divergences)
        repro.session.close()
        sqlite.conn.close()
