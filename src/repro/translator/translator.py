"""The SQLJ translator driver.

Orchestrates the paper's translation phase: scan ``#sql`` clauses, build
profile entries (host variables become ``?`` markers), run the SQLChecker
framework over every entry (semantic analysis slide), verify typed
iterators against declared shapes, then emit the generated Python module
and serialized profiles (code-generation slides).

Any error-severity check message fails translation — ahead-of-time
checking is the point.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro import errors
from repro.profiles.model import EntryInfo, Profile, TypeInfo
from repro.profiles.pjar import build_pjar
from repro.profiles.serialization import save_profile
from repro.runtime.api import resolve_type_name
from repro.runtime.iterators import _static_type_compatible
from repro.sqltypes import parse_type
from repro.translator.checker import (
    CheckMessage,
    OfflineChecker,
    OnlineChecker,
    SQLChecker,
)
from repro.translator.clauses import (
    ExecutableClause,
    IteratorDecl,
    ScannedProgram,
    scan_source,
)
from repro.translator.codegen import CodeGenerator
from repro.translator.hostvars import (
    FetchClause,
    SelectInto,
    extract_host_variables,
    parse_fetch,
    parse_select_into,
)

__all__ = [
    "TranslationOptions",
    "TranslationResult",
    "Translator",
    "translate_source",
    "translate_file",
]

_ROLE_BY_FIRST_WORD = {
    "SELECT": "QUERY",
    "INSERT": "UPDATE",
    "UPDATE": "UPDATE",
    "DELETE": "UPDATE",
    "CALL": "CALL",
    "COMMIT": "TXN",
    "ROLLBACK": "TXN",
}


@dataclass
class TranslationOptions:
    """Configuration of one translator run.

    ``exemplar`` enables online semantic checking (a Database or Session
    whose catalog mirrors the deployment target).  ``checkers`` appends
    plug-in checkers applied to every entry; ``context_checkers`` maps a
    connection-context *expression* (as written in ``[ctx]``) to extra
    checkers for that context's clauses — the paper's per-context
    SQLChecker0/SQLChecker1 picture.  ``warnings_as_errors`` hardens CI
    builds.
    """

    exemplar: Any = None
    checkers: List[SQLChecker] = field(default_factory=list)
    context_checkers: Dict[str, List[SQLChecker]] = field(
        default_factory=dict
    )
    warnings_as_errors: bool = False


@dataclass
class TranslationResult:
    """Everything a translator run produced."""

    module_name: str
    python_source: str
    profiles: List[Profile]
    messages: List[CheckMessage] = field(default_factory=list)
    module_path: Optional[str] = None
    profile_paths: List[str] = field(default_factory=list)
    pjar_path: Optional[str] = None


class Translator:
    """Translates ``.psqlj`` source into Python + profiles."""

    def __init__(self, options: Optional[TranslationOptions] = None):
        self.options = options or TranslationOptions()
        self._offline = OfflineChecker()
        self._online: Optional[OnlineChecker] = None
        if self.options.exemplar is not None:
            self._online = OnlineChecker(self.options.exemplar)

    # ------------------------------------------------------------------
    def translate_source(
        self, source: str, module_name: str
    ) -> TranslationResult:
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", module_name):
            raise errors.TranslationError(
                f"invalid module name {module_name!r}"
            )
        program = scan_source(source)
        iterator_decls = {d.name: d for d in program.iterator_decls()}

        profiles: List[Profile] = []
        profile_by_context: Dict[Optional[str], Profile] = {}
        profile_vars: Dict[str, str] = {}
        entry_refs: Dict[int, tuple] = {}
        fetches: Dict[int, FetchClause] = {}
        iterator_classes: Dict[int, Optional[str]] = {}
        scalar_targets: Dict[int, str] = {}
        select_intos: Dict[int, SelectInto] = {}
        entry_clauses: List[Tuple[Profile, EntryInfo, ExecutableClause]] = []
        messages: List[CheckMessage] = []

        for clause in program.executable_clauses():
            fetch = parse_fetch(clause.sql)
            if fetch is not None:
                fetches[id(clause)] = fetch
                messages.extend(
                    self._check_fetch(clause, fetch, program, iterator_decls)
                )
                continue

            select_into = None
            clause_sql = clause.sql
            if clause.target is None:
                select_into = parse_select_into(clause.sql)
                if select_into is not None:
                    clause_sql = select_into.sql
                    select_intos[id(clause)] = select_into

            sql, hostvars = extract_host_variables(clause_sql)
            first_word = (
                sql.lstrip("( \t\r\n").split(None, 1)[0].upper()
                if sql.strip() else ""
            )
            role = _ROLE_BY_FIRST_WORD.get(first_word, "DDL")
            if sql.lstrip().startswith("("):
                role = "QUERY"
            if first_word.startswith("VALUES"):
                # Scalar expression clause: ``#sql x = { VALUES(f(:a)) }``
                # executes as a one-row, one-column query.
                role = "VALUES"
                sql = "SELECT " + sql.lstrip()[len("VALUES"):].strip()

            if role != "CALL":
                bad_modes = [
                    hv.name for hv in hostvars if hv.mode != "IN"
                ]
                if bad_modes:
                    messages.append(
                        CheckMessage(
                            "error",
                            "OUT/INOUT host variables are only allowed "
                            f"in CALL clauses: {', '.join(bad_modes)}",
                            clause.line,
                            "translator",
                        )
                    )

            profile = profile_by_context.get(clause.context_expr)
            if profile is None:
                index = len(profiles)
                profile = Profile(
                    name=f"{module_name}_SJProfile{index}",
                    context_type=clause.context_expr or "DefaultContext",
                )
                profiles.append(profile)
                profile_by_context[clause.context_expr] = profile
                profile_vars[profile.name] = f"_sqlj_profile_{index}"

            entry = EntryInfo(
                index=len(profile.data),
                sql=sql,
                role="QUERY" if role == "VALUES" else role,
                param_types=[
                    TypeInfo(name=v.name, mode=v.mode) for v in hostvars
                ],
                source_line=clause.line,
            )
            profile.data.add(entry)
            entry_refs[id(clause)] = (
                profile_vars[profile.name],
                entry.index,
                hostvars,
            )
            entry_clauses.append((profile, entry, clause))

            iterator_classes[id(clause)] = None
            if clause.target is not None:
                if role == "VALUES":
                    scalar_targets[id(clause)] = clause.target
                else:
                    messages.extend(
                        self._check_assignment(
                            clause, entry, program, iterator_decls,
                            iterator_classes,
                        )
                    )

        # Run the checker stack over every entry.
        for profile, entry, clause in entry_clauses:
            for checker in self._checkers_for(clause.context_expr):
                messages.extend(checker.check(entry))
            if entry.role == "QUERY" and self._online is not None:
                described = self._online.describe(entry)
                if described is not None:
                    entry.result_types = described
                    messages.extend(
                        self._check_iterator_shape(
                            clause, entry, iterator_decls,
                            iterator_classes,
                        )
                    )
                    select_into = select_intos.get(id(clause))
                    if select_into is not None and \
                            len(described) != len(select_into.targets):
                        messages.append(
                            CheckMessage(
                                "error",
                                f"SELECT INTO has "
                                f"{len(select_into.targets)} targets "
                                f"but the query returns "
                                f"{len(described)} columns",
                                clause.line,
                                "translator",
                            )
                        )

        hard_errors = [m for m in messages if m.is_error]
        if self.options.warnings_as_errors:
            hard_errors = messages
        if hard_errors:
            summary = "; ".join(m.format() for m in hard_errors)
            error = errors.TranslationError(
                f"translation failed with {len(hard_errors)} error(s): "
                f"{summary}"
            )
            error.messages = messages  # type: ignore[attr-defined]
            raise error

        generator = CodeGenerator(
            program,
            f"{module_name}.psqlj",
            profiles,
            profile_vars,
            entry_refs,
            fetches,
            iterator_classes,
            scalar_targets,
            select_intos,
        )
        return TranslationResult(
            module_name=module_name,
            python_source=generator.generate(),
            profiles=profiles,
            messages=messages,
        )

    # ------------------------------------------------------------------
    def translate_file(
        self,
        path: str,
        output_dir: Optional[str] = None,
        package: bool = False,
    ) -> TranslationResult:
        """Translate ``path`` and write the module + profiles (and
        optionally a ``.pjar``) into ``output_dir``."""
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        base = os.path.splitext(os.path.basename(path))[0]
        module_name = re.sub(r"\W", "_", base)
        result = self.translate_source(source, module_name)

        directory = output_dir or os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        module_path = os.path.join(directory, module_name + ".py")
        with open(module_path, "w", encoding="utf-8") as handle:
            handle.write(result.python_source)
        result.module_path = module_path
        for profile in result.profiles:
            result.profile_paths.append(save_profile(profile, directory))
        if package:
            pjar_path = os.path.join(directory, module_name + ".pjar")
            build_pjar(
                pjar_path, [module_path] + result.profile_paths
            )
            result.pjar_path = pjar_path
        return result

    # ------------------------------------------------------------------
    def _checkers_for(self, context_expr: Optional[str]):
        stack: List[SQLChecker] = [self._offline]
        if self._online is not None:
            stack.append(self._online)
        stack.extend(self.options.checkers)
        if context_expr is not None:
            stack.extend(
                self.options.context_checkers.get(context_expr, [])
            )
        return stack

    def _resolve_iterator_class(
        self,
        variable: str,
        clause: ExecutableClause,
        program: ScannedProgram,
        iterator_decls: Dict[str, IteratorDecl],
    ) -> Tuple[Optional[str], List[CheckMessage]]:
        class_name = program.annotation_for(variable, clause.line)
        if class_name is None:
            return None, [
                CheckMessage(
                    "error",
                    f"iterator variable {variable!r} has no type "
                    f"annotation; declare it as e.g. "
                    f"'{variable}: SomeIterator' before the #sql clause",
                    clause.line,
                    "translator",
                )
            ]
        return class_name, []

    def _check_assignment(
        self,
        clause: ExecutableClause,
        entry: EntryInfo,
        program: ScannedProgram,
        iterator_decls: Dict[str, IteratorDecl],
        iterator_classes: Dict[int, Optional[str]],
    ) -> List[CheckMessage]:
        messages: List[CheckMessage] = []
        if entry.role != "QUERY":
            messages.append(
                CheckMessage(
                    "error",
                    "assignment clauses require a query (SELECT)",
                    clause.line,
                    "translator",
                )
            )
            return messages
        class_name, resolution_messages = self._resolve_iterator_class(
            clause.target, clause, program, iterator_decls
        )
        messages.extend(resolution_messages)
        if class_name is not None:
            iterator_classes[id(clause)] = class_name
            entry.iterator_class = class_name
            if class_name not in iterator_decls:
                messages.append(
                    CheckMessage(
                        "error",
                        f"iterator class {class_name!r} is not declared "
                        f"with '#sql iterator {class_name} (...)' in this "
                        f"file",
                        clause.line,
                        "translator",
                    )
                )
        return messages

    def _check_fetch(
        self,
        clause: ExecutableClause,
        fetch: FetchClause,
        program: ScannedProgram,
        iterator_decls: Dict[str, IteratorDecl],
    ) -> List[CheckMessage]:
        messages: List[CheckMessage] = []
        class_name = program.annotation_for(
            fetch.iterator_var, clause.line
        )
        if class_name is None:
            messages.append(
                CheckMessage(
                    "error",
                    f"FETCH iterator {fetch.iterator_var!r} has no type "
                    "annotation",
                    clause.line,
                    "translator",
                )
            )
            return messages
        decl = iterator_decls.get(class_name)
        if decl is None:
            messages.append(
                CheckMessage(
                    "error",
                    f"iterator class {class_name!r} is not declared in "
                    "this file",
                    clause.line,
                    "translator",
                )
            )
            return messages
        if not decl.positional:
            messages.append(
                CheckMessage(
                    "error",
                    f"FETCH requires a positional iterator; "
                    f"{class_name!r} is named",
                    clause.line,
                    "translator",
                )
            )
        elif len(fetch.targets) != len(decl.columns):
            messages.append(
                CheckMessage(
                    "error",
                    f"FETCH INTO has {len(fetch.targets)} targets but "
                    f"iterator {class_name!r} declares "
                    f"{len(decl.columns)} columns",
                    clause.line,
                    "translator",
                )
            )
        return messages

    def _check_iterator_shape(
        self,
        clause: ExecutableClause,
        entry: EntryInfo,
        iterator_decls: Dict[str, IteratorDecl],
        iterator_classes: Dict[int, Optional[str]],
    ) -> List[CheckMessage]:
        """Typed-iterator conformance against the described query shape."""
        class_name = iterator_classes.get(id(clause))
        if class_name is None:
            return []
        decl = iterator_decls.get(class_name)
        if decl is None:
            return []
        messages: List[CheckMessage] = []
        described = entry.result_types

        if decl.positional:
            if len(decl.columns) != len(described):
                messages.append(
                    CheckMessage(
                        "error",
                        f"iterator {class_name!r} declares "
                        f"{len(decl.columns)} columns but the query "
                        f"returns {len(described)}",
                        clause.line,
                        "translator",
                    )
                )
                return messages
            pairs = list(zip(decl.columns, described))
        else:
            by_name = {t.name: t for t in described if t.name}
            pairs = []
            for column_name, type_name in decl.columns:
                info = by_name.get(column_name.lower())
                if info is None:
                    messages.append(
                        CheckMessage(
                            "error",
                            f"iterator {class_name!r} requires column "
                            f"{column_name!r}, absent from the query",
                            clause.line,
                            "translator",
                        )
                    )
                    continue
                pairs.append(((column_name, type_name), info))

        for (column_name, type_name), info in pairs:
            if info.sql_type is None:
                continue
            try:
                host_type = resolve_type_name(type_name)
                descriptor = parse_type(info.sql_type)
            except errors.SQLException:
                continue
            if not _static_type_compatible(host_type, descriptor):
                label = column_name or "column"
                messages.append(
                    CheckMessage(
                        "error",
                        f"iterator {class_name!r} {label!r} declares "
                        f"{type_name} but the query returns "
                        f"{info.sql_type}",
                        clause.line,
                        "translator",
                    )
                )
        return messages


def translate_source(
    source: str,
    module_name: str,
    options: Optional[TranslationOptions] = None,
) -> TranslationResult:
    """Translate ``.psqlj`` text; returns sources and profiles in memory."""
    return Translator(options).translate_source(source, module_name)


def translate_file(
    path: str,
    output_dir: Optional[str] = None,
    options: Optional[TranslationOptions] = None,
    package: bool = False,
) -> TranslationResult:
    """Translate a ``.psqlj`` file to disk (module + profiles [+ pjar])."""
    return Translator(options).translate_file(path, output_dir, package)
