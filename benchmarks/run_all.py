"""Standalone benchmark runner for the fast-path query work.

Runs the three acceptance experiments from the performance PR and
writes ``BENCH_<date>.json`` next to this file:

* **hash_join** — N x N equality join, HashJoin vs NestedLoopJoin
  (``PlannerOptions.hash_joins`` off);
* **index_lookup** — repeated point lookups on an N-row table, with and
  without a secondary index (plan cache ON in both arms, fixed literal
  SQL, so the delta is purely scan vs probe);
* **plan_cache** — the same small statement executed repeatedly against
  a cache-enabled and a cache-disabled engine;
* **durability** — group commit: serial fsync-per-commit vs concurrent
  committers sharing fsyncs through the group-commit window (floor:
  >= 2 commits per fsync at batch size 16);
* **server** — the wire tax: one SELECT workload through an in-process
  connection vs ``repro://`` at 1/8/32 clients (measured, no floor);
* **server_writes** — MVCC multi-writer scaling: the same total count
  of durable autocommit INSERTs through a ``repro://`` server at 1 vs
  8 concurrent writers (floor: >= 3x aggregate commit throughput at
  8 writers);
* **bulk_load** — star-schema ingest through the batch fast path
  (``executemany`` / ``MSG_EXECUTE_BATCH``) vs per-row INSERTs, local
  and over ``repro://`` (floor: >= 10x rows/sec full, >= 5x smoke, on
  the weaker of the two paths; see ``bench_bulk_load.py``);
* **lsm_ingest** — write-stall under sustained ingest: the same
  workload (preloaded base table, per-row autocommit inserts spanning
  ten-plus checkpoints) on the snapshot engine vs the LSM engine;
  the snapshot arm pays an O(database) image rewrite at every
  checkpoint while the LSM arm pays an O(delta) memtable flush
  (floor: mean LSM flush stall <= 1/5 of the mean snapshot
  checkpoint pause, smoke and full; see ``bench_lsm_ingest.py`` and
  ``docs/STORAGE.md``);
* **planner** — cost-based vs rule-based planning of an adversarially
  FROM-ordered star join (the rule-based fold starts with a dimension
  cross product; the ANALYZE-informed planner reorders it away) —
  also asserts ``EXPLAIN (FORMAT JSON)`` reports the rejected
  FROM-order plan at a higher estimated cost (floor: >= 3x, smoke and
  full; see ``bench_planner.py``).

Each experiment records wall time, rows/sec, speedup, and the
plan-cache hit rate observed during the run.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py           # full sizes
    PYTHONPATH=src python benchmarks/run_all.py --smoke   # CI: small +
                                                          # exit 1 if the
                                                          # cached path is
                                                          # < 2x dynamic

The full run demonstrates the PR's acceptance numbers (HashJoin >= 10x,
IndexScan >= 20x, plan cache >= 2x); ``--smoke`` shrinks the data so the
whole thing finishes in seconds and enforces only the plan-cache floor,
which is size-independent.
"""

from __future__ import annotations

import argparse
import dataclasses
import datetime
import json
import os
import sys
import time
from decimal import Decimal
from typing import Any, Dict

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro import observability  # noqa: E402
from repro import Database  # noqa: E402


def _hit_rate(before: Dict[str, int]) -> Dict[str, Any]:
    after = observability.snapshot()["counters"]

    def delta(name: str) -> int:
        return after.get(name, 0) - before.get(name, 0)

    hits = delta("plan_cache.hits")
    misses = delta("plan_cache.misses")
    total = hits + misses
    return {
        "plan_cache_hits": hits,
        "plan_cache_misses": misses,
        "plan_cache_hit_rate": (hits / total) if total else None,
    }


def _timed(workload) -> float:
    start = time.perf_counter()
    workload()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# experiments
# ---------------------------------------------------------------------------


def bench_hash_join(rows: int) -> Dict[str, Any]:
    """N x N equality join: HashJoin vs NestedLoopJoin."""
    database = Database(name="bench_hj")
    session = database.create_session(autocommit=True)
    session.execute("create table l (k integer, tag varchar(10))")
    session.execute("create table r (k integer, tag varchar(10))")
    left = database.catalog.get_table("l")
    right = database.catalog.get_table("r")
    left.rows = [[i, f"l{i}"] for i in range(rows)]
    right.rows = [[i, f"r{i}"] for i in range(rows)]

    sql = "select count(*) from l join r on l.k = r.k"

    def run() -> int:
        return session.execute(sql).rows[0][0]

    assert "HashJoin" in session.execute("explain " + sql).rows[0][0] \
        or any(
            "HashJoin" in row[0]
            for row in session.execute("explain " + sql).rows
        )
    hash_seconds = _timed(run)
    matched = run()
    assert matched == rows

    database.planner_options = dataclasses.replace(
        database.planner_options, hash_joins=False
    )
    database.plan_cache.clear()
    assert any(
        "NestedLoopJoin" in row[0]
        for row in session.execute("explain " + sql).rows
    )
    nl_seconds = _timed(run)
    assert run() == matched

    return {
        "experiment": "hash_join",
        "rows_per_side": rows,
        "hash_join_seconds": hash_seconds,
        "nested_loop_seconds": nl_seconds,
        "speedup": nl_seconds / hash_seconds,
        "rows_per_second_hash": rows / hash_seconds,
        "rows_per_second_nested_loop": rows / nl_seconds,
    }


def bench_index_lookup(rows: int, lookups: int) -> Dict[str, Any]:
    """Repeated point lookups: IndexScan vs SeqScan.

    Both arms run with the plan cache enabled and byte-identical SQL, so
    parse/plan cost amortises identically and the measured gap is the
    access path alone.
    """
    database = Database(name="bench_ix")
    session = database.create_session(autocommit=True)
    session.execute("create table t (k integer, v varchar(10))")
    table = database.catalog.get_table("t")
    table.rows = [[i, f"v{i}"] for i in range(rows)]

    sql = f"select v from t where k = {rows // 2}"

    def run() -> None:
        for _ in range(lookups):
            result = session.execute(sql).rows
            assert result == [[f"v{rows // 2}"]]

    seq_seconds = _timed(run)

    session.execute("create index tk on t (k)")
    assert any(
        "IndexScan using tk on t" in row[0]
        for row in session.execute("explain " + sql).rows
    )
    before = observability.snapshot()["counters"]
    index_seconds = _timed(run)
    stats = _hit_rate(before)

    result = {
        "experiment": "index_lookup",
        "table_rows": rows,
        "lookups": lookups,
        "seqscan_seconds": seq_seconds,
        "indexscan_seconds": index_seconds,
        "speedup": seq_seconds / index_seconds,
        "lookups_per_second_indexed": lookups / index_seconds,
    }
    result.update(stats)
    return result


def bench_plan_cache(iterations: int) -> Dict[str, Any]:
    """The same statement, repeated: plan cache on vs off.

    Small table, non-trivial statement text: the repeated-statement
    workload the cache targets, where parse + plan dominate the per-row
    work (an OLTP point query, not an analytical scan).
    """
    sql = (
        "select state, count(*) as n, sum(sales) as total from emps "
        "where sales > 100 and state <> 'XX' "
        "group by state having count(*) > 0 order by total desc limit 5"
    )

    def build(cache_size: int) -> Any:
        database = Database(
            name=f"bench_pc_{cache_size}", plan_cache_size=cache_size
        )
        session = database.create_session(autocommit=True)
        session.execute(
            "create table emps (name varchar(50), state char(20), "
            "sales decimal(8,2))"
        )
        table = database.catalog.get_table("emps")
        table.rows = [
            [f"Emp{i}", f"S{i % 10}".ljust(20), Decimal(i * 10)]
            for i in range(50)
        ]
        return session

    cached_session = build(128)
    uncached_session = build(0)

    def run(session) -> None:
        for _ in range(iterations):
            session.execute(sql)

    uncached_seconds = _timed(lambda: run(uncached_session))
    before = observability.snapshot()["counters"]
    cached_seconds = _timed(lambda: run(cached_session))
    stats = _hit_rate(before)

    result = {
        "experiment": "plan_cache",
        "iterations": iterations,
        "uncached_seconds": uncached_seconds,
        "cached_seconds": cached_seconds,
        "speedup": uncached_seconds / cached_seconds,
        "statements_per_second_cached": iterations / cached_seconds,
    }
    result.update(stats)
    return result


def bench_durability(commits: int, threads: int) -> Dict[str, Any]:
    """Group commit: fsync-per-commit vs fsyncs shared across committers.

    Arm A commits serially with no grouping window — every commit pays
    its own fsync.  Arm B runs the same number of commits from
    ``threads`` concurrent sessions with a 5 ms group-commit window and
    batch size 16, so one fsync acknowledges many commits.  The reported
    "speedup" is the amortization factor (commits per fsync) in the
    grouped arm; the serial arm pins the 1.0x baseline.
    """
    import shutil
    import tempfile
    import threading as _threading

    from repro.engine.durability import open_database

    def counters() -> Dict[str, int]:
        return observability.snapshot()["counters"]

    base = tempfile.mkdtemp(prefix="bench_dur_")
    try:
        # Arm A: serial, no grouping window.
        db_a = open_database(
            os.path.join(base, "serial"),
            name="bench_dur_serial",
            checkpoint_interval=0,
        )
        serial_session = db_a.create_session(autocommit=True)
        serial_session.execute("create table t (k integer, v integer)")
        before = counters()

        def serial() -> None:
            for i in range(commits):
                serial_session.execute(
                    f"insert into t values ({i}, {i})"
                )

        serial_seconds = _timed(serial)
        after = counters()
        serial_fsyncs = after["wal.fsyncs"] - before.get("wal.fsyncs", 0)
        serial_commits = after["wal.commits"] - before.get(
            "wal.commits", 0
        )
        serial_session.close()
        db_a.close()

        # Arm B: concurrent committers sharing the group-commit window.
        db_b = open_database(
            os.path.join(base, "grouped"),
            name="bench_dur_grouped",
            group_window=0.005,
            group_size=16,
            checkpoint_interval=0,
        )
        init = db_b.create_session(autocommit=True)
        init.execute("create table t (k integer, v integer)")
        init.close()
        per_thread = commits // threads
        before = counters()

        def worker(tid: int) -> None:
            session = db_b.create_session(autocommit=True)
            for j in range(per_thread):
                session.execute(
                    f"insert into t values ({tid * 1000000 + j}, {j})"
                )
            session.close()

        def grouped() -> None:
            pool = [
                _threading.Thread(target=worker, args=(tid,))
                for tid in range(threads)
            ]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()

        grouped_seconds = _timed(grouped)
        after = counters()
        grouped_fsyncs = after["wal.fsyncs"] - before.get(
            "wal.fsyncs", 0
        )
        grouped_commits = after["wal.commits"] - before.get(
            "wal.commits", 0
        )
        db_b.close()
    finally:
        shutil.rmtree(base, ignore_errors=True)

    amortization = grouped_commits / max(1, grouped_fsyncs)
    return {
        "experiment": "durability",
        "commits": commits,
        "threads": threads,
        "serial_seconds": serial_seconds,
        "serial_commits": serial_commits,
        "serial_fsyncs": serial_fsyncs,
        "grouped_seconds": grouped_seconds,
        "grouped_commits": grouped_commits,
        "grouped_fsyncs": grouped_fsyncs,
        "commits_per_fsync": amortization,
        "speedup": amortization,
        "commits_per_second_grouped": grouped_commits / grouped_seconds,
    }


def bench_server(requests: int, client_counts=(1, 8, 32)) -> Dict[str, Any]:
    """Network round-trip cost: remote driver vs in-process connection.

    Starts a :class:`repro.server.ReproServer` in-process, then drives
    the same single-row SELECT workload through (a) a plain in-process
    connection and (b) ``repro://`` connections at 1, 8 and 32
    concurrent clients.  Per-request wall times are collected
    client-side, so the report carries real p50/p99 latencies plus
    aggregate requests/sec for every arm.

    There is no speedup floor: the point of this experiment is to
    *measure* the wire tax (the ``speedup`` field is remote/local
    throughput at one client, expected well below 1.0).
    """
    import statistics
    import threading as _threading

    import repro
    from repro.server import ReproServer

    def percentile(samples, fraction: float) -> float:
        ordered = sorted(samples)
        index = min(len(ordered) - 1, int(len(ordered) * fraction))
        return ordered[index]

    def drive(connection_factory, n_clients: int) -> Dict[str, Any]:
        latencies: list = []
        lock = _threading.Lock()
        per_client = max(1, requests // n_clients)

        def client() -> None:
            conn = connection_factory()
            stmt = conn.create_statement()
            mine = []
            for _ in range(per_client):
                begin = time.perf_counter()
                rs = stmt.execute_query(
                    "select v from bench_net where k = 7"
                )
                rs.next()
                mine.append(time.perf_counter() - begin)
            conn.close()
            with lock:
                latencies.extend(mine)

        pool = [
            _threading.Thread(target=client) for _ in range(n_clients)
        ]
        start = time.perf_counter()
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        elapsed = time.perf_counter() - start
        return {
            "clients": n_clients,
            "requests": len(latencies),
            "seconds": elapsed,
            "requests_per_second": len(latencies) / elapsed,
            "p50_ms": percentile(latencies, 0.50) * 1000,
            "p99_ms": percentile(latencies, 0.99) * 1000,
            "mean_ms": statistics.fmean(latencies) * 1000,
        }

    server = ReproServer().start_background()
    try:
        url = f"repro://127.0.0.1:{server.port}/bench_net"
        setup = repro.connect(url)
        stmt = setup.create_statement()
        stmt.execute_update("create table bench_net (k integer, v integer)")
        for i in range(32):
            stmt.execute_update(f"insert into bench_net values ({i}, {i})")
        setup.close()

        baseline = drive(
            lambda: repro.connect("pydbc:standard:bench_net"), 1
        )
        remote_arms = [
            drive(lambda: repro.connect(url), n) for n in client_counts
        ]
    finally:
        server.stop_background()
        repro.registry.clear()

    one_client = remote_arms[0]
    return {
        "experiment": "server",
        "requests": requests,
        "baseline_local": baseline,
        "remote": remote_arms,
        "speedup": (
            one_client["requests_per_second"]
            / baseline["requests_per_second"]
        ),
        "wire_overhead_ms": one_client["p50_ms"] - baseline["p50_ms"],
    }


def bench_server_writes(
    commits: int, writer_counts=(1, 8)
) -> Dict[str, Any]:
    """Write-heavy multi-writer scaling over the wire.

    A durable server (sync WAL, 5 ms group-commit window, batch 16 —
    the same configuration as the grouped arm of ``bench_durability``)
    takes autocommit INSERTs from N concurrent ``repro://`` writers,
    each writer on its own key range so no row conflicts occur.  The
    same *total* number of durable commits runs at every writer count;
    the report compares aggregate commits/sec.

    Under the old single-writer exclusive lock, DML from concurrent
    clients serialised end to end and aggregate throughput flat-lined
    as writers were added.  With MVCC, writers share the statement lock
    and only the commit stamp allocation is serialised, so concurrent
    committers overlap their WAL waits and share fsyncs through group
    commit.  ``write_throughput_scaling`` (also reported as
    ``speedup``) is commits/sec at the highest writer count over
    commits/sec at one writer; the acceptance floor is 3x.
    """
    import shutil
    import tempfile
    import threading as _threading

    import repro
    from repro.server import ReproServer

    base = tempfile.mkdtemp(prefix="bench_wr_")
    server = ReproServer(
        data_dir=base,
        group_window=0.005,
        group_size=16,
        checkpoint_interval=0,
    ).start_background()
    arms = []
    try:
        url = f"repro://127.0.0.1:{server.port}/bench_writes"
        setup = repro.connect(url)
        setup.create_statement().execute_update(
            "create table payments (k integer, v integer)"
        )
        setup.close()

        for n_writers in writer_counts:
            per_writer = commits // n_writers
            failures: list = []

            def writer(wid: int) -> None:
                try:
                    conn = repro.connect(url)
                    stmt = conn.create_statement()
                    for j in range(per_writer):
                        stmt.execute_update(
                            f"insert into payments values "
                            f"({wid * 1000000 + j}, {j})"
                        )
                    conn.close()
                except Exception as exc:  # pragma: no cover - report
                    failures.append(exc)

            pool = [
                _threading.Thread(target=writer, args=(wid,))
                for wid in range(n_writers)
            ]
            start = time.perf_counter()
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
            elapsed = time.perf_counter() - start
            if failures:
                raise failures[0]
            done = per_writer * n_writers
            arms.append(
                {
                    "writers": n_writers,
                    "commits": done,
                    "seconds": elapsed,
                    "commits_per_second": done / elapsed,
                }
            )
    finally:
        server.stop_background()
        repro.registry.clear()
        shutil.rmtree(base, ignore_errors=True)

    single = arms[0]["commits_per_second"]
    peak = arms[-1]["commits_per_second"]
    return {
        "experiment": "server_writes",
        "commits": commits,
        "arms": arms,
        "commits_per_second_single_writer": single,
        "commits_per_second_peak": peak,
        "write_throughput_scaling": peak / single,
        "speedup": peak / single,
    }


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _bench_bulk_load(facts: int) -> Dict[str, Any]:
    """Run the bulk-load experiment (lives in ``bench_bulk_load.py``)."""
    try:
        from benchmarks.bench_bulk_load import bench_bulk_load
    except ImportError:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_bulk_load import bench_bulk_load
    return bench_bulk_load(facts)


def _bench_lsm_ingest(
    base: int, rows: int, interval: int
) -> Dict[str, Any]:
    """Run the LSM ingest experiment (``bench_lsm_ingest.py``)."""
    try:
        from benchmarks.bench_lsm_ingest import bench_lsm_ingest
    except ImportError:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_lsm_ingest import bench_lsm_ingest
    return bench_lsm_ingest(base, rows, interval)


def _bench_planner(facts: int, dims: int) -> Dict[str, Any]:
    """Run the planner experiment (lives in ``bench_planner.py``)."""
    try:
        from benchmarks.bench_planner import bench_planner
    except ImportError:
        sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
        from bench_planner import bench_planner
    return bench_planner(facts, dims)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small datasets; exit 1 if the plan cache is < 2x",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="path for the JSON report (default: BENCH_<date>.json "
        "next to this script)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        sizes = {"join_rows": 1000, "table_rows": 2000,
                 "lookups": 200, "iterations": 500,
                 "commits": 64, "commit_threads": 8,
                 "server_requests": 256, "write_commits": 192,
                 "bulk_facts": 300,
                 "lsm_base": 30_000, "lsm_rows": 1200,
                 "lsm_interval": 100,
                 "planner_facts": 4000, "planner_dims": 200}
    else:
        sizes = {"join_rows": 10_000, "table_rows": 10_000,
                 "lookups": 500, "iterations": 2000,
                 "commits": 256, "commit_threads": 16,
                 "server_requests": 2048, "write_commits": 512,
                 "bulk_facts": 2000,
                 "lsm_base": 60_000, "lsm_rows": 2000,
                 "lsm_interval": 150,
                 "planner_facts": 20_000, "planner_dims": 400}

    results = []
    for name, run in (
        ("hash_join", lambda: bench_hash_join(sizes["join_rows"])),
        ("index_lookup", lambda: bench_index_lookup(
            sizes["table_rows"], sizes["lookups"])),
        ("plan_cache", lambda: bench_plan_cache(sizes["iterations"])),
        ("durability", lambda: bench_durability(
            sizes["commits"], sizes["commit_threads"])),
        ("server", lambda: bench_server(sizes["server_requests"])),
        ("server_writes", lambda: bench_server_writes(
            sizes["write_commits"])),
        ("bulk_load", lambda: _bench_bulk_load(sizes["bulk_facts"])),
        ("lsm_ingest", lambda: _bench_lsm_ingest(
            sizes["lsm_base"], sizes["lsm_rows"],
            sizes["lsm_interval"])),
        ("planner", lambda: _bench_planner(
            sizes["planner_facts"], sizes["planner_dims"])),
    ):
        print(f"running {name} ...", flush=True)
        outcome = run()
        print(
            f"  {name}: speedup {outcome['speedup']:.1f}x "
            f"({outcome})",
            flush=True,
        )
        results.append(outcome)

    stamp = datetime.date.today().isoformat()
    output = args.output or os.path.join(
        os.path.dirname(os.path.abspath(__file__)),
        os.pardir,
        f"BENCH_{stamp}.json",
    )
    payload = {
        "date": stamp,
        "mode": "smoke" if args.smoke else "full",
        "sizes": sizes,
        "experiments": results,
    }
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"wrote {os.path.abspath(output)}")

    failures = []
    by_name = {r["experiment"]: r for r in results}
    if by_name["plan_cache"]["speedup"] < 2.0:
        failures.append(
            f"plan cache speedup {by_name['plan_cache']['speedup']:.2f}x "
            "< 2x floor"
        )
    if by_name["durability"]["commits_per_fsync"] < 2.0:
        failures.append(
            f"group commit amortization "
            f"{by_name['durability']['commits_per_fsync']:.2f} "
            "commits/fsync < 2x floor"
        )
    if by_name["server_writes"]["write_throughput_scaling"] < 3.0:
        failures.append(
            f"multi-writer commit scaling "
            f"{by_name['server_writes']['write_throughput_scaling']:.2f}x "
            "at 8 writers < 3x floor"
        )
    bulk_floor = 5.0 if args.smoke else 10.0
    if by_name["bulk_load"]["speedup"] < bulk_floor:
        failures.append(
            f"bulk load speedup {by_name['bulk_load']['speedup']:.2f}x "
            f"< {bulk_floor:.0f}x floor (local "
            f"{by_name['bulk_load']['speedup_local']:.1f}x, remote "
            f"{by_name['bulk_load']['speedup_remote']:.1f}x)"
        )
    if by_name["lsm_ingest"]["speedup"] < 5.0:
        failures.append(
            f"LSM write stall is 1/"
            f"{by_name['lsm_ingest']['speedup']:.1f} of the snapshot "
            "checkpoint pause; floor is 1/5"
        )
    if by_name["planner"]["speedup"] < 3.0:
        failures.append(
            f"cost-based planner speedup "
            f"{by_name['planner']['speedup']:.2f}x < 3x floor"
        )
    if not args.smoke:
        if by_name["hash_join"]["speedup"] < 10.0:
            failures.append(
                f"hash join speedup "
                f"{by_name['hash_join']['speedup']:.2f}x < 10x floor"
            )
        if by_name["index_lookup"]["speedup"] < 20.0:
            failures.append(
                f"index lookup speedup "
                f"{by_name['index_lookup']['speedup']:.2f}x < 20x floor"
            )
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
