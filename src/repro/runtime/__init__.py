"""SQLJ Part 0 runtime.

Generated programs interact with the database exclusively through this
package: :class:`~repro.runtime.context.ConnectionContext` objects carry
connections (and per-profile :class:`ConnectedProfile` caches), the typed
iterator classes in :mod:`repro.runtime.iterators` implement the paper's
strongly typed cursors, and :mod:`repro.runtime.api` holds the entry
points the translator's generated code calls (``sqlj.execute``,
``sqlj.query``, ``sqlj.fetch``, ``sqlj.load_profile``).

``sqlj`` and the iterator classes stay eagerly importable here — they
are the translator's code-generation targets.  ``ConnectionContext``
and ``ExecutionContext`` moved to the top-level :mod:`repro` façade;
importing them from ``repro.runtime`` still works but emits
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Any, List

from repro.runtime import api as sqlj
from repro.runtime.iterators import (
    NamedIterator,
    PositionalIterator,
    SQLJIterator,
)

__all__ = [
    "sqlj",
    "ConnectionContext",
    "ExecutionContext",
    "SQLJIterator",
    "PositionalIterator",
    "NamedIterator",
]

_FACADE_NAMES = ("ConnectionContext", "ExecutionContext")


def __getattr__(name: str) -> Any:
    if name not in _FACADE_NAMES:
        raise AttributeError(
            f"module 'repro.runtime' has no attribute {name!r}"
        )
    warnings.warn(
        f"importing {name} from repro.runtime is deprecated; "
        "import it from the top-level repro package instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.runtime import context

    return getattr(context, name)


def __dir__() -> List[str]:
    return sorted(set(globals()) | set(__all__))
