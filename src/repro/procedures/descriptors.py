"""Deployment descriptors (SQLJ Part 1).

A deployment descriptor is "a text file containing the create and grant
statements to do on install_jar, and the drop and revoke statements to do
on remove_jar".  The paper's syntax::

    SQLActions[ ] = {
        BEGIN INSTALL
            create procedure ... ;
            grant execute on ... ;
        END INSTALL,
        BEGIN REMOVE
            drop procedure ... ;
        END REMOVE
    }

``install_par`` runs the INSTALL actions implicitly after registering the
archive; ``remove_par`` runs the REMOVE actions before dropping it.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List

from repro import errors

__all__ = ["DeploymentDescriptor", "split_sql_statements"]

_INSTALL_RE = re.compile(
    r"BEGIN\s+INSTALL(?P<body>.*?)END\s+INSTALL", re.IGNORECASE | re.DOTALL
)
_REMOVE_RE = re.compile(
    r"BEGIN\s+REMOVE(?P<body>.*?)END\s+REMOVE", re.IGNORECASE | re.DOTALL
)
_HEADER_RE = re.compile(r"SQLActions\s*\[\s*\]\s*=\s*\{", re.IGNORECASE)


def split_sql_statements(text: str) -> List[str]:
    """Split SQL text on ``;`` while honouring string literals and
    line comments."""
    statements: List[str] = []
    current: List[str] = []
    in_string = False
    i = 0
    while i < len(text):
        ch = text[i]
        if in_string:
            current.append(ch)
            if ch == "'":
                if i + 1 < len(text) and text[i + 1] == "'":
                    current.append("'")
                    i += 1
                else:
                    in_string = False
        elif ch == "'":
            in_string = True
            current.append(ch)
        elif ch == "-" and text[i: i + 2] == "--":
            while i < len(text) and text[i] != "\n":
                i += 1
            continue
        elif ch == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
        else:
            current.append(ch)
        i += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements


@dataclass
class DeploymentDescriptor:
    """Parsed deployment descriptor: install and remove action lists."""

    install_actions: List[str] = field(default_factory=list)
    remove_actions: List[str] = field(default_factory=list)

    @classmethod
    def parse(cls, text: str) -> "DeploymentDescriptor":
        if not _HEADER_RE.search(text):
            raise errors.ParInstallationError(
                "deployment descriptor lacks the SQLActions[] header"
            )
        install_match = _INSTALL_RE.search(text)
        remove_match = _REMOVE_RE.search(text)
        descriptor = cls()
        if install_match:
            descriptor.install_actions = split_sql_statements(
                install_match.group("body")
            )
        if remove_match:
            descriptor.remove_actions = split_sql_statements(
                remove_match.group("body")
            )
        return descriptor

    def render(self) -> str:
        """Serialise back to the paper's textual form."""
        def block(statements: List[str]) -> str:
            return "".join(f"    {s};\n" for s in statements)

        return (
            "SQLActions[ ] = {\n"
            "  BEGIN INSTALL\n"
            f"{block(self.install_actions)}"
            "  END INSTALL,\n"
            "  BEGIN REMOVE\n"
            f"{block(self.remove_actions)}"
            "  END REMOVE\n"
            "}\n"
        )
