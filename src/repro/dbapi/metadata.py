"""DatabaseMetaData: catalog introspection.

Implements the JDBC 2.0 metadata surface the paper calls out, most
notably ``get_udts`` ("Metadata for user-defined types"), whose result
matches the paper's example::

    types = [typecodes.PY_OBJECT]
    rs = dmd.get_udts("catalog-name", "schema-name", "%", types)

plus ``get_tables``, ``get_columns``, ``get_procedures`` and
``get_procedure_columns`` for completeness.
"""

from __future__ import annotations

import fnmatch
from typing import Any, List, Optional, Sequence

from repro.dbapi.resultset import ResultSet
from repro.engine.database import StatementResult
from repro.engine.expressions import ColumnInfo, RowShape
from repro.sqltypes import (
    IntegerType,
    VarCharType,
    typecodes,
)

__all__ = ["DatabaseMetaData"]


def _like_to_fnmatch(pattern: Optional[str]) -> str:
    """Convert a SQL LIKE metadata pattern (%/_) to fnmatch (*/?)."""
    if pattern is None:
        return "*"
    return pattern.replace("%", "*").replace("_", "?")


def _shape(*columns: Any) -> RowShape:
    return RowShape([ColumnInfo(None, name, desc) for name, desc in columns])


def _rowset(shape: RowShape, rows: List[List[Any]]) -> ResultSet:
    return ResultSet(StatementResult("rowset", rows=rows, shape=shape))


class DatabaseMetaData:
    """Mirrors ``java.sql.DatabaseMetaData`` (the slices SQLJ uses)."""

    def __init__(self, connection: Any) -> None:
        self.connection = connection
        self._catalog = connection.session.catalog
        self._database = connection.session.database

    # ------------------------------------------------------------------
    def get_database_product_name(self) -> str:
        return f"PySQLJ engine ({self._database.dialect.name} dialect)"

    def get_database_product_version(self) -> str:
        return "1.0"

    def get_user_name(self) -> str:
        return self.connection.session.user

    def get_url(self) -> str:
        return self.connection.url

    # ------------------------------------------------------------------
    def get_udts(
        self,
        catalog: Optional[str] = None,
        schema_pattern: Optional[str] = None,
        type_name_pattern: str = "%",
        types: Optional[Sequence[int]] = None,
    ) -> ResultSet:
        """User-defined types, per the paper's JDBC 2.0 example.

        Columns: TYPE_CAT, TYPE_SCHEM, TYPE_NAME, CLASS_NAME, DATA_TYPE,
        REMARKS.  All Part 2 types report DATA_TYPE = PY_OBJECT.
        """
        del catalog, schema_pattern  # single-catalog engine
        name_filter = _like_to_fnmatch(type_name_pattern)
        wanted = set(types) if types is not None else None
        rows: List[List[Any]] = []
        for name in sorted(self._catalog.types):
            udt = self._catalog.types[name]
            data_type = typecodes.PY_OBJECT
            if wanted is not None and data_type not in wanted:
                continue
            if not fnmatch.fnmatchcase(name, name_filter):
                continue
            remarks = (
                f"under {udt.supertype.name}" if udt.supertype else ""
            )
            rows.append(
                [
                    self._database.name,
                    None,
                    name,
                    udt.python_class.__module__
                    + "." + udt.python_class.__name__,
                    data_type,
                    remarks,
                ]
            )
        shape = _shape(
            ("type_cat", VarCharType(None)),
            ("type_schem", VarCharType(None)),
            ("type_name", VarCharType(None)),
            ("class_name", VarCharType(None)),
            ("data_type", IntegerType()),
            ("remarks", VarCharType(None)),
        )
        return _rowset(shape, rows)

    # ------------------------------------------------------------------
    def get_tables(
        self,
        catalog: Optional[str] = None,
        schema_pattern: Optional[str] = None,
        table_name_pattern: str = "%",
        types: Optional[Sequence[str]] = None,
    ) -> ResultSet:
        """Tables and views: TABLE_CAT, TABLE_SCHEM, TABLE_NAME,
        TABLE_TYPE, REMARKS."""
        del catalog, schema_pattern
        name_filter = _like_to_fnmatch(table_name_pattern)
        wanted = {t.upper() for t in types} if types else {"TABLE", "VIEW"}
        rows: List[List[Any]] = []
        entries = [
            (name, "TABLE") for name in self._catalog.tables
        ] + [(name, "VIEW") for name in self._catalog.views]
        for name, kind in sorted(entries):
            if kind not in wanted:
                continue
            if not fnmatch.fnmatchcase(name, name_filter):
                continue
            rows.append([self._database.name, None, name, kind, ""])
        shape = _shape(
            ("table_cat", VarCharType(None)),
            ("table_schem", VarCharType(None)),
            ("table_name", VarCharType(None)),
            ("table_type", VarCharType(None)),
            ("remarks", VarCharType(None)),
        )
        return _rowset(shape, rows)

    def get_columns(
        self,
        catalog: Optional[str] = None,
        schema_pattern: Optional[str] = None,
        table_name_pattern: str = "%",
        column_name_pattern: str = "%",
    ) -> ResultSet:
        """Columns: TABLE_NAME, COLUMN_NAME, DATA_TYPE, TYPE_NAME,
        ORDINAL_POSITION, IS_NULLABLE."""
        del catalog, schema_pattern
        table_filter = _like_to_fnmatch(table_name_pattern)
        column_filter = _like_to_fnmatch(column_name_pattern)
        rows: List[List[Any]] = []
        for table_name in sorted(self._catalog.tables):
            if not fnmatch.fnmatchcase(table_name, table_filter):
                continue
            table = self._catalog.tables[table_name]
            for position, column in enumerate(table.columns, start=1):
                if not fnmatch.fnmatchcase(column.name, column_filter):
                    continue
                rows.append(
                    [
                        table_name,
                        column.name,
                        column.descriptor.type_code,
                        column.descriptor.sql_spelling(),
                        position,
                        "NO" if column.not_null else "YES",
                    ]
                )
        shape = _shape(
            ("table_name", VarCharType(None)),
            ("column_name", VarCharType(None)),
            ("data_type", IntegerType()),
            ("type_name", VarCharType(None)),
            ("ordinal_position", IntegerType()),
            ("is_nullable", VarCharType(None)),
        )
        return _rowset(shape, rows)

    def get_procedures(
        self,
        catalog: Optional[str] = None,
        schema_pattern: Optional[str] = None,
        procedure_name_pattern: str = "%",
    ) -> ResultSet:
        """Routines: PROCEDURE_NAME, ROUTINE_KIND, EXTERNAL_NAME,
        LANGUAGE, DYNAMIC_RESULT_SETS."""
        del catalog, schema_pattern
        name_filter = _like_to_fnmatch(procedure_name_pattern)
        rows: List[List[Any]] = []
        for name in sorted(self._catalog.routines):
            if not fnmatch.fnmatchcase(name, name_filter):
                continue
            routine = self._catalog.routines[name]
            rows.append(
                [
                    name,
                    routine.kind,
                    routine.external_name,
                    routine.language,
                    routine.dynamic_result_sets,
                ]
            )
        shape = _shape(
            ("procedure_name", VarCharType(None)),
            ("routine_kind", VarCharType(None)),
            ("external_name", VarCharType(None)),
            ("language", VarCharType(None)),
            ("dynamic_result_sets", IntegerType()),
        )
        return _rowset(shape, rows)

    def get_procedure_columns(
        self,
        catalog: Optional[str] = None,
        schema_pattern: Optional[str] = None,
        procedure_name_pattern: str = "%",
        column_name_pattern: str = "%",
    ) -> ResultSet:
        """Routine parameters: PROCEDURE_NAME, COLUMN_NAME, COLUMN_TYPE
        (mode), DATA_TYPE, TYPE_NAME, ORDINAL_POSITION."""
        del catalog, schema_pattern
        name_filter = _like_to_fnmatch(procedure_name_pattern)
        column_filter = _like_to_fnmatch(column_name_pattern)
        rows: List[List[Any]] = []
        for name in sorted(self._catalog.routines):
            if not fnmatch.fnmatchcase(name, name_filter):
                continue
            routine = self._catalog.routines[name]
            for position, param in enumerate(routine.params, start=1):
                if not fnmatch.fnmatchcase(param.name, column_filter):
                    continue
                rows.append(
                    [
                        name,
                        param.name,
                        param.mode,
                        param.descriptor.type_code,
                        param.descriptor.sql_spelling(),
                        position,
                    ]
                )
        shape = _shape(
            ("procedure_name", VarCharType(None)),
            ("column_name", VarCharType(None)),
            ("column_type", VarCharType(None)),
            ("data_type", IntegerType()),
            ("type_name", VarCharType(None)),
            ("ordinal_position", IntegerType()),
        )
        return _rowset(shape, rows)
