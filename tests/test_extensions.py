"""Tests for the follow-on features: batch updates, EXPLAIN, routine
session state, and database persistence."""

import pytest

from repro import errors
from repro import DriverManager
from repro.dbapi import BatchUpdateError
from repro import Database
from repro.engine.persistence import load_database, save_database
from repro.procedures import build_par


@pytest.fixture
def conn(db, emps):
    return DriverManager.get_connection("pydbc:standard:x", database=db)


class TestBatchUpdates:
    def test_statement_batch(self, conn, emps):
        stmt = conn.create_statement()
        stmt.add_batch("insert into emps values ('B1', 'X1', 'CA', 1)")
        stmt.add_batch("insert into emps values ('B2', 'X2', 'CA', 2)")
        stmt.add_batch("update emps set sales = 3 where id = 'X1'")
        counts = stmt.execute_batch()
        assert counts == [1, 1, 1]
        assert emps.execute(
            "select count(*) from emps where id like 'X%'"
        ).rows == [[2]]

    def test_prepared_batch(self, conn, emps):
        stmt = conn.prepare_statement(
            "insert into emps values (?, ?, 'CA', ?)"
        )
        for i in range(5):
            stmt.set_string(1, f"P{i}")
            stmt.set_string(2, f"Q{i}")
            stmt.set_int(3, i)
            stmt.add_batch()
        counts = stmt.execute_batch()
        assert counts == [1] * 5
        assert emps.execute(
            "select count(*) from emps where id like 'Q%'"
        ).rows == [[5]]

    def test_batch_clears_after_execution(self, conn):
        stmt = conn.create_statement()
        stmt.add_batch("insert into emps values ('C', 'Y1', 'CA', 1)")
        stmt.execute_batch()
        assert stmt.execute_batch() == []

    def test_clear_batch(self, conn):
        stmt = conn.create_statement()
        stmt.add_batch("insert into emps values ('C', 'Y1', 'CA', 1)")
        stmt.clear_batch()
        assert stmt.execute_batch() == []

    def test_failure_reports_completed_counts(self, conn):
        stmt = conn.create_statement()
        stmt.add_batch("insert into emps values ('D1', 'Z1', 'CA', 1)")
        stmt.add_batch("insert into nowhere values (1)")
        stmt.add_batch("insert into emps values ('D2', 'Z2', 'CA', 1)")
        with pytest.raises(BatchUpdateError) as info:
            stmt.execute_batch()
        assert info.value.update_counts == [1]

    def test_queries_rejected_in_batch(self, conn):
        stmt = conn.create_statement()
        stmt.add_batch("select * from emps")
        with pytest.raises(BatchUpdateError):
            stmt.execute_batch()

    def test_prepared_batch_rejects_sql_argument(self, conn):
        stmt = conn.prepare_statement("select ?")
        with pytest.raises(errors.DataError):
            stmt.add_batch("select 1")


class TestExplain:
    def test_simple_scan(self, emps):
        rows = emps.execute("explain select * from emps").rows
        assert rows == [["Project (4 columns)"], ["  SeqScan on emps"]]

    def test_full_pipeline_shape(self, emps):
        lines = [
            r[0] for r in emps.execute(
                "explain select state, count(*) from emps "
                "where sales > 1 group by state order by state limit 2"
            ).rows
        ]
        assert lines[0] == "Limit"
        assert any("GroupAggregate" in line for line in lines)
        assert any("Filter" in line for line in lines)
        assert lines[-1].strip() == "SeqScan on emps"

    def test_join_plan(self, emps):
        emps.execute("create table r2 (state char(20), n integer)")
        lines = [
            r[0] for r in emps.execute(
                "explain select * from emps e join r2 on "
                "e.state = r2.state"
            ).rows
        ]
        # An equi-join now plans as a hash join.
        assert any("HashJoin (INNER)" in line for line in lines)
        assert sum("SeqScan" in line for line in lines) == 2

    def test_non_equi_join_plan(self, emps):
        emps.execute("create table r3 (state char(20), n integer)")
        lines = [
            r[0] for r in emps.execute(
                "explain select * from emps e join r3 on "
                "e.sales > r3.n"
            ).rows
        ]
        # No equality key: falls back to the nested loop.
        assert any("NestedLoopJoin (INNER)" in line for line in lines)

    def test_union_plan(self, emps):
        lines = [
            r[0] for r in emps.execute(
                "explain select name from emps union "
                "select state from emps"
            ).rows
        ]
        assert lines[0] == "Union"

    def test_explain_column_name(self, emps):
        result = emps.execute("explain select 1")
        assert result.column_names() == ["query_plan"]

    def test_explain_does_not_execute(self, emps):
        emps.execute("explain select 1 / 0")  # would raise if executed


class TestRoutineSessionState:
    STATE_MODULE = '''
from repro.procedures.state import call_state, session_state


def count_call():
    state = session_state()
    state["n"] = state.get("n", 0) + 1
    return state["n"]


def outer_marks():
    call_state()["mark"] = "set-by-outer"
    return inner_reads()


def inner_reads():
    return call_state().get("mark", "missing")
'''

    @pytest.fixture
    def stateful(self, db, tmp_path):
        session = db.create_session(autocommit=True)
        par = build_par(
            str(tmp_path / "state.par"), {"statemod": self.STATE_MODULE}
        )
        session.execute(f"call sqlj.install_par('{par}', 'sp')")
        session.execute(
            "create function count_call() returns integer no sql "
            "external name 'sp:statemod.count_call' "
            "language python parameter style python"
        )
        session.execute(
            "create function outer_marks() returns varchar(20) no sql "
            "external name 'sp:statemod.outer_marks' "
            "language python parameter style python"
        )
        session.execute(
            "create function inner_reads() returns varchar(20) no sql "
            "external name 'sp:statemod.inner_reads' "
            "language python parameter style python"
        )
        return session

    def test_session_state_persists_across_calls(self, stateful):
        assert stateful.execute("select count_call()").rows == [[1]]
        assert stateful.execute("select count_call()").rows == [[2]]
        assert stateful.execute("select count_call()").rows == [[3]]

    def test_session_state_is_per_session(self, stateful, db):
        stateful.execute("select count_call()")
        db.privileges.grant(
            "EXECUTE", "ROUTINE", "count_call", ["other"],
            grantor="dba", owner="dba",
        )
        other = db.create_session(user="other", autocommit=True)
        assert other.execute("select count_call()").rows == [[1]]

    def test_call_state_shared_with_nested_calls(self, stateful):
        # outer_marks writes call_state, then calls inner_reads directly
        # (same outermost invocation) — the mark is visible.
        assert stateful.execute(
            "select outer_marks()"
        ).rows == [["set-by-outer"]]

    def test_call_state_cleared_between_invocations(self, stateful):
        stateful.execute("select outer_marks()")
        # A fresh outermost invocation starts with empty call state.
        assert stateful.execute(
            "select inner_reads()"
        ).rows == [["missing"]]

    def test_session_state_outside_routine_rejected(self):
        from repro.procedures.state import session_state

        with pytest.raises(errors.ConnectionError_):
            session_state()


class TestPersistence:
    def make_database(self, tmp_path):
        database = Database(name="persistme")
        session = database.create_session(autocommit=True)
        session.execute(
            "create table emps (name varchar(50), sales decimal(6,2))"
        )
        session.execute(
            "insert into emps values ('Alice', 100.50), ('Bob', 50.25)"
        )
        session.execute(
            "create view rich as select name from emps where sales > 99"
        )
        par = build_par(
            str(tmp_path / "p.par"),
            {"pmod": (
                "def double(x):\n"
                "    return x * 2\n"
                "class Tag:\n"
                "    def __init__(self, label='x'):\n"
                "        self.label = label\n"
                "    def shout(self):\n"
                "        return self.label.upper()\n"
            )},
        )
        session.execute(f"call sqlj.install_par('{par}', 'p_par')")
        session.execute(
            "create function double(x integer) returns integer no sql "
            "external name 'p_par:pmod.double' "
            "language python parameter style python"
        )
        session.execute("""
            create type tag external name 'p_par:pmod.Tag'
            language python (
              label_attr varchar(20) external name label,
              method tag (label varchar(20)) returns tag
                external name Tag,
              method shout () returns varchar(20) external name shout
            )
        """)
        session.execute("grant select on emps to smith")
        return database

    def test_roundtrip_schema_and_data(self, tmp_path):
        database = self.make_database(tmp_path)
        path = save_database(database, str(tmp_path / "db.pysqlj"))
        restored = load_database(path)
        session = restored.create_session(autocommit=True)
        assert session.execute(
            "select name from emps order by name"
        ).rows == [["Alice"], ["Bob"]]
        assert session.execute("select * from rich").rows == [["Alice"]]

    def test_routines_work_after_load(self, tmp_path):
        database = self.make_database(tmp_path)
        path = save_database(database, str(tmp_path / "db.pysqlj"))
        restored = load_database(path)
        session = restored.create_session(autocommit=True)
        assert session.execute("select double(21)").rows == [[42]]

    def test_types_work_after_load(self, tmp_path):
        database = self.make_database(tmp_path)
        path = save_database(database, str(tmp_path / "db.pysqlj"))
        restored = load_database(path)
        session = restored.create_session(autocommit=True)
        session.execute("create table tags (t tag)")
        session.execute("insert into tags values (new tag('hello'))")
        assert session.execute(
            "select t>>shout() from tags"
        ).rows == [["HELLO"]]

    def test_grants_survive(self, tmp_path):
        database = self.make_database(tmp_path)
        path = save_database(database, str(tmp_path / "db.pysqlj"))
        restored = load_database(path)
        smith = restored.create_session(user="smith", autocommit=True)
        assert len(smith.execute("select * from emps").rows) == 2
        other = restored.create_session(user="eve", autocommit=True)
        with pytest.raises(errors.PrivilegeError):
            other.execute("select * from emps")

    def test_system_routines_rebootstrapped(self, tmp_path):
        database = self.make_database(tmp_path)
        path = save_database(database, str(tmp_path / "db.pysqlj"))
        restored = load_database(path)
        assert "sqlj.install_par" in restored.catalog.routines

    def test_par_class_rows_rejected_at_save(self, tmp_path):
        database = self.make_database(tmp_path)
        session = database.create_session(autocommit=True)
        session.execute("create table tags (t tag)")
        session.execute("insert into tags values (new tag('x'))")
        with pytest.raises(errors.DataError):
            save_database(database, str(tmp_path / "bad.pysqlj"))

    def test_bad_image_rejected(self, tmp_path):
        path = tmp_path / "junk.pysqlj"
        path.write_bytes(b"not a database")
        with pytest.raises(errors.DataError):
            load_database(str(path))

    def test_wrong_object_rejected(self, tmp_path):
        import pickle

        path = tmp_path / "dict.pysqlj"
        path.write_bytes(pickle.dumps({"hello": 1}))
        with pytest.raises(errors.DataError):
            load_database(str(path))


class TestPersistenceOfConstraints:
    def test_unique_survives_roundtrip(self, tmp_path):
        database = Database(name="cst")
        session = database.create_session(autocommit=True)
        session.execute(
            "create table u (id integer primary key, "
            "email varchar(30) unique)"
        )
        session.execute("insert into u values (1, 'a@x')")
        path = save_database(database, str(tmp_path / "c.pysqlj"))
        restored = load_database(path)
        reopened = restored.create_session(autocommit=True)
        with pytest.raises(errors.UniqueViolationError):
            reopened.execute("insert into u values (1, 'b@x')")
        with pytest.raises(errors.NotNullViolationError):
            reopened.execute("insert into u values (null, 'c@x')")
