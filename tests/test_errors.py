"""Unit tests for the SQLException hierarchy."""

import pytest

from repro import errors


class TestSQLStates:
    def test_root_default_state(self):
        assert errors.SQLException("boom").sqlstate == "HY000"

    def test_explicit_state_overrides_default(self):
        exc = errors.SQLException("boom", sqlstate="42ABC")
        assert exc.sqlstate == "42ABC"

    @pytest.mark.parametrize(
        "cls, state",
        [
            (errors.SQLSyntaxError, "42000"),
            (errors.UndefinedTableError, "42P01"),
            (errors.UndefinedColumnError, "42703"),
            (errors.UndefinedRoutineError, "42883"),
            (errors.StringTruncationError, "22001"),
            (errors.NumericOverflowError, "22003"),
            (errors.InvalidCastError, "22018"),
            (errors.DivisionByZeroError, "22012"),
            (errors.NotNullViolationError, "23502"),
            (errors.CardinalityError, "21000"),
            (errors.PrivilegeError, "42501"),
            (errors.InvalidCursorStateError, "24000"),
            (errors.ConnectionClosedError, "08003"),
            (errors.FeatureNotSupportedError, "0A000"),
            (errors.ExternalRoutineError, "38000"),
            (errors.ExternalRoutineInvocationError, "39000"),
            (errors.ParInstallationError, "46100"),
            (errors.PathResolutionError, "46120"),
            (errors.NoDataWarning, "02000"),
        ],
    )
    def test_default_states(self, cls, state):
        assert cls("x").sqlstate == state

    def test_all_exceptions_subclass_root(self):
        for name in errors.__all__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError)

    def test_sqlexception_is_the_jdbc_alias(self):
        # Catching the unified root catches the JDBC-flavoured name and
        # everything beneath it.
        assert issubclass(errors.SQLException, errors.ReproError)
        with pytest.raises(errors.ReproError):
            raise errors.UniqueViolationError("dup")

    def test_message_attribute(self):
        exc = errors.DataError("bad value")
        assert exc.message == "bad value"
        assert "22000" in str(exc)
        assert "bad value" in str(exc)


class TestChaining:
    def test_chain_order(self):
        first = errors.SQLException("one")
        second = errors.SQLException("two")
        third = errors.SQLException("three")
        first.set_next_exception(second)
        first.set_next_exception(third)
        assert [e.message for e in first.chain()] == ["one", "two", "three"]

    def test_get_next_exception(self):
        first = errors.SQLException("one")
        assert first.get_next_exception() is None
        second = errors.SQLException("two")
        first.set_next_exception(second)
        assert first.get_next_exception() is second

    def test_parse_error_position(self):
        exc = errors.SQLParseError("bad token", line=3, column=7)
        assert exc.line == 3
        assert exc.column == 7
        assert "line 3" in exc.message

    def test_translation_error_line(self):
        exc = errors.TranslationError("oops", line=12)
        assert "line 12" in exc.message


class TestExternalRoutineWrapping:
    def test_wraps_plain_exception_message(self):
        wrapped = errors.ExternalRoutineError.from_python(
            RuntimeError("kaboom")
        )
        assert wrapped.message == "kaboom"
        assert wrapped.sqlstate == "38000"
        assert isinstance(wrapped.__cause__, RuntimeError)

    def test_preserves_sqlstate_of_sql_exceptions(self):
        inner = errors.DivisionByZeroError("div")
        wrapped = errors.ExternalRoutineError.from_python(inner)
        assert wrapped.sqlstate == "22012"

    def test_empty_message_falls_back_to_type_name(self):
        wrapped = errors.ExternalRoutineError.from_python(ValueError())
        assert wrapped.message == "ValueError"
