"""Connection: one session's JDBC-shaped handle.

Carries the JDBC 2.0 per-connection *type map* the paper describes for
SQL3 ADTs ("Java mapping maintained per Connection"): entries map SQL UDT
names to host classes and are consulted by ``get_udts`` consumers; Part 2
objects themselves round-trip through ``get_object``/``set_object``
without any mapping ("this just works").
"""

from __future__ import annotations

from typing import Any, Dict

from repro import errors
from repro.dbapi.statement import (
    CallableStatement,
    PreparedStatement,
    Statement,
)
from repro.engine.database import Session
from repro.observability import tracing as _tracing

__all__ = ["Connection"]


class Connection:
    """Mirrors ``java.sql.Connection`` over an engine session."""

    def __init__(
        self,
        session: Session,
        url: str = "",
        owns_session: bool = True,
    ) -> None:
        self.session = session
        self.url = url
        self.owns_session = owns_session
        self._closed = False
        #: JDBC 2.0 per-connection type map (SQL UDT name -> Python class).
        self.type_map: Dict[str, type] = {}
        self._tracer: Any = None

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def tracer(self) -> Any:
        """Tracer for this connection's statements (process tracer
        unless overridden)."""
        if self._tracer is not None:
            return self._tracer
        return _tracing.get_tracer()

    @tracer.setter
    def tracer(self, tracer: Any) -> None:
        self._tracer = tracer

    # ------------------------------------------------------------------
    # statement factories
    # ------------------------------------------------------------------
    def create_statement(self) -> Statement:
        self._check_open()
        return Statement(self)

    def prepare_statement(self, sql: str) -> PreparedStatement:
        self._check_open()
        return PreparedStatement(self, sql)

    def prepare_call(self, sql: str) -> CallableStatement:
        self._check_open()
        return CallableStatement(self, sql)

    def cursor(self) -> "Cursor":
        """A PEP 249 cursor over this connection's session.

        The DB-API face of the same session the JDBC-shaped statements
        use; its ``executemany`` is the bulk-load fast path (see
        :mod:`repro.dbapi.cursor`).
        """
        from repro.dbapi.cursor import Cursor

        self._check_open()
        return Cursor(self)

    # ------------------------------------------------------------------
    # plan introspection
    # ------------------------------------------------------------------
    def explain(self, sql: str, params: Any = (), analyze: bool = False):
        """The compiled plan for ``sql`` as a typed PlanNode tree.

        Delegates to :meth:`repro.engine.database.Session.explain`;
        ``analyze=True`` executes the query and attaches actual row
        counts and per-operator times to the tree.
        """
        self._check_open()
        return self.session.explain(sql, params, analyze=analyze)

    # ------------------------------------------------------------------
    # transactions
    # ------------------------------------------------------------------
    @property
    def autocommit(self) -> bool:
        return self.session.autocommit

    def set_auto_commit(self, enabled: bool) -> None:
        self._check_open()
        self.session.autocommit = bool(enabled)

    def commit(self) -> None:
        self._check_open()
        self.session.commit()

    def rollback(self) -> None:
        self._check_open()
        self.session.rollback()

    # ------------------------------------------------------------------
    # type map (JDBC 2.0)
    # ------------------------------------------------------------------
    def get_type_map(self) -> Dict[str, type]:
        return dict(self.type_map)

    def set_type_map(self, mapping: Dict[str, type]) -> None:
        for name, cls in mapping.items():
            if not isinstance(cls, type):
                raise errors.DataError(
                    f"type map entry {name!r} must map to a class"
                )
        self.type_map = {k.lower(): v for k, v in mapping.items()}

    # ------------------------------------------------------------------
    # metadata / lifecycle
    # ------------------------------------------------------------------
    def get_meta_data(self):
        from repro.dbapi.metadata import DatabaseMetaData

        self._check_open()
        return DatabaseMetaData(self)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close the connection.

        Default connections (obtained inside a routine via
        ``DBAPI:DEFAULT:CONNECTION``) share the caller's session; closing
        them is a no-op, as in SQLJ implementations.
        """
        if self._closed:
            return
        self._closed = True
        if self.owns_session:
            self.session.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _check_open(self) -> None:
        if self._closed:
            raise errors.ConnectionClosedError("connection is closed")

    # ------------------------------------------------------------------
    @property
    def user(self) -> str:
        return self.session.user

    @property
    def dialect_name(self) -> str:
        return self.session.dialect.name
