"""Generating CREATE TYPE DDL from a Python class by reflection.

The paper writes CREATE TYPE statements by hand; for Python users this
helper derives one from the class itself — annotated constructor
parameters become attribute types, public methods become SQL methods —
which the examples and tests use to register types concisely.  The output
is ordinary DDL, so everything still flows through the same
``CREATE TYPE`` code path.
"""

from __future__ import annotations

import inspect
from typing import List, Optional, Type

from repro import errors
from repro.procedures.reflection import descriptor_for_annotation

__all__ = ["create_type_ddl_for_class"]


def _sql_name(python_name: str) -> str:
    """Convert camelCase / mixedCase Python names to snake_case SQL."""
    out: List[str] = []
    for ch in python_name:
        if ch.isupper() and out and out[-1] != "_":
            out.append("_")
        out.append(ch.lower())
    return "".join(out)


def _spelling_for(annotation) -> Optional[str]:
    descriptor = descriptor_for_annotation(annotation)
    if descriptor is None:
        return None
    return descriptor.sql_spelling()


def create_type_ddl_for_class(
    cls: Type,
    type_name: Optional[str] = None,
    external_name: Optional[str] = None,
    under: Optional[str] = None,
) -> str:
    """Build a CREATE TYPE statement for ``cls``.

    Attributes are taken from class-level annotations and class attributes
    with mappable types; methods from public callables with annotated
    returns.  The class's ``__init__`` becomes the constructor method
    entry when all its parameters are annotated with mappable types.
    """
    type_name = type_name or _sql_name(cls.__name__)
    external_name = external_name or f"'{cls.__module__}.{cls.__name__}'"
    members: List[str] = []

    annotations = {}
    for klass in reversed(cls.__mro__):
        annotations.update(getattr(klass, "__annotations__", {}))
    own_annotations = getattr(cls, "__annotations__", {})

    for field_name, annotation in annotations.items():
        if field_name.startswith("_"):
            continue
        if under is not None and field_name not in own_annotations:
            continue  # inherited members come from the supertype
        spelling = _spelling_for(annotation)
        if spelling is None:
            continue
        is_static = hasattr(cls, field_name) and not callable(
            getattr(cls, field_name)
        )
        prefix = "static " if is_static else ""
        members.append(
            f"{prefix}{_sql_name(field_name)} {spelling} "
            f"external name {field_name}"
        )

    init = inspect.signature(cls.__init__)
    init_params = [
        p for name, p in init.parameters.items() if name != "self"
        and p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    param_clauses: List[str] = []
    constructor_usable = True
    for parameter in init_params:
        if parameter.annotation is inspect.Parameter.empty:
            constructor_usable = False
            break
        spelling = _spelling_for(parameter.annotation)
        if spelling is None:
            constructor_usable = False
            break
        param_clauses.append(f"{_sql_name(parameter.name)} {spelling}")
    if constructor_usable:
        members.append(
            f"method {type_name} ({', '.join(param_clauses)}) "
            f"returns {type_name} external name {cls.__name__}"
        )

    for method_name, member in inspect.getmembers(cls):
        if method_name.startswith("_") or not callable(member):
            continue
        if under is not None and method_name not in cls.__dict__:
            continue
        try:
            signature = inspect.signature(member)
        except (TypeError, ValueError):
            continue
        parameters = [
            p for name, p in signature.parameters.items() if name != "self"
        ]
        clauses: List[str] = []
        usable = True
        for parameter in parameters:
            if parameter.annotation is inspect.Parameter.empty:
                usable = False
                break
            spelling = _spelling_for(parameter.annotation)
            if spelling is None:
                usable = False
                break
            clauses.append(f"{_sql_name(parameter.name)} {spelling}")
        if not usable:
            continue
        returns_clause = ""
        if signature.return_annotation is not inspect.Signature.empty:
            spelling = _spelling_for(signature.return_annotation)
            if spelling is not None:
                returns_clause = f" returns {spelling}"
        static_prefix = (
            "static "
            if isinstance(
                inspect.getattr_static(cls, method_name), staticmethod
            )
            else ""
        )
        members.append(
            f"{static_prefix}method {_sql_name(method_name)} "
            f"({', '.join(clauses)}){returns_clause} "
            f"external name {method_name}"
        )

    if not members:
        raise errors.CatalogError(
            f"class {cls.__name__!r} exposes no mappable members"
        )
    under_clause = f" under {under}" if under else ""
    body = ",\n  ".join(members)
    return (
        f"create type {type_name}{under_clause} "
        f"external name {external_name} language python (\n  {body}\n)"
    )
