"""SQLJ Part 2: Python classes as SQL data types.

Reproduces the paper's Address / Address2Line walkthrough: CREATE TYPE
with attribute and method maps, a subtype declared UNDER its supertype,
object columns, ``new`` constructors in INSERT, ``>>`` attribute and
method access in queries, attribute-path UPDATE, and substitutability
with dynamic dispatch.

Run:  python examples/address_book.py
"""

import os
import tempfile

from repro import Database
from repro.procedures import build_par

ADDRESS_MODULE = '''
"""The paper's Address and Address2Line classes."""


class Address:
    recommended_width = 25

    def __init__(self, street="Unknown", zip="None"):
        self.street = street
        self.zip = zip

    def to_string(self):
        return "Street= " + self.street + " ZIP= " + self.zip

    @staticmethod
    def contiguous(a1, a2):
        return "yes" if a1.zip[:3] == a2.zip[:3] else "no"

    def __eq__(self, other):
        return (type(other) is type(self)
                and self.street == other.street
                and self.zip == other.zip)

    def __hash__(self):
        return hash((self.street, self.zip))


class Address2Line(Address):
    def __init__(self, street="Unknown", line2=" ", zip="None"):
        super().__init__(street, zip)
        self.line2 = line2

    def to_string(self):
        return ("Street= " + self.street + " Line2= " + self.line2
                + " ZIP= " + self.zip)
'''


def main():
    database = Database(name="addressbook")
    session = database.create_session(autocommit=True)

    with tempfile.TemporaryDirectory() as workdir:
        par_path = build_par(
            os.path.join(workdir, "address.par"),
            {"addressmod": ADDRESS_MODULE},
        )
        session.execute(
            f"call sqlj.install_par('{par_path}', 'address_par')"
        )

    # CREATE TYPE: SQL names for the class, its fields and methods.
    session.execute("""
        create type addr
        external name 'address_par:addressmod.Address' language python (
          zip_attr char(10) external name zip,
          street_attr varchar(50) external name street,
          static rec_width_attr integer external name recommended_width,
          method addr () returns addr external name Address,
          method addr (s_parm varchar(50), z_parm char(10)) returns addr
            external name Address,
          method to_string () returns varchar(255)
            external name to_string;
          static method contiguous (a1 addr, a2 addr) returns char(3)
            external name contiguous
        )
    """)
    session.execute("""
        create type addr_2_line under addr
        external name 'address_par:addressmod.Address2Line'
        language python (
          line2_attr varchar(100) external name line2,
          method addr_2_line (s_parm varchar(50), s2_parm char(100),
            z_parm char(10)) returns addr_2_line
            external name Address2Line,
          method to_string () returns varchar(255)
            external name to_string
        )
    """)
    session.execute("grant usage on datatype addr to public")
    session.execute("grant usage on datatype addr_2_line to public")
    print("types addr and addr_2_line registered")

    # Columns typed by the classes; objects built with ``new``.
    session.execute(
        "create table emps ("
        " name varchar(30), home_addr addr, mailing_addr addr_2_line)"
    )
    session.execute(
        "insert into emps values('Bob Smith',"
        " new addr('432 Elm Street', '95123'),"
        " new addr_2_line('PO Box 99', 'attn: Bob Smith',"
        " '95123-0099'))"
    )
    session.execute(
        "insert into emps values('Ann Jones',"
        " new addr('9 Oak Lane', '95321'),"
        " new addr_2_line('1 Main St', 'suite 4', '95321-0001'))"
    )

    print("\nattribute access with >> :")
    result = session.execute(
        "select name, home_addr>>zip_attr, home_addr>>street_attr, "
        "mailing_addr>>zip_attr from emps "
        "where home_addr>>zip_attr <> mailing_addr>>zip_attr"
    )
    for name, home_zip, street, mail_zip in result.rows:
        print(f"  {name}: home {street} / {home_zip.strip()}, "
              f"mailing zip {mail_zip.strip()}")

    print("\nmethods and object comparison:")
    result = session.execute(
        "select name, home_addr>>to_string(), "
        "mailing_addr>>to_string() from emps "
        "where home_addr <> mailing_addr"
    )
    for name, home, mailing in result.rows:
        print(f"  {name}:")
        print(f"    home:    {home}")
        print(f"    mailing: {mailing}")

    print("\nstatic members:")
    width = session.execute(
        "select addr>>rec_width_attr from emps limit 1"
    ).rows[0][0]
    print(f"  addr>>rec_width_attr = {width}")
    result = session.execute(
        "select name, addr>>contiguous(home_addr, mailing_addr) "
        "from emps order by name"
    )
    for name, verdict in result.rows:
        print(f"  {name}: home/mailing contiguous? {verdict.strip()}")

    print("\nattribute update:")
    session.execute(
        "update emps set home_addr>>zip_attr = '99123' "
        "where name = 'Bob Smith'"
    )
    print("  Bob's home zip ->", session.execute(
        "select home_addr>>zip_attr from emps "
        "where name = 'Bob Smith'"
    ).rows[0][0].strip())

    print("\nsubstitutability (subtype stored in supertype column):")
    session.execute(
        "update emps set home_addr = mailing_addr "
        "where home_addr is not null"
    )
    for (text,) in session.execute(
        "select home_addr>>to_string() from emps"
    ).rows:
        print(f"  {text}")  # dispatches Address2Line.to_string


if __name__ == "__main__":
    main()
