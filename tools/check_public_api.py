#!/usr/bin/env python
"""Public-API snapshot check.

Renders the supported surface — ``repro.__all__``, the signatures of the
façade entry points, and the error hierarchy with its SQLSTATEs — to a
stable text form and diffs it against the committed snapshot
(``tools/public_api.snapshot``).  CI fails on any drift, so changing the
public API requires deliberately regenerating the snapshot:

    python tools/check_public_api.py --update

Run with no arguments to check (exit 1 and a unified diff on mismatch).
"""

from __future__ import annotations

import argparse
import difflib
import inspect
import os
import sys

SNAPSHOT_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "public_api.snapshot"
)

# Entry points whose exact signatures are part of the contract.
SIGNATURES = [
    ("repro.connect", lambda repro: repro.connect),
    ("repro.open_database", lambda repro: repro.open_database),
    ("repro.Database.__init__", lambda repro: repro.Database.__init__),
    (
        "repro.ConnectionPool.__init__",
        lambda repro: repro.ConnectionPool.__init__,
    ),
    (
        "repro.ConnectionPool.checkout",
        lambda repro: repro.ConnectionPool.checkout,
    ),
    (
        "repro.ConnectionContext.__init__",
        lambda repro: repro.ConnectionContext.__init__,
    ),
    (
        "repro.ExecutionContext.__init__",
        lambda repro: repro.ExecutionContext.__init__,
    ),
    (
        "repro.DriverManager.get_connection",
        lambda repro: repro.DriverManager.get_connection,
    ),
    (
        "repro.DriverManager.get_pool",
        lambda repro: repro.DriverManager.get_pool,
    ),
    # batch / bulk-load fast path
    (
        "repro.Connection.cursor",
        lambda repro: repro.Connection.cursor,
    ),
    (
        "repro.dbapi.Cursor.executemany",
        lambda repro: __import__(
            "repro.dbapi", fromlist=["Cursor"]
        ).Cursor.executemany,
    ),
    (
        "repro.dbapi.PreparedStatement.execute_batch",
        lambda repro: __import__(
            "repro.dbapi", fromlist=["PreparedStatement"]
        ).PreparedStatement.execute_batch,
    ),
    (
        "repro.engine.database.Session.execute_batch",
        lambda repro: __import__(
            "repro.engine.database", fromlist=["Session"]
        ).Session.execute_batch,
    ),
    # plan introspection
    (
        "repro.Connection.explain",
        lambda repro: repro.Connection.explain,
    ),
    (
        "repro.engine.database.Session.explain",
        lambda repro: __import__(
            "repro.engine.database", fromlist=["Session"]
        ).Session.explain,
    ),
    (
        "repro.engine.explain.PlanNode.to_dict",
        lambda repro: __import__(
            "repro.engine.explain", fromlist=["PlanNode"]
        ).PlanNode.to_dict,
    ),
]


def render_surface() -> str:
    import repro
    from repro import errors

    lines = ["# repro public API snapshot (tools/check_public_api.py)"]
    lines.append("")
    lines.append("[repro.__all__]")
    for name in repro.__all__:
        lines.append(name)
    lines.append("")
    lines.append("[signatures]")
    for label, getter in SIGNATURES:
        lines.append(f"{label}{inspect.signature(getter(repro))}")
    lines.append("")
    lines.append("[errors]")
    for name in errors.__all__:
        obj = getattr(errors, name)
        if isinstance(obj, type) and issubclass(obj, errors.ReproError):
            lines.append(f"{name} sqlstate={obj('x').sqlstate}")
        else:
            lines.append(name)
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--update",
        action="store_true",
        help="rewrite the committed snapshot from the live surface",
    )
    args = parser.parse_args(argv)

    current = render_surface()
    if args.update:
        with open(SNAPSHOT_PATH, "w") as fh:
            fh.write(current)
        print(f"snapshot updated: {SNAPSHOT_PATH}")
        return 0

    if not os.path.exists(SNAPSHOT_PATH):
        print(
            f"missing snapshot {SNAPSHOT_PATH}; run with --update",
            file=sys.stderr,
        )
        return 1
    with open(SNAPSHOT_PATH) as fh:
        committed = fh.read()
    if committed == current:
        print("public API surface matches the committed snapshot")
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        current.splitlines(keepends=True),
        fromfile="tools/public_api.snapshot (committed)",
        tofile="live surface",
    )
    sys.stderr.writelines(diff)
    print(
        "\npublic API drift detected; if intentional, regenerate with "
        "`python tools/check_public_api.py --update`",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main())
