"""Query planner: AST → compiled operator tree.

Responsible for name resolution (FROM-clause shapes, select-list aliases,
star expansion), aggregate rewriting (GROUP BY keys and aggregate calls
become columns of an intermediate shape), ORDER BY alias/position
substitution, and privilege checks on referenced relations.

The planner is deliberately rule-based (no cost model): scans feed
nested-loop joins feed filters.  For the paper's workloads that is
sufficient, and it keeps plans deterministic for the benchmark harness.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Table, View
from repro.engine.executor import (
    AggregateSpec,
    Distinct,
    Filter,
    GroupAggregate,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    QueryPlan,
    SeqScan,
    SingleRow,
    Sort,
    UnionOp,
)
from repro.engine.expressions import (
    ColumnInfo,
    Compiled,
    ExpressionCompiler,
    RowShape,
)
from repro.sqltypes import (
    DecimalType,
    DoubleType,
    IntegerType,
    TypeDescriptor,
    common_supertype,
)

__all__ = ["plan_query", "table_shape"]


def _predicate_summary(expression: ast.Expression) -> Optional[str]:
    """Short SQL rendering of a predicate for EXPLAIN's Filter lines."""
    from repro.engine.render import render_expression

    try:
        text = render_expression(expression)
    except errors.SQLException:
        return None
    if len(text) > 60:
        text = text[:57] + "..."
    return text


def table_shape(table: Table, alias: Optional[str] = None) -> RowShape:
    """Row shape of a base table (optionally under an alias)."""
    qualifier = alias or table.name
    return RowShape(
        [
            ColumnInfo(qualifier, column.name, column.descriptor)
            for column in table.columns
        ]
    )


# ---------------------------------------------------------------------------
# AST utilities
# ---------------------------------------------------------------------------

_SUBQUERY_FIELDS = (ast.ScalarSubquery, ast.Exists, ast.InSubquery)


def _walk(node: Any, visit: Callable[[ast.Node], bool]) -> None:
    """Depth-first walk; ``visit`` returns False to stop descending.

    Does not descend into nested query expressions — their aggregates and
    references belong to the inner query level.
    """
    if not isinstance(node, ast.Node):
        return
    if not visit(node):
        return
    if isinstance(node, _SUBQUERY_FIELDS):
        return
    if not dataclasses.is_dataclass(node):
        return
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            _walk(value, visit)
        elif isinstance(value, list):
            for item in value:
                _walk(item, visit)


def _transform(
    node: Any, replace: Callable[[ast.Node], Optional[ast.Node]]
) -> Any:
    """Bottom-up-ish rewrite: ``replace`` may substitute any node."""
    if not isinstance(node, ast.Node):
        return node
    replacement = replace(node)
    if replacement is not None:
        return replacement
    if isinstance(node, _SUBQUERY_FIELDS) or not dataclasses.is_dataclass(
        node
    ):
        return node
    changes = {}
    for field in dataclasses.fields(node):
        value = getattr(node, field.name)
        if isinstance(value, ast.Node):
            new_value = _transform(value, replace)
            if new_value is not value:
                changes[field.name] = new_value
        elif isinstance(value, list):
            new_list = [
                _transform(item, replace) if isinstance(item, ast.Node)
                else item
                for item in value
            ]
            if any(a is not b for a, b in zip(new_list, value)):
                changes[field.name] = new_list
    if changes:
        return dataclasses.replace(node, **changes)
    return node


def _collect_aggregates(node: Any, found: List[ast.AggregateCall]) -> None:
    def visit(candidate: ast.Node) -> bool:
        if isinstance(candidate, ast.AggregateCall):
            if not any(candidate == existing for existing in found):
                found.append(candidate)
            return False
        return True

    _walk(node, visit)


def _contains_aggregate(node: Any) -> bool:
    found: List[ast.AggregateCall] = []
    _collect_aggregates(node, found)
    return bool(found)


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------


def _plan_table_ref(
    ref: ast.TableRef,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[Operator, RowShape]:
    if isinstance(ref, ast.TableName):
        return _plan_named_relation(ref, session)
    if isinstance(ref, ast.SubqueryRef):
        plan, shape = plan_query(ref.query, session, outer=outer)
        return plan.root, shape.with_alias(ref.alias)
    if isinstance(ref, ast.Join):
        return _plan_join(ref, session, outer)
    raise errors.FeatureNotSupportedError(
        f"unsupported FROM item {type(ref).__name__}"
    )


def _plan_named_relation(
    ref: ast.TableName, session: Any
) -> Tuple[Operator, RowShape]:
    relation = session.catalog.get_relation(ref.name)
    if isinstance(relation, View):
        session.check_table_privilege("SELECT", ref.name)
        # Views run with definer's rights over their underlying tables.
        with session.impersonate(relation.owner):
            plan, shape = plan_query(relation.query, session)
        if relation.column_names:
            if len(relation.column_names) != len(shape):
                raise errors.CatalogError(
                    f"view {relation.name!r} column list does not match "
                    "its query"
                )
            shape = RowShape(
                [
                    ColumnInfo(None, name, col.descriptor)
                    for name, col in zip(
                        relation.column_names, shape.columns
                    )
                ]
            )
        return plan.root, shape.with_alias(ref.alias or ref.name)
    session.check_table_privilege("SELECT", ref.name)
    return SeqScan(relation), table_shape(relation, ref.alias)


def _plan_join(
    ref: ast.Join,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[Operator, RowShape]:
    left_op, left_shape = _plan_table_ref(ref.left, session, outer)
    right_op, right_shape = _plan_table_ref(ref.right, session, outer)
    merged = left_shape.merge(right_shape)
    predicate = None
    if ref.condition is not None:
        compiler = ExpressionCompiler(merged, session, outer)
        predicate = compiler.compile_predicate(ref.condition)
    operator = NestedLoopJoin(
        ref.kind,
        left_op,
        right_op,
        predicate,
        len(left_shape),
        len(right_shape),
    )
    return operator, merged


# ---------------------------------------------------------------------------
# SELECT planning
# ---------------------------------------------------------------------------


def _expand_items(
    items: Sequence[ast.Node], shape: RowShape
) -> List[Tuple[ast.Expression, Optional[str]]]:
    """Expand ``*`` / ``t.*`` into explicit column references."""
    expanded: List[Tuple[ast.Expression, Optional[str]]] = []
    for item in items:
        if isinstance(item, ast.StarItem):
            matched = False
            for column in shape.columns:
                if item.table is None or column.alias == item.table:
                    matched = True
                    expanded.append(
                        (
                            ast.ColumnRef(column.name, table=column.alias),
                            column.name,
                        )
                    )
            if not matched:
                raise errors.UndefinedTableError(
                    f"no FROM item called {item.table!r} for "
                    f"{item.table}.*"
                )
        else:
            assert isinstance(item, ast.SelectItem)
            expanded.append((item.expression, item.alias))
    return expanded


def _output_name(
    expr: ast.Expression, alias: Optional[str], position: int
) -> str:
    if alias:
        return alias
    if isinstance(expr, ast.ColumnRef):
        return expr.name
    if isinstance(expr, ast.AttributeRef):
        return expr.attribute
    if isinstance(expr, ast.MethodCall):
        return expr.method
    if isinstance(expr, ast.FunctionCall):
        return expr.name.split(".")[-1]
    if isinstance(expr, ast.AggregateCall):
        return expr.name.lower()
    return f"column{position + 1}"


def _aggregate_result_type(
    call: ast.AggregateCall, argument: Optional[Compiled]
) -> Optional[TypeDescriptor]:
    if call.name == "COUNT":
        return IntegerType()
    arg_type = argument.descriptor if argument else None
    if call.name in ("MIN", "MAX"):
        return arg_type
    if call.name == "SUM":
        if isinstance(arg_type, DecimalType):
            return DecimalType(38, arg_type.scale)
        return arg_type
    # AVG
    if isinstance(arg_type, DecimalType):
        return DecimalType(38, max(arg_type.scale, 6))
    if isinstance(arg_type, DoubleType):
        return DoubleType()
    if arg_type is not None:
        return DecimalType(38, 6)
    return None


def _plan_select(
    select: ast.Select,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[QueryPlan, RowShape]:
    # 1. FROM
    if select.from_clause:
        operator, shape = _plan_table_ref(
            select.from_clause[0], session, outer
        )
        for extra in select.from_clause[1:]:
            right_op, right_shape = _plan_table_ref(extra, session, outer)
            operator = NestedLoopJoin(
                "CROSS", operator, right_op, None, len(shape),
                len(right_shape),
            )
            shape = shape.merge(right_shape)
    else:
        operator, shape = SingleRow(), RowShape([])

    compiler = ExpressionCompiler(shape, session, outer)

    # 2. WHERE
    if select.where is not None:
        if _contains_aggregate(select.where):
            raise errors.SQLSyntaxError(
                "aggregates are not allowed in WHERE"
            )
        operator = Filter(
            operator,
            compiler.compile_predicate(select.where),
            description=_predicate_summary(select.where),
        )

    # 3. Aggregation
    items = _expand_items(select.items, shape)
    needs_aggregation = bool(select.group_by) or select.having is not None \
        or any(_contains_aggregate(expr) for expr, _ in items) \
        or any(_contains_aggregate(o.expression) for o in select.order_by)

    having = select.having
    order_items = list(select.order_by)

    if needs_aggregation:
        operator, shape, items, having, order_items = _plan_aggregation(
            select, session, outer, operator, shape, compiler, items
        )
        compiler = ExpressionCompiler(shape, session, outer)

    # 4. HAVING (already rewritten to post-aggregation shape)
    if having is not None:
        operator = Filter(
            operator,
            compiler.compile_predicate(having),
            description=_predicate_summary(select.having)
            if select.having is not None else None,
        )

    # 5. Projection
    compiled_items = [compiler.compile(expr) for expr, _ in items]
    output_shape = RowShape(
        [
            ColumnInfo(
                expr.table if isinstance(expr, ast.ColumnRef) and alias is
                None else None,
                _output_name(expr, alias, position),
                compiled.descriptor,
            )
            for position, ((expr, alias), compiled) in enumerate(
                zip(items, compiled_items)
            )
        ]
    )

    limit_fn, offset_fn = _compile_limits(select, session)

    if select.distinct:
        operator = Project(operator, [c.fn for c in compiled_items])
        operator = Distinct(operator)
        if order_items:
            rewritten = _substitute_order_targets(
                order_items, items, output_shape
            )
            out_compiler = ExpressionCompiler(output_shape, session, outer)
            keys = [
                (out_compiler.compile_sort_key(o.expression),
                 o.ascending)
                for o in rewritten
            ]
            operator = Sort(operator, keys)
    else:
        if order_items:
            keys = []
            for order in order_items:
                target = _order_source_expression(order.expression, items)
                keys.append(
                    (compiler.compile_sort_key(target), order.ascending)
                )
            operator = Sort(operator, keys)
        operator = Project(operator, [c.fn for c in compiled_items])

    if limit_fn is not None or offset_fn is not None:
        operator = Limit(operator, limit_fn, offset_fn)

    return QueryPlan(operator, output_shape), output_shape


def _compile_limits(select: ast.Select, session: Any):
    empty_compiler = ExpressionCompiler(RowShape([]), session)
    limit_fn = (
        empty_compiler.compile(select.limit).fn
        if select.limit is not None
        else None
    )
    offset_fn = (
        empty_compiler.compile(select.offset).fn
        if select.offset is not None
        else None
    )
    return limit_fn, offset_fn


def _order_source_expression(
    expr: ast.Expression,
    items: List[Tuple[ast.Expression, Optional[str]]],
) -> ast.Expression:
    """Resolve ORDER BY aliases and positions to source expressions."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
        position = expr.value
        if not 1 <= position <= len(items):
            raise errors.SQLSyntaxError(
                f"ORDER BY position {position} is out of range"
            )
        return items[position - 1][0]
    if isinstance(expr, ast.ColumnRef) and expr.table is None:
        for item_expr, alias in items:
            if alias == expr.name:
                return item_expr
    return expr


def _substitute_order_targets(
    order_items: List[ast.OrderItem],
    items: List[Tuple[ast.Expression, Optional[str]]],
    output_shape: RowShape,
) -> List[ast.OrderItem]:
    """For the DISTINCT path, rewrite positions to output column refs."""
    rewritten: List[ast.OrderItem] = []
    for order in order_items:
        expr = order.expression
        if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(output_shape):
                raise errors.SQLSyntaxError(
                    f"ORDER BY position {position} is out of range"
                )
            expr = ast.ColumnRef(output_shape.columns[position - 1].name)
            rewritten.append(ast.OrderItem(expr, order.ascending))
        else:
            rewritten.append(order)
    return rewritten


def _plan_aggregation(
    select: ast.Select,
    session: Any,
    outer: Optional[ExpressionCompiler],
    operator: Operator,
    shape: RowShape,
    compiler: ExpressionCompiler,
    items: List[Tuple[ast.Expression, Optional[str]]],
):
    """Insert a GroupAggregate and rewrite downstream expressions.

    Returns (operator, post_shape, rewritten_items, rewritten_having,
    rewritten_order_items).
    """
    # Collect every distinct aggregate call at this query level.
    aggregates: List[ast.AggregateCall] = []
    for expr, _alias in items:
        _collect_aggregates(expr, aggregates)
    if select.having is not None:
        _collect_aggregates(select.having, aggregates)
    for order in select.order_by:
        _collect_aggregates(order.expression, aggregates)

    # Compile group keys and aggregate arguments against the input shape.
    key_columns: List[ColumnInfo] = []
    key_fns = []
    replacements: List[Tuple[ast.Expression, ast.Expression]] = []
    for index, key_expr in enumerate(select.group_by):
        compiled = compiler.compile(key_expr)
        key_fns.append(compiled.fn)
        if isinstance(key_expr, ast.ColumnRef):
            info = ColumnInfo(key_expr.table, key_expr.name,
                              compiled.descriptor)
            replacement = ast.ColumnRef(key_expr.name, table=key_expr.table)
        else:
            info = ColumnInfo(None, f"$grp{index}", compiled.descriptor)
            replacement = ast.ColumnRef(f"$grp{index}")
        key_columns.append(info)
        replacements.append((key_expr, replacement))

    agg_columns: List[ColumnInfo] = []
    agg_specs: List[AggregateSpec] = []
    for index, call in enumerate(aggregates):
        argument = (
            compiler.compile(call.argument)
            if call.argument is not None
            else None
        )
        agg_specs.append(
            AggregateSpec(
                call.name,
                argument.fn if argument else None,
                call.distinct,
            )
        )
        agg_columns.append(
            ColumnInfo(
                None, f"$agg{index}", _aggregate_result_type(call, argument)
            )
        )
        replacements.append((call, ast.ColumnRef(f"$agg{index}")))

    operator = GroupAggregate(operator, key_fns, agg_specs)
    post_shape = RowShape(key_columns + agg_columns)

    def replace(node: ast.Node) -> Optional[ast.Node]:
        for pattern, replacement in replacements:
            if type(node) is type(pattern) and node == pattern:
                return replacement
        return None

    rewritten_items = [
        (_transform(expr, replace), alias) for expr, alias in items
    ]
    rewritten_having = (
        _transform(select.having, replace)
        if select.having is not None
        else None
    )
    rewritten_order = [
        ast.OrderItem(_transform(o.expression, replace), o.ascending)
        for o in select.order_by
    ]

    # Validate: non-aggregated plain columns must be group keys.
    post_compiler = ExpressionCompiler(post_shape, session, outer)
    for expr, _alias in rewritten_items:
        _check_grouped(expr, post_compiler)
    if rewritten_having is not None:
        _check_grouped(rewritten_having, post_compiler)

    return operator, post_shape, rewritten_items, rewritten_having, \
        rewritten_order


def _check_grouped(
    expr: ast.Expression, post_compiler: ExpressionCompiler
) -> None:
    """Compiling against the post-aggregation shape surfaces ungrouped
    column references as UndefinedColumnError with a clearer message."""
    try:
        post_compiler.compile(expr)
    except errors.UndefinedColumnError as exc:
        raise errors.SQLSyntaxError(
            f"{exc.message}; columns used outside aggregates must appear "
            "in GROUP BY"
        ) from None


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------


def plan_query(
    query: ast.Node,
    session: Any,
    outer: Optional[ExpressionCompiler] = None,
) -> Tuple[QueryPlan, RowShape]:
    """Plan a query expression; returns the plan and its output shape."""
    if isinstance(query, ast.Select):
        return _plan_select(query, session, outer)
    if isinstance(query, ast.SetOperation):
        return _plan_set_operation(query, session, outer)
    raise errors.FeatureNotSupportedError(
        f"cannot plan {type(query).__name__}"
    )


def _plan_set_operation(
    op: ast.SetOperation,
    session: Any,
    outer: Optional[ExpressionCompiler],
) -> Tuple[QueryPlan, RowShape]:
    left_plan, left_shape = plan_query(op.left, session, outer)
    right_plan, right_shape = plan_query(op.right, session, outer)
    if len(left_shape) != len(right_shape):
        raise errors.SQLSyntaxError(
            f"{op.op} operands must have the same number of columns"
        )
    columns: List[ColumnInfo] = []
    for left_col, right_col in zip(left_shape.columns, right_shape.columns):
        descriptor = left_col.descriptor
        if descriptor is not None and right_col.descriptor is not None:
            descriptor = common_supertype(descriptor, right_col.descriptor)
        columns.append(ColumnInfo(None, left_col.name, descriptor))
    shape = RowShape(columns)
    operator: Operator = UnionOp(
        left_plan.root, right_plan.root, op.all, op.op
    )
    if op.order_by:
        out_compiler = ExpressionCompiler(shape, session, outer)
        keys = []
        for order in op.order_by:
            expr = order.expression
            if isinstance(expr, ast.Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(shape):
                    raise errors.SQLSyntaxError(
                        f"ORDER BY position {position} is out of range"
                    )
                expr = ast.ColumnRef(shape.columns[position - 1].name)
            keys.append(
                (out_compiler.compile_sort_key(expr), order.ascending)
            )
        operator = Sort(operator, keys)
    return QueryPlan(operator, shape), shape
