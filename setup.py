"""Setup script for PySQLJ.

A classic setup.py (rather than a PEP 517 pyproject build) so that
``pip install -e .`` works in fully offline environments: the legacy
editable path needs only an installed setuptools, no build isolation and
no wheel package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "PySQLJ: a Python reproduction of 'SQLJ: Java and Relational "
        "Databases' (SIGMOD 1998)"
    ),
    long_description=open("README.md").read()
    if __import__("os").path.exists("README.md")
    else "",
    long_description_content_type="text/markdown",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": ["psqlj = repro.translator.cli:main"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Developers",
        "Topic :: Database",
        "Programming Language :: Python :: 3",
    ],
)
