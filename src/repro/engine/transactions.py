"""Transaction primitives.

The undo-log implementation lives next to the row heaps in
:mod:`repro.engine.storage`; this module re-exports it under the name the
architecture documentation uses.
"""

from repro.engine.storage import RowStore, TransactionLog

__all__ = ["TransactionLog", "RowStore"]
