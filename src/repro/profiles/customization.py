"""Customizations, ConnectedProfile and RTStatement.

This is the paper's "Custom SQL execution" machinery.  A profile entry
can execute through:

* the **default customization** — dynamic JDBC-style execution: the SQL
  text is prepared through the target connection, cached per connection
  ("Default SQLJ binaries run on any JDBC driver" — with standard SQL);
* a **dialect customization** installed at deployment time — the entry's
  SQL has been re-rendered for the vendor dialect and pre-parsed, so
  execution skips the parser entirely (the paper's "offline
  pre-compilation (for performance)" and the vendor plug-in path).

``ConnectedProfile`` binds a profile to one connection, picks the best
accepting customization per entry, and hands out ``RTStatement`` objects.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro import errors
from repro.engine import ast as engine_ast
from repro.engine.database import (
    Session,
    StatementResult,
)
from repro.engine.dialects import DIALECTS
from repro.engine.executor import QueryPlan
from repro.engine.parser import Parser
from repro.engine.planner import plan_query
from repro.engine.render import render_statement
from repro.observability import metrics as _metrics
from repro.profiles.model import EntryInfo, Profile

__all__ = [
    "Customization",
    "DefaultCustomization",
    "DialectCustomization",
    "RTStatement",
    "ConnectedProfile",
]

_CACHE_HITS = _metrics.registry.counter("profile.statement_cache.hits")
_CACHE_MISSES = _metrics.registry.counter("profile.statement_cache.misses")


class RTStatement:
    """Executable form of one profile entry bound to one connection."""

    def __init__(self, entry: EntryInfo, session: Session) -> None:
        self.entry = entry
        self.session = session

    def execute(self, params: Sequence[Any] = ()) -> StatementResult:
        raise NotImplementedError

    def execute_query(self, params: Sequence[Any] = ()) -> StatementResult:
        result = self.execute(params)
        if not result.is_rowset:
            raise errors.DataError(
                f"profile entry {self.entry.index} is not a query"
            )
        return result

    def execute_update(self, params: Sequence[Any] = ()) -> int:
        result = self.execute(params)
        if result.is_rowset:
            raise errors.DataError(
                f"profile entry {self.entry.index} returns rows"
            )
        return result.update_count


class _DynamicRTStatement(RTStatement):
    """Default path: prepare the SQL text on the connection, once."""

    def __init__(self, entry: EntryInfo, session: Session) -> None:
        super().__init__(entry, session)
        self._prepared = session.prepare(entry.sql)

    def execute(self, params: Sequence[Any] = ()) -> StatementResult:
        return self._prepared.execute(params)


class _PrecompiledRTStatement(RTStatement):
    """Customized path: execute a pre-parsed statement; queries keep a
    compiled plan."""

    def __init__(
        self,
        entry: EntryInfo,
        session: Session,
        statement: engine_ast.Statement,
    ) -> None:
        super().__init__(entry, session)
        self.statement = statement
        self._plan: Optional[QueryPlan] = None
        self._plan_version = -1
        if isinstance(
            statement, (engine_ast.Select, engine_ast.SetOperation)
        ):
            self._replan()

    def _replan(self) -> None:
        self._plan, self._shape = plan_query(self.statement, self.session)
        self._plan_version = self.session.catalog.version

    def execute(self, params: Sequence[Any] = ()) -> StatementResult:
        if self._plan is not None:
            if self._plan_version != self.session.catalog.version:
                # DDL since this entry was compiled (new index, dropped
                # column, revoked privilege): rebuild the plan.
                self._replan()
            rows = self._plan.run(self.session, params)
            return self.session.finish_rowset(rows, self._shape)
        return self.session.execute_statement(self.statement, params)


class Customization:
    """Base class for profile customizations.

    ``key`` identifies the customization family so re-customizing a
    profile replaces rather than accumulates; ``accepts_session`` decides
    applicability per connection at run time.
    """

    key = "base"

    def accepts_session(self, session: Session) -> bool:
        raise NotImplementedError

    def make_statement(
        self, entry: EntryInfo, session: Session
    ) -> RTStatement:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__


class DefaultCustomization(Customization):
    """Dynamic JDBC-style execution; accepts every connection."""

    key = "default"

    def accepts_session(self, session: Session) -> bool:
        return True

    def make_statement(
        self, entry: EntryInfo, session: Session
    ) -> RTStatement:
        return _DynamicRTStatement(entry, session)

    def describe(self) -> str:
        return "default (dynamic SQL via connection)"


class DialectCustomization(Customization):
    """Vendor customization for one engine dialect.

    Created by the customizer utility: every entry's canonical SQL is
    re-parsed, re-rendered in the vendor dialect (recorded in
    ``sql_texts`` for inspection) and stored pre-parsed in ``statements``
    so run-time execution skips parsing.
    """

    def __init__(self, dialect_name: str, profile: Profile) -> None:
        if dialect_name not in DIALECTS:
            raise errors.CustomizationError(
                f"unknown dialect {dialect_name!r}"
            )
        self.dialect_name = dialect_name
        self.key = f"dialect:{dialect_name}"
        dialect = DIALECTS[dialect_name]
        self.sql_texts: List[str] = []
        self.statements: List[engine_ast.Statement] = []
        for entry in profile.data:
            statement = Parser(entry.sql).parse_statement()
            text = render_statement(statement, dialect)
            # Re-parse the rendered text under the vendor dialect: proves
            # the customized SQL is genuinely executable there and yields
            # the statement object we ship.
            vendor_statement = Parser(text, dialect).parse_statement()
            self.sql_texts.append(text)
            self.statements.append(vendor_statement)

    def accepts_session(self, session: Session) -> bool:
        # Precompiled plans execute against local storage structures;
        # a remote (repro://) session has none, so it falls back to the
        # dynamic customization, which only needs session.prepare() —
        # the statement then planned and cached server-side.
        if getattr(session, "is_remote", False):
            return False
        return session.dialect.name == self.dialect_name

    def make_statement(
        self, entry: EntryInfo, session: Session
    ) -> RTStatement:
        return _PrecompiledRTStatement(
            entry, session, self.statements[entry.index]
        )

    def describe(self) -> str:
        return f"dialect customization for {self.dialect_name!r} " \
               f"({len(self.statements)} precompiled statements)"


class ConnectedProfile:
    """A profile bound to one connection.

    Picks, per entry, the first installed customization accepting the
    session (falling back to :class:`DefaultCustomization`), and caches
    the resulting RTStatements so repeated executions of the same clause
    reuse prepared/compiled state — the paper's profile runtime.
    """

    def __init__(self, profile: Profile, session: Session) -> None:
        self.profile = profile
        self.session = session
        self._statements: Dict[int, RTStatement] = {}
        self._chosen: Optional[Customization] = None

    def customization(self) -> Customization:
        if self._chosen is None:
            for customization in self.profile.customizations:
                if customization.accepts_session(self.session):
                    self._chosen = customization
                    break
            else:
                self._chosen = DefaultCustomization()
        return self._chosen

    def get_statement(self, index: int) -> RTStatement:
        statement = self._statements.get(index)
        if statement is None:
            _CACHE_MISSES.increment()
            entry = self.profile.get_entry(index)
            statement = self.customization().make_statement(
                entry, self.session
            )
            self._statements[index] = statement
        else:
            _CACHE_HITS.increment()
        return statement

    def execute(
        self, index: int, params: Sequence[Any] = ()
    ) -> StatementResult:
        return self.get_statement(index).execute(params)
