"""Public-façade tests: ``repro.connect``, ``repro.__all__``, the
unified error hierarchy, and the deprecation shims that keep the old
deep-import paths working."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import errors


EXPECTED_ALL = [
    "connect",
    "open_database",
    "Database",
    "Session",
    "Dialect",
    "DIALECTS",
    "DurabilityManager",
    "WriteAheadLog",
    "save_database",
    "load_database",
    "Connection",
    "ConnectionPool",
    "PooledConnection",
    "DriverManager",
    "DatabaseRegistry",
    "registry",
    "ConnectionContext",
    "ExecutionContext",
    "errors",
    "ReproError",
    "SQLException",
    "observability",
    "DATA_DIR_ENV",
    "__version__",
]


def _deprecations(caught):
    return [
        w for w in caught if issubclass(w.category, DeprecationWarning)
    ]


class TestPublicSurface:
    def test_all_matches_documented_api(self):
        assert repro.__all__ == EXPECTED_ALL

    def test_every_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_importing_facade_emits_no_warnings(self):
        import importlib
        import subprocess
        import sys

        # A fresh interpreter: the façade itself must not trip its own
        # deprecation shims.
        code = (
            "import warnings; warnings.simplefilter('error', "
            "DeprecationWarning); import repro; "
            "print(repro.__version__)"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        importlib  # quiet linters


class TestConnect:
    def test_in_memory_roundtrip(self):
        with repro.connect("pydbc:standard:facade_mem") as conn:
            stmt = conn.create_statement()
            stmt.execute_update("CREATE TABLE t (n INT)")
            stmt.execute_update("INSERT INTO t VALUES (41)")
            rs = stmt.execute_query("SELECT n FROM t")
            assert rs.next() and rs.get_int(1) == 41

    def test_same_url_shares_database(self):
        c1 = repro.connect("pydbc:standard:facade_shared")
        c2 = repro.connect("pydbc:standard:facade_shared")
        assert c1.session.database is c2.session.database
        c1.close()
        c2.close()

    def test_durable_connect_recovers(self, tmp_path):
        d = str(tmp_path)
        conn = repro.connect("pydbc:standard:facade_dur", data_dir=d)
        assert conn.session.database.durability is not None
        stmt = conn.create_statement()
        stmt.execute_update("CREATE TABLE t (n INT)")
        stmt.execute_update("INSERT INTO t VALUES (7)")
        conn.close()
        repro.registry.drop("facade_dur")  # closes (checkpoint + WAL)

        conn2 = repro.connect("pydbc:standard:facade_dur", data_dir=d)
        stmt = conn2.create_statement()
        rs = stmt.execute_query("SELECT n FROM t")
        assert rs.next() and rs.get_int(1) == 7
        conn2.close()

    def test_durable_false_stays_in_memory(self, tmp_path):
        conn = repro.connect(
            "pydbc:standard:facade_mem2",
            data_dir=str(tmp_path),
            durable=False,
        )
        assert conn.session.database.durability is None
        conn.close()

    def test_env_var_enables_durability(self, tmp_path, monkeypatch):
        monkeypatch.setenv(repro.DATA_DIR_ENV, str(tmp_path))
        conn = repro.connect("pydbc:standard:facade_env")
        assert conn.session.database.durability is not None
        conn.close()

    def test_durability_options_require_data_dir(self):
        with pytest.raises(errors.ConnectionError_):
            repro.connect("pydbc:standard:nodir", group_size=4)

    def test_durable_name_clash_with_in_memory(self, tmp_path):
        conn = repro.connect("pydbc:standard:facade_clash")
        with pytest.raises(errors.ConnectionError_):
            repro.connect(
                "pydbc:standard:facade_clash", data_dir=str(tmp_path)
            )
        conn.close()

    def test_pooled_connect_returns_to_pool(self):
        conn = repro.connect(
            "pydbc:standard:facade_pool", pooled=True, timeout=1.0
        )
        pool = repro.DriverManager.get_pool("pydbc:standard:facade_pool")
        assert pool.stats()["in_use"] == 1
        conn.close()
        assert pool.stats()["in_use"] == 0
        assert pool.stats()["idle"] == 1

    def test_malformed_url_rejected(self, tmp_path):
        with pytest.raises(errors.ConnectionError_):
            repro.connect("jdbc:odbc:acme", data_dir=str(tmp_path))


class TestErrorHierarchy:
    def test_every_public_error_derives_from_reproerror(self):
        for name in errors.__all__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError), name

    def test_every_public_error_carries_sqlstate(self):
        for name in errors.__all__:
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(
                obj, errors.ReproError
            ):
                exc = obj("probe")
                assert isinstance(exc.sqlstate, str) and exc.sqlstate

    def test_facade_reexports_are_identical(self):
        assert repro.ReproError is errors.ReproError
        assert repro.SQLException is errors.SQLException


class TestDeprecationShims:
    @pytest.mark.parametrize(
        "module, name",
        [
            ("repro.engine", "Database"),
            ("repro.engine", "Session"),
            ("repro.engine", "Dialect"),
            ("repro.engine", "DIALECTS"),
            ("repro.engine", "save_database"),
            ("repro.engine", "load_database"),
            ("repro.dbapi", "DriverManager"),
            ("repro.dbapi", "registry"),
            ("repro.dbapi", "Connection"),
            ("repro.dbapi", "ConnectionPool"),
            ("repro.dbapi", "PooledConnection"),
            ("repro.runtime", "ConnectionContext"),
            ("repro.runtime", "ExecutionContext"),
        ],
    )
    def test_old_import_path_warns_and_matches_facade(
        self, module, name
    ):
        import importlib

        mod = importlib.import_module(module)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(mod, name)
        assert _deprecations(caught), f"{module}.{name} did not warn"
        assert value is getattr(repro, name)

    def test_submodule_imports_stay_silent(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.engine import ast  # noqa: F401
            from repro.engine.database import Database  # noqa: F401
            from repro.dbapi.driver import DriverManager  # noqa: F401
            from repro.dbapi import Statement  # noqa: F401
            from repro.runtime import sqlj, SQLJIterator  # noqa: F401
            from repro.runtime.context import (  # noqa: F401
                ConnectionContext,
            )
        assert not _deprecations(caught)

    def test_unknown_attribute_still_raises(self):
        import repro.engine

        with pytest.raises(AttributeError):
            repro.engine.NoSuchThing
        with pytest.raises(AttributeError):
            repro.dbapi.NoSuchThing

    def test_pool_checkout_timeout_kwarg_shim(self, db):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool = repro.ConnectionPool(db, checkout_timeout=2.5)
        assert _deprecations(caught)
        assert pool.timeout == 2.5
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert pool.checkout_timeout == 2.5
        assert _deprecations(caught)
        pool.close()

    def test_pool_timeout_kwarg_is_silent(self, db):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            pool = repro.ConnectionPool(db, timeout=1.5)
        assert not _deprecations(caught)
        assert pool.timeout == 1.5
        pool.close()

    def test_context_target_kwarg_shim(self, db):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ctx = repro.ConnectionContext(target=db)
        assert _deprecations(caught)
        assert ctx.session.database is db
        ctx.close()

    def test_context_url_positional_is_silent(self, db):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            ctx = repro.ConnectionContext(db)
        assert not _deprecations(caught)
        ctx.close()

    def test_context_timeout_threads_to_pool(self, db):
        ctx = repro.ConnectionContext(db, pooled=True, timeout=0.5)
        assert ctx.timeout == 0.5
        assert ctx.execution_context.timeout == 0.5
        ctx.close()

    def test_execution_context_timeout_kwarg(self):
        ec = repro.ExecutionContext(timeout=3.0)
        assert ec.timeout == 3.0
        assert ec.update_count == -1
