"""Strongly typed iterators (SQLJ Part 0 cursors).

Two flavours, exactly as the paper presents them:

* **Positional** — ``#sql public iterator ByPos (str, int);`` — columns
  are bound by position via ``FETCH :iter INTO :a, :b``; the declared
  arity must match the query, and each fetched value must be of the
  declared host type.
* **Named** — ``#sql public iterator ByName (int year, str name);`` —
  columns are bound by *result-column name*; the query's column names
  must cover the declared names, in any order, and values are read
  through generated accessor methods (``iter.year()``).

Type safety: at bind time the iterator validates the result's column
count/names and, where the result shape carries SQL type descriptors,
their compatibility with the declared host types; at read time each value
is checked against the declared host type, so an ill-typed column fails
deterministically rather than corrupting downstream code.
"""

from __future__ import annotations

import datetime
import decimal
from typing import Any, List, Optional, Tuple

from repro import errors
from repro.engine.database import StatementResult
from repro.sqltypes import TypeDescriptor

__all__ = ["SQLJIterator", "PositionalIterator", "NamedIterator"]

#: Host types considered compatible with each value class.
_COMPATIBLE = {
    int: (int,),
    float: (float, int, decimal.Decimal),
    str: (str,),
    bool: (bool,),
    bytes: (bytes,),
    decimal.Decimal: (decimal.Decimal, int),
    datetime.date: (datetime.date,),
    datetime.time: (datetime.time,),
    datetime.datetime: (datetime.datetime,),
}


def _descriptor_python_type(descriptor: Optional[TypeDescriptor]):
    if descriptor is None:
        return None
    python_types = descriptor.python_types
    return python_types[0] if python_types else None


def check_host_type(value: Any, host_type: Optional[type]) -> Any:
    """Validate a fetched value against a declared host type."""
    if value is None or host_type is None or host_type is object:
        return value
    allowed = _COMPATIBLE.get(host_type)
    if allowed is None:
        # UDT / arbitrary class declared in the iterator.
        if isinstance(value, host_type):
            return value
        raise errors.InvalidCastError(
            f"column value of class {type(value).__name__} does not "
            f"match declared iterator type {host_type.__name__}"
        )
    if isinstance(value, bool) and host_type is not bool:
        raise errors.InvalidCastError(
            "BOOLEAN column bound to non-bool iterator type"
        )
    if isinstance(value, allowed):
        return float(value) if host_type is float else value
    raise errors.InvalidCastError(
        f"column value of class {type(value).__name__} does not match "
        f"declared iterator type {host_type.__name__}"
    )


def _static_type_compatible(
    declared: Optional[type], descriptor: Optional[TypeDescriptor]
) -> bool:
    if declared is None or descriptor is None or declared is object:
        return True
    value_type = _descriptor_python_type(descriptor)
    if value_type is None:
        return True
    allowed = _COMPATIBLE.get(declared)
    if allowed is None:  # declared UDT class
        return issubclass(value_type, declared) or value_type is object
    return value_type in allowed


class SQLJIterator:
    """Common cursor behaviour over a materialised rowset."""

    def __init__(self, result: StatementResult) -> None:
        if not result.is_rowset:
            raise errors.DataError(
                "iterator bound to a statement that returns no rows"
            )
        self._result = result
        self._position = -1
        self._closed = False
        self._end = False

    # -- paper API --------------------------------------------------------
    def next(self) -> bool:
        """Advance; False at end (named-iterator loop protocol)."""
        self._check_open()
        if self._position + 1 >= len(self._result.rows):
            self._end = True
            return False
        self._position += 1
        return True

    def endfetch(self) -> bool:
        """True once a FETCH has moved past the last row."""
        return self._end

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed

    def row_count(self) -> int:
        return len(self._result.rows)

    # -- internals ----------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise errors.InvalidCursorStateError("iterator is closed")

    def _current_row(self) -> List[Any]:
        self._check_open()
        if self._end or not 0 <= self._position < len(self._result.rows):
            raise errors.InvalidCursorStateError(
                "iterator is not positioned on a row"
            )
        return self._result.rows[self._position]


class PositionalIterator(SQLJIterator):
    """Cursor with positionally-bound, type-checked columns.

    Subclasses (generated by the translator) set ``_column_types`` to a
    tuple of host types.
    """

    _column_types: Tuple[Optional[type], ...] = ()

    def __init__(self, result: StatementResult) -> None:
        super().__init__(result)
        declared = type(self)._column_types
        width = len(result.shape) if result.shape else 0
        if len(declared) != width:
            raise errors.InvalidCastError(
                f"iterator {type(self).__name__} declares {len(declared)} "
                f"columns but the query produces {width}"
            )
        if result.shape is not None:
            for index, (host_type, column) in enumerate(
                zip(declared, result.shape.columns)
            ):
                if not _static_type_compatible(
                    host_type, column.descriptor
                ):
                    raise errors.InvalidCastError(
                        f"iterator {type(self).__name__} column "
                        f"{index + 1} declares "
                        f"{getattr(host_type, '__name__', host_type)} but "
                        f"the query returns "
                        f"{column.descriptor.sql_spelling()}"
                    )

    def fetch_row(self) -> Optional[Tuple[Any, ...]]:
        """FETCH: advance and return the typed row, or None at end."""
        if not self.next():
            return None
        row = self._current_row()
        return tuple(
            check_host_type(value, host_type)
            for value, host_type in zip(row, type(self)._column_types)
        )


class NamedIterator(SQLJIterator):
    """Cursor with name-bound, type-checked columns.

    Subclasses set ``_columns`` to ``((name, host_type), ...)``; the
    translator also generates one accessor method per column.
    """

    _columns: Tuple[Tuple[str, Optional[type]], ...] = ()

    def __init__(self, result: StatementResult) -> None:
        super().__init__(result)
        shape = result.shape
        available = {}
        if shape is not None:
            for index, column in enumerate(shape.columns):
                available.setdefault(column.name, index)
        self._bindings = {}
        for name, host_type in type(self)._columns:
            key = name.lower()
            if key not in available:
                raise errors.UndefinedColumnError(
                    f"iterator {type(self).__name__} requires column "
                    f"{name!r}, absent from the query result"
                )
            index = available[key]
            if shape is not None and not _static_type_compatible(
                host_type, shape.columns[index].descriptor
            ):
                raise errors.InvalidCastError(
                    f"iterator {type(self).__name__} column {name!r} "
                    f"declares "
                    f"{getattr(host_type, '__name__', host_type)} but the "
                    f"query returns "
                    f"{shape.columns[index].descriptor.sql_spelling()}"
                )
            self._bindings[key] = (index, host_type)

    def _get(self, name: str) -> Any:
        row = self._current_row()
        index, host_type = self._bindings[name.lower()]
        return check_host_type(row[index], host_type)
