"""Binary portability: one translated binary, three database vendors.

Demonstrates the paper's deployment story end to end:

1. translate a ``.psqlj`` program into a module + profile and package
   them into a pjar (the paper's ``Foo.jar``);
2. run the vendor customizers over the pjar (Customizer1, Customizer2 in
   the installation-phase slides) — here for the ``acme`` (TOP n, ``+``
   concat) and ``zenith`` (FETCH FIRST) engine dialects;
3. deploy the same binary against all three engines and show identical
   results, including the vendor-specific SQL each customization ships.

Run:  python examples/portability_demo.py
"""

import importlib
import os
import sys
import tempfile

from repro import Database
from repro.profiles.customizer import customize_pjar
from repro.profiles.pjar import read_pjar, unpack_pjar
from repro.profiles.serialization import profile_from_bytes
from repro.translator import TranslationOptions, Translator

PROGRAM = """
#sql iterator TopEarners (str name, str badge);
#sql context Payroll;

def top_earners(ctx):
    out = []
    it: TopEarners
    #sql [ctx] it = { SELECT name, id || '*' AS badge FROM emps
                      WHERE sales IS NOT NULL
                      ORDER BY sales DESC LIMIT 3 };
    while it.next():
        out.append((it.name(), it.badge()))
    it.close()
    return out
"""

EMPS_DDL = (
    "create table emps (name varchar(50), id char(5), "
    "state char(20), sales decimal(6,2))"
)

EMPS_ROWS = [
    "('Alice', 'E1', 'CA', 100.50)",
    "('Bob', 'E2', 'MN', 50.25)",
    "('Carol', 'E3', 'NV', 75.00)",
    "('Dan', 'E4', 'FL', 200.00)",
    "('Eve', 'E5', 'VT', 10.00)",
]


def make_engine(name, dialect):
    database = Database(name=name, dialect=dialect)
    session = database.create_session(autocommit=True)
    session.execute(EMPS_DDL)
    for row in EMPS_ROWS:
        session.execute(f"insert into emps values {row}")
    return database


def main():
    with tempfile.TemporaryDirectory() as workdir:
        # -- translation phase ----------------------------------------
        exemplar = make_engine("exemplar", "standard")
        source_path = os.path.join(workdir, "earners.psqlj")
        with open(source_path, "w") as handle:
            handle.write(PROGRAM)
        translator = Translator(TranslationOptions(exemplar=exemplar))
        result = translator.translate_file(
            source_path, output_dir=os.path.join(workdir, "build"),
            package=True,
        )
        print(f"translated and packaged -> "
              f"{os.path.basename(result.pjar_path)}")

        # -- customization phase ---------------------------------------
        customize_pjar(
            result.pjar_path, ["standard", "acme", "zenith"]
        )
        members = read_pjar(result.pjar_path)
        profile = profile_from_bytes(
            members["earners_SJProfile0.ser"]
        )
        print("\ncustomizations now inside the binary:")
        for customization in profile.customizations:
            print(f"  {customization.describe()}")
            for text in customization.sql_texts:
                print(f"      {text}")

        # -- installation + execution phase ----------------------------
        deploy_dir = os.path.join(workdir, "deploy")
        unpack_pjar(result.pjar_path, deploy_dir)
        sys.path.insert(0, deploy_dir)
        try:
            module = importlib.import_module("earners")
        finally:
            sys.path.remove(deploy_dir)

        print("\nsame binary against three vendors:")
        outputs = {}
        for dialect in ("standard", "acme", "zenith"):
            engine = make_engine(f"engine_{dialect}", dialect)
            ctx = module.Payroll(engine)
            outputs[dialect] = module.top_earners(ctx)
            print(f"  {dialect:8s}: {outputs[dialect]}")

        assert outputs["standard"] == outputs["acme"] == \
            outputs["zenith"]
        print("\nall three engines returned identical results — "
              "binary portability holds")


if __name__ == "__main__":
    main()
