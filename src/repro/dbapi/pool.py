"""Bounded connection pooling over the embedded engine.

The paper's connection-context model (Part 0) assumes many clients
sharing one database; :class:`ConnectionPool` is the data-tier half of
that bargain: a bounded set of engine sessions handed out as
JDBC-shaped connections, surviving client churn and injected faults.

Semantics:

* **Bounded.** At most ``max_size`` sessions exist at once; ``min_size``
  are opened eagerly.  A checkout against an exhausted pool blocks up to
  ``timeout`` seconds (the pre-façade spelling ``checkout_timeout``
  still works but warns), then raises
  :class:`repro.errors.PoolTimeoutError` (SQLSTATE 08004) — never hangs
  forever, never over-allocates.
* **Health-checked.** Sessions are inspected on return and again on
  checkout: a session that died (closed, killed by a fault) is discarded
  and replaced; a session returned mid-transaction is rolled back before
  reuse, so the next client never inherits uncommitted work.  Probes,
  dials and closes — network round-trips for ``repro://`` sessions —
  always run *outside* the pool lock, so one unresponsive peer slows
  only its own checkout, never the whole pool.
* **Recycled.** With ``max_age`` set, sessions older than that many
  seconds are retired instead of being reused (stale-connection
  recycling).
* **Observable.** Gauges (``pool.<name>.in_use`` / ``.idle`` / ``.size``)
  and monotonic counters (``pool.checkouts`` / ``checkins`` /
  ``timeouts`` / ``recycled`` / ``created``) flow into
  ``repro.observability.snapshot()``.

The fault-injection site ``pool.checkout`` fires inside
:meth:`ConnectionPool.checkout` (see :mod:`repro.faultpoints`), and
``pool.checkin`` pipes the returning session so tests can kill it in
flight.
"""

from __future__ import annotations

import threading
import time
import warnings
from typing import Any, Dict, List, Optional, Tuple

from repro import errors, faultpoints
from repro.dbapi.connection import Connection
from repro.engine.database import Database, Session
from repro.observability import metrics as _metrics

__all__ = ["ConnectionPool", "PooledConnection"]

_CHECKOUTS = _metrics.registry.counter("pool.checkouts")
_CHECKINS = _metrics.registry.counter("pool.checkins")
_TIMEOUTS = _metrics.registry.counter("pool.timeouts")
_RECYCLED = _metrics.registry.counter("pool.recycled")
_CREATED = _metrics.registry.counter("pool.created")


class PooledConnection(Connection):
    """A connection whose ``close`` returns its session to the pool."""

    def __init__(
        self, session: Session, url: str, pool: "ConnectionPool"
    ) -> None:
        super().__init__(session, url=url, owns_session=True)
        self._pool = pool

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pool._checkin(self.session)

    def __del__(self) -> None:
        if not self._closed:
            warnings.warn(
                f"unclosed pooled connection to {self.url!r} "
                "(leaked without close(); its slot was reclaimed)",
                ResourceWarning,
                stacklevel=2,
                source=self,
            )
            self._closed = True
            self._pool._abandon(self.session)


class ConnectionPool:
    """A bounded pool of engine sessions on one database."""

    def __init__(
        self,
        database: Database,
        *,
        min_size: int = 0,
        max_size: int = 8,
        timeout: Optional[float] = None,
        max_age: Optional[float] = None,
        user: Optional[str] = None,
        autocommit: bool = True,
        name: Optional[str] = None,
        url: str = "",
        checkout_timeout: Optional[float] = None,
    ) -> None:
        if checkout_timeout is not None:
            warnings.warn(
                "ConnectionPool(checkout_timeout=...) is deprecated; "
                "use the unified spelling timeout=...",
                DeprecationWarning,
                stacklevel=2,
            )
            if timeout is None:
                timeout = checkout_timeout
        if timeout is None:
            timeout = 5.0
        if max_size < 1:
            raise errors.ConnectionError_("pool max_size must be >= 1")
        if min_size < 0 or min_size > max_size:
            raise errors.ConnectionError_(
                "pool min_size must be between 0 and max_size"
            )
        self.database = database
        self.min_size = min_size
        self.max_size = max_size
        #: Default checkout wait in seconds (``timeout=`` at
        #: construction; per-call override via ``checkout(timeout=...)``).
        self.timeout = timeout
        self.max_age = max_age
        self.user = user
        self.autocommit = autocommit
        self.name = name or database.name
        self.url = url or f"pool:{self.name}"
        self._cond = threading.Condition(threading.Lock())
        self._idle: List[Session] = []
        self._in_use = 0
        self._closed = False
        self._gauge_in_use = _metrics.registry.counter(
            f"pool.{self.name}.in_use"
        )
        self._gauge_idle = _metrics.registry.counter(
            f"pool.{self.name}.idle"
        )
        self._gauge_size = _metrics.registry.counter(
            f"pool.{self.name}.size"
        )
        # Eager sessions are dialled outside the lock: opening a remote
        # session is a network handshake and must never run under _cond.
        eager = [self._open_session() for _ in range(min_size)]
        with self._cond:
            self._idle.extend(eager)
            self._update_gauges_locked()

    # ------------------------------------------------------------------
    # checkout / checkin
    # ------------------------------------------------------------------
    def checkout(
        self, timeout: Optional[float] = None
    ) -> PooledConnection:
        """Borrow a connection, blocking up to ``timeout`` seconds.

        Raises :class:`repro.errors.PoolTimeoutError` when the pool
        stays exhausted for the whole wait.
        """
        if timeout is None:
            timeout = self.timeout
        deadline = time.monotonic() + timeout
        while True:
            candidate, open_new = self._reserve_slot(deadline, timeout)
            # The slot is reserved; everything that can touch the
            # network — dialling a new session, the PING health probe,
            # rolling back stale work, closing the unhealthy — runs
            # outside the pool lock, so one hung peer cannot freeze
            # every other checkout and checkin.
            session = None
            try:
                if open_new:
                    session = self._open_session()
                elif self._healthy(candidate):
                    session = candidate
                else:
                    self._dispose(candidate)
                    _RECYCLED.increment()
            except BaseException:
                self._release_slot()
                raise
            if session is not None:
                break
            self._release_slot()  # unhealthy idle session: try again
        try:
            faultpoints.trigger("pool.checkout")
        except BaseException:
            # An injected checkout failure must not leak the slot.
            self._checkin(session)
            raise
        _CHECKOUTS.increment()
        return PooledConnection(session, self.url, self)

    def _reserve_slot(
        self, deadline: float, timeout: float
    ) -> "Tuple[Optional[Session], bool]":
        """Claim an idle session or the right to open a new one.

        Returns ``(candidate, open_new)`` with the slot already counted
        in-use, so the caller may probe or dial without the lock while
        the pool stays bounded.  Blocks until the deadline when the
        pool is exhausted.
        """
        with self._cond:
            self._check_open()
            while True:
                if self._idle:
                    self._in_use += 1
                    session = self._idle.pop()
                    self._update_gauges_locked()
                    return session, False
                if self._total_locked() < self.max_size:
                    self._in_use += 1
                    self._update_gauges_locked()
                    return None, True
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    _TIMEOUTS.increment()
                    raise errors.PoolTimeoutError(
                        f"pool {self.name!r} exhausted: all "
                        f"{self.max_size} connections in use after "
                        f"waiting {timeout:.3f}s"
                    )
                self._cond.wait(remaining)
                self._check_open()

    def _release_slot(self) -> None:
        """Give back a reserved slot (probe failed or dial raised)."""
        with self._cond:
            self._in_use = max(0, self._in_use - 1)
            self._update_gauges_locked()
            self._cond.notify()

    def _checkin(self, session: Session) -> None:
        """Return ``session`` to the pool (health check + recycling)."""
        session = faultpoints.pipe("pool.checkin", session)
        _CHECKINS.increment()
        with self._cond:
            pool_closed = self._closed
        # Probe and reset outside the lock: ping() and rollback() are
        # network round-trips for remote sessions.
        healthy = not pool_closed and self._healthy(session)
        if healthy:
            try:
                session.autocommit = self.autocommit
            except errors.SQLException:
                healthy = False
        if not healthy:
            self._dispose(session)
            if not pool_closed:
                _RECYCLED.increment()
        dispose_late: Optional[Session] = None
        with self._cond:
            self._in_use = max(0, self._in_use - 1)
            if healthy and not self._closed:
                self._idle.append(session)
            elif healthy:
                dispose_late = session  # pool closed while we probed
            self._update_gauges_locked()
            self._cond.notify()
        if dispose_late is not None:
            self._dispose(dispose_late)

    def _abandon(self, session: Session) -> None:
        """Reclaim the slot of a leaked (never-closed) connection."""
        self._dispose(session)
        _RECYCLED.increment()
        with self._cond:
            self._in_use = max(0, self._in_use - 1)
            self._update_gauges_locked()
            self._cond.notify()

    # ------------------------------------------------------------------
    # internals — session I/O; never call these with self._cond held
    # ------------------------------------------------------------------
    def _open_session(self) -> Session:
        session = self.database.create_session(
            user=self.user, autocommit=self.autocommit
        )
        session._pool_opened_at = time.monotonic()
        _CREATED.increment()
        return session

    def _healthy(self, session: Session) -> bool:
        if session.closed:
            return False
        if self.max_age is not None:
            opened = getattr(session, "_pool_opened_at", None)
            if opened is not None and \
                    time.monotonic() - opened > self.max_age:
                return False
        # Sessions with a liveness probe (remote repro:// sessions) get
        # round-tripped: a TCP connection whose server died looks open
        # locally until the next read, so `closed` alone cannot catch
        # it.  A failed probe marks the session dead and frees the slot.
        probe = getattr(session, "ping", None)
        if probe is not None and not probe():
            return False
        if session.transaction_log.active:
            # Never hand uncommitted work to the next client.
            try:
                session.rollback()
            except errors.SQLException:
                return False
        return True

    def _dispose(self, session: Session) -> None:
        try:
            session.close()
        except errors.SQLException:  # pragma: no cover - best effort
            pass

    # ------------------------------------------------------------------
    # internals (call with self._cond held)
    # ------------------------------------------------------------------
    def _total_locked(self) -> int:
        return self._in_use + len(self._idle)

    def _update_gauges_locked(self) -> None:
        self._gauge_in_use.value = self._in_use
        self._gauge_idle.value = len(self._idle)
        self._gauge_size.value = self._total_locked()

    def _check_open(self) -> None:
        if self._closed:
            raise errors.ConnectionClosedError(
                f"pool {self.name!r} is closed"
            )

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Point-in-time view of pool occupancy."""
        with self._cond:
            return {
                "name": self.name,
                "in_use": self._in_use,
                "idle": len(self._idle),
                "size": self._total_locked(),
                "max_size": self.max_size,
                "closed": self._closed,
            }

    @property
    def checkout_timeout(self) -> float:
        """Deprecated alias for :attr:`timeout`."""
        warnings.warn(
            "ConnectionPool.checkout_timeout is deprecated; "
            "read .timeout instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.timeout

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close all idle sessions and refuse further checkouts.

        Connections currently checked out stay usable; their sessions
        are closed when returned.
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            doomed = list(self._idle)
            self._idle.clear()
            self._update_gauges_locked()
            self._cond.notify_all()
        for session in doomed:
            self._dispose(session)

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
