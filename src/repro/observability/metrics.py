"""Process-wide counters and histograms.

The registry is the measurement substrate the ROADMAP's performance work
builds on: every layer of the pipeline (engine, dbapi, SQLJ runtime,
procedures) increments named counters as it executes, and
``repro.observability.snapshot()`` returns one consolidated view.

Counters are always on — a disabled tracer silences *span* output, but
counting stays active because a dict lookup plus an integer add is
negligible next to parsing or executing a statement.  Registry mutation
(creating a counter the first time a name is seen) is guarded by the
registry lock, and every counter/histogram mutation takes the
instrument's own lock, so totals are **exact** under concurrency: a
16-thread workload reports precisely as many statements as it ran
(``value += n`` compiles to a read-modify-write that can interleave
even under the GIL).  The per-instrument lock is uncontended in the
common case and costs well under a microsecond next to parsing or
executing a statement.

Well-known names used across the codebase:

==============================  ============================================
name                            meaning
==============================  ============================================
``statements.<kind>``           statements executed, by AST node kind
``rows.returned``               rows materialised for rowset results
``rows.scanned``                rows read by SeqScan/IndexScan from tables
``index.lookups``               IndexScan probes (point or range)
``plan_cache.*``                engine plan cache ``hits`` / ``misses`` /
                                ``evictions`` (capacity or stale schema)
``rows.fetched``                rows pulled through SQLJ ``FETCH``
``sqlj.clauses``                profile entries executed (``#sql`` clauses)
``dbapi.executions``            Statement / PreparedStatement executions
``procedures.calls``            external procedure invocations
``functions.calls``             external function invocations
``profile.statement_cache.*``   RTStatement cache ``hits`` / ``misses``
``errors.<sqlstate>``           SQLExceptions raised, by SQLSTATE
``statement.seconds``           histogram of per-statement wall time
``waits.lock.shared``           histogram of blocked shared (reader)
                                acquisitions of the database lock, seconds
``waits.lock.exclusive``        histogram of blocked exclusive (writer)
                                acquisitions, seconds
``waits.wal.sync``              histogram of time spent waiting for a WAL
                                fsync (group commit included), seconds
``slow_query.count``            slow-query log records emitted
``stats.evictions``             statement-statistics entries evicted at
                                capacity (see observability/stats.py)
``lsm.flushes``                 LSM memtable flushes (checkpoints on an
                                ``storage="lsm"`` database)
``lsm.runs_written``            SSTable run files written by flushes
``lsm.compactions``             background run merges completed
``lsm.tombstones_gced``         data/tombstone pairs annihilated below
                                the MVCC horizon during compaction
``lsm.compact.corruption``      background compactions aborted by a
                                corrupt run frame (CRC mismatch); the
                                store stops background passes until
                                reopened
``lsm.stall_ms``                histogram of the write pause each LSM
                                flush imposed, milliseconds (compare
                                ``wal.checkpoint.seconds``)
==============================  ============================================
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "registry",
    "increment",
    "observe",
    "snapshot",
    "reset",
]


class Counter:
    """A monotonically increasing integer.

    Mutate through :meth:`increment` (locked, exact under threads);
    ``value`` stays public for reads and for gauge-style assignment
    (e.g. pool occupancy), where the writer provides its own ordering.
    """

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0
        self._lock = threading.Lock()

    def increment(self, amount: int = 1) -> None:
        # acquire/release instead of ``with``: several counters sit on
        # the per-statement path, and the context-manager protocol
        # costs more than the uncontended acquire itself (try/finally
        # is free on 3.11, so the unlock guarantee stays).
        self._lock.acquire()
        try:
            self.value += amount
        finally:
            self._lock.release()


class Histogram:
    """Streaming summary of observed values (count/sum/min/max/mean).

    Full bucketed histograms are overkill for an in-process engine; the
    four running aggregates answer the questions the benchmarks ask
    (how many, how much in total, best and worst case).
    """

    __slots__ = ("count", "total", "minimum", "maximum", "_lock")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        self._lock.acquire()  # see Counter.increment
        try:
            self.count += 1
            self.total += value
            if self.minimum is None or value < self.minimum:
                self.minimum = value
            if self.maximum is None or value > self.maximum:
                self.maximum = value
        finally:
            self._lock.release()

    @property
    def mean(self) -> Optional[float]:
        if self.count == 0:
            return None
        return self.total / self.count

    def summary(self) -> Dict[str, Any]:
        # Under the instrument lock so a concurrent observe() cannot
        # produce a summary whose count and sum disagree.
        with self._lock:
            count = self.count
            total = self.total
            return {
                "count": count,
                "sum": total,
                "min": self.minimum,
                "max": self.maximum,
                "mean": (total / count) if count else None,
            }


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(name, Counter())
        return counter

    def histogram(self, name: str) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(name, Histogram())
        return histogram

    # ------------------------------------------------------------------
    # hot-path convenience
    # ------------------------------------------------------------------
    def increment(self, name: str, amount: int = 1) -> None:
        self.counter(name).increment(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # ------------------------------------------------------------------
    # inspection / lifecycle
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time copy: plain dicts, safe to mutate or serialise.

        Each value is read under its instrument's own lock — the same
        lock ``increment``/``observe``/``reset`` take — so a snapshot
        racing a reset never sees a counter that was read mid-update,
        and each histogram's count and sum always agree.  (The snapshot
        is per-instrument consistent, not a global atomic cut; a cut
        would require stopping every writer.)
        """
        with self._lock:
            counters = {}
            for name, counter in self._counters.items():
                with counter._lock:
                    counters[name] = counter.value
            histograms = {
                name: histogram.summary()
                for name, histogram in self._histograms.items()
            }
        return {"counters": counters, "histograms": histograms}

    def reset(self) -> None:
        """Zero all recorded values (tests and benchmark reruns).

        Resets in place rather than dropping the objects: hot paths
        cache :class:`Counter` instances at import time, and those
        cached handles must keep pointing at live registry entries.
        """
        with self._lock:
            for counter in self._counters.values():
                with counter._lock:
                    counter.value = 0
            for histogram in self._histograms.values():
                with histogram._lock:
                    histogram.count = 0
                    histogram.total = 0.0
                    histogram.minimum = None
                    histogram.maximum = None


#: The process-wide registry every layer reports into.
registry = MetricsRegistry()


def increment(name: str, amount: int = 1) -> None:
    registry.increment(name, amount)


def observe(name: str, value: float) -> None:
    registry.observe(name, value)


def snapshot() -> Dict[str, Any]:
    return registry.snapshot()


def reset() -> None:
    registry.reset()
