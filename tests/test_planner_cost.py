"""Cost-based planner: ANALYZE statistics, plan choice, introspection.

Covers the cost-based planner end to end: the statistics collector
(row counts, NDV, null fractions, histograms), the seqscan-vs-indexscan
crossover, hash-join build-side choice, greedy reordering of 3+ table
joins, plan-cache invalidation on ANALYZE (via the statistics version),
the typed ``PlanNode`` tree returned by ``Session.explain`` /
``Connection.explain`` / ``RemoteSession.explain``, the
``EXPLAIN (FORMAT JSON)`` wire format, the ``repro_stats.statistics``
view, and durability of statistics across checkpoint restore and WAL
crash recovery.  A differential battery asserts the cost-based planner
returns row-identical results to the rule-based one on a generated
workload corpus.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

import repro
from repro import Database, errors
from repro.engine.explain import PlanNode, format_plan, format_plan_tree
from repro.engine.statistics import (
    ColumnStatistics,
    collect_table_statistics,
)
from repro.server import ReproServer
from repro.testing import WorkloadGenerator


@pytest.fixture
def session():
    return Database(name="costdb").create_session(autocommit=True)


def _seed(session, *, rows=1000, groups=10):
    session.execute(
        "create table emps (id int, dept int, sal int)"
    )
    session.execute("create index emps_dept on emps (dept)")
    session.execute_batch(
        "insert into emps values (?, ?, ?)",
        [(i, i % groups, i * 3) for i in range(rows)],
    )
    session.execute("analyze emps")


def _star(session, *, dim1=600, dim2=500, fact=4000):
    session.execute("create table dim1 (id int, name varchar(16))")
    session.execute("create table dim2 (id int, name varchar(16))")
    session.execute("create table fact (id int, d1 int, d2 int)")
    session.execute_batch(
        "insert into dim1 values (?, ?)",
        [(i, f"a{i}") for i in range(dim1)],
    )
    session.execute_batch(
        "insert into dim2 values (?, ?)",
        [(i, f"b{i}") for i in range(dim2)],
    )
    session.execute_batch(
        "insert into fact values (?, ?, ?)",
        [(i, i % dim1, i % dim2) for i in range(fact)],
    )
    session.execute("analyze")


STAR_SQL = (
    "select dim1.name, dim2.name, fact.id "
    "from dim1, dim2, fact "
    "where fact.d1 = dim1.id and fact.d2 = dim2.id"
)


def _rule_based(session):
    database = session.database
    database.planner_options = dataclasses.replace(
        database.planner_options, cost_based=False
    )
    database.plan_cache.clear()


# ---------------------------------------------------------------------------
# statistics collector
# ---------------------------------------------------------------------------


class TestStatisticsCollector:
    def test_row_count_ndv_nulls(self):
        class T:
            name = "t"
            columns = [type("C", (), {"name": "a"}),
                       type("C", (), {"name": "b"})]

        rows = [[i % 5, None if i % 4 == 0 else "x"] for i in range(100)]
        stats = collect_table_statistics(T(), rows, version=3)
        assert stats.row_count == 100 and stats.version == 3
        a = stats.column("a")
        assert a.ndv == 5 and a.null_fraction == 0.0
        assert a.min_value == 0 and a.max_value == 4
        b = stats.column("b")
        assert b.ndv == 1 and b.null_fraction == 0.25

    def test_eq_selectivity(self):
        column = ColumnStatistics(
            name="c", ndv=10, null_fraction=0.5,
            min_value=0, max_value=9,
        )
        # Half the rows are NULL (never equal), spread over 10 values.
        assert column.eq_selectivity() == pytest.approx(0.05)

    def test_range_selectivity_uses_histogram(self):
        class T:
            name = "t"
            columns = [type("C", (), {"name": "a"})]

        stats = collect_table_statistics(T(), [[i] for i in range(1000)])
        column = stats.column("a")
        sel = column.range_selectivity("<", 250)
        assert 0.15 < sel < 0.35
        sel = column.range_selectivity(">", 900)
        assert sel < 0.2

    def test_analyze_statement_populates_catalog(self, session):
        _seed(session)
        stats = session.catalog.get_statistics("emps")
        assert stats.row_count == 1000
        assert stats.column("dept").ndv == 10
        assert session.catalog.stats_version >= 1

    def test_analyze_unknown_table_rejected(self, session):
        with pytest.raises(errors.SQLException):
            session.execute("analyze nope")

    def test_analyze_view_rejected(self, session):
        session.execute("create table t (a int)")
        session.execute("create view v as select a from t")
        with pytest.raises(errors.FeatureNotSupportedError):
            session.execute("analyze v")


# ---------------------------------------------------------------------------
# scan choice: seqscan vs indexscan crossover
# ---------------------------------------------------------------------------


class TestScanChoice:
    def _tree(self, session, sql):
        return session.explain(sql)

    def test_selective_predicate_uses_index(self, session):
        # dept has 10 distinct values over 1000 rows: 100 matches.
        # index cost 4*100+1 = 401 < seq cost 1000.
        _seed(session)
        tree = self._tree(
            session, "select * from emps where dept = 3"
        )
        scan = tree.find("IndexScan")
        assert scan is not None
        assert scan.estimated_cost == pytest.approx(401.0)
        assert scan.estimated_rows == pytest.approx(100.0)
        [alt] = scan.rejected
        assert "SeqScan" in alt.description
        assert alt.estimated_cost == pytest.approx(1000.0)

    def test_nonselective_predicate_keeps_seqscan(self, session):
        # dept = 3 matches half the table: index cost 4*500+1 > 1000.
        _seed(session, groups=2)
        tree = self._tree(
            session, "select * from emps where dept = 1"
        )
        assert tree.find("IndexScan") is None
        scan = tree.find("SeqScan")
        assert scan is not None
        [alt] = scan.rejected
        assert "IndexScan using emps_dept" in alt.description
        assert alt.estimated_cost > 1000.0

    def test_without_stats_rule_based_choice(self, session):
        # No ANALYZE: the planner falls back to the rule-based
        # always-take-the-index behavior and annotates nothing.
        session.execute("create table t (a int)")
        session.execute("create index t_a on t (a)")
        session.execute("insert into t values (1)")
        tree = session.explain("select * from t where a = 1")
        scan = tree.find("IndexScan")
        assert scan is not None
        assert scan.estimated_cost is None and scan.rejected == []

    def test_crossover_results_identical(self, session):
        _seed(session, groups=2)
        sql = "select id from emps where dept = 1"
        cost = sorted(tuple(r) for r in session.execute(sql).rows)
        _rule_based(session)
        rule = sorted(tuple(r) for r in session.execute(sql).rows)
        assert cost == rule and len(cost) == 500


# ---------------------------------------------------------------------------
# joins: build side and greedy reordering
# ---------------------------------------------------------------------------


class TestJoinChoice:
    def test_build_side_is_smaller_input(self, session):
        _star(session)
        tree = session.explain(
            "select * from dim1 join fact on dim1.id = fact.d1"
        )
        join = tree.find("HashJoin")
        assert "build=left" in join.description
        [alt] = join.rejected
        assert "building on the right" in alt.description
        assert alt.estimated_cost > join.estimated_cost

    def test_inner_build_left_results_match(self, session):
        _star(session, dim1=50, dim2=40, fact=500)
        sql = (
            "select dim1.name, fact.id from dim1 "
            "join fact on dim1.id = fact.d1"
        )
        cost = sorted(tuple(r) for r in session.execute(sql).rows)
        _rule_based(session)
        rule = sorted(tuple(r) for r in session.execute(sql).rows)
        assert cost == rule and len(cost) == 500

    def test_star_join_reordered_with_rejected_from_order(self, session):
        # FROM order (dim1, dim2, fact) folds dim1 x dim2 as a
        # 300 000-pair cross product; the greedy order starts from a
        # dimension and joins fact next, never crossing.
        _star(session)
        tree = session.explain(STAR_SQL)
        rejected = [
            alt for node in tree.walk() for alt in node.rejected
            if "FROM order" in alt.description
        ]
        assert len(rejected) == 1
        [alt] = rejected
        chosen = next(
            node.estimated_cost for node in tree.walk()
            if node.estimated_cost is not None
        )
        assert alt.estimated_cost > chosen
        # The chosen plan has no cross join.
        assert all(
            "CROSS" not in node.description for node in tree.walk()
        )

    def test_tiny_inputs_keep_from_order(self, session):
        # With 5-row dimensions the cross product is genuinely cheaper
        # than two hash joins; the greedy order must not be adopted.
        _star(session, dim1=5, dim2=5, fact=2000)
        tree = session.explain(STAR_SQL)
        assert any(
            "CROSS" in node.description for node in tree.walk()
        )
        assert not any(
            "FROM order" in alt.description
            for node in tree.walk() for alt in node.rejected
        )

    def test_reordered_join_results_identical(self, session):
        _star(session, dim1=60, dim2=50, fact=3000)
        cost = sorted(tuple(r) for r in session.execute(STAR_SQL).rows)
        _rule_based(session)
        rule = sorted(tuple(r) for r in session.execute(STAR_SQL).rows)
        assert cost == rule and len(cost) == 3000

    def test_reorder_preserves_column_order_and_names(self, session):
        _star(session, dim1=60, dim2=50, fact=300)
        result = session.execute(
            "select * from dim1, dim2, fact "
            "where fact.d1 = dim1.id and fact.d2 = dim2.id "
            "and fact.id = 7"
        )
        names = [c.name for c in result.shape.columns]
        assert names == ["id", "name", "id", "name", "id", "d1", "d2"]
        [row] = result.rows
        assert list(row) == [7, "a7", 7, "b7", 7, 7, 7]


# ---------------------------------------------------------------------------
# plan cache: ANALYZE invalidates via the statistics version
# ---------------------------------------------------------------------------


class TestAnalyzeInvalidatesPlanCache:
    def test_analyze_evicts_cached_plan(self, session):
        # Plan cached while the index looks attractive; after the data
        # skews, ANALYZE must force a replan (here: to a seqscan).
        session.execute("create table t (a int, b int)")
        session.execute("create index t_a on t (a)")
        session.execute_batch(
            "insert into t values (?, ?)",
            [(i, i) for i in range(1000)],
        )
        session.execute("analyze t")
        sql = "select b from t where a = 1"
        session.execute(sql)  # plans (IndexScan) and caches
        tree = session.explain(sql)
        assert tree.find("IndexScan") is not None

        # Skew: every row now has a = 1, so the index is worthless.
        session.execute("update t set a = 1")
        session.execute("analyze t")
        tree = session.explain(sql)
        assert tree.find("IndexScan") is None
        assert tree.find("SeqScan") is not None
        result = session.execute(sql)
        assert len(result.rows) == 1000

    def test_plan_cache_hits_stop_after_analyze(self, session):
        # Observable through repro_stats.statements: the run after
        # ANALYZE is a cache miss (replan), later runs hit again.
        session.execute("create table t (a int)")
        session.execute("insert into t values (1)")
        sql = "select a from t"
        for _ in range(3):
            session.execute(sql)
        [[hits_before]] = session.execute(
            "select plan_cache_hits from repro_stats.statements "
            "where statement = 'SELECT a FROM t'"
        ).rows
        assert hits_before >= 2
        session.execute("analyze t")
        session.execute(sql)  # stats version changed: miss + replan
        [[hits_after_miss]] = session.execute(
            "select plan_cache_hits from repro_stats.statements "
            "where statement = 'SELECT a FROM t'"
        ).rows
        assert hits_after_miss == hits_before
        session.execute(sql)  # re-cached: hits resume
        [[hits_resumed]] = session.execute(
            "select plan_cache_hits from repro_stats.statements "
            "where statement = 'SELECT a FROM t'"
        ).rows
        assert hits_resumed == hits_before + 1

    def test_prepared_statement_replans_after_analyze(self, session):
        session.execute("create table t (a int, b int)")
        session.execute("create index t_a on t (a)")
        session.execute_batch(
            "insert into t values (?, ?)",
            [(i, i) for i in range(500)],
        )
        session.execute("analyze t")
        plan = session.prepare("select b from t where a = ?")
        assert len(plan.execute((3,)).rows) == 1
        session.execute("update t set a = 1")
        session.execute("analyze t")
        # Replanned under the new statistics; results stay correct.
        assert len(plan.execute((1,)).rows) == 500


# ---------------------------------------------------------------------------
# plan introspection API
# ---------------------------------------------------------------------------


class TestExplainApi:
    def test_session_explain_returns_typed_tree(self, session):
        _seed(session)
        tree = session.explain("select * from emps where dept = 3")
        assert isinstance(tree, PlanNode)
        kinds = [node.kind for node in tree.walk()]
        assert kinds[0] == "Project" and "IndexScan" in kinds

    def test_session_explain_analyze_attaches_actuals(self, session):
        _seed(session)
        tree = session.explain(
            "select * from emps where dept = 3", analyze=True
        )
        scan = tree.find("IndexScan")
        assert scan.actual_rows == 100
        assert scan.actual_ms is not None and scan.actual_ms >= 0.0

    def test_session_explain_rejects_non_query(self, session):
        session.execute("create table t (a int)")
        with pytest.raises(errors.FeatureNotSupportedError):
            session.explain("insert into t values (1)")

    def test_explain_format_json_round_trips(self, session):
        _seed(session)
        result = session.execute(
            "explain (format json) select * from emps where dept = 3"
        )
        assert result.shape.columns[0].name == "query_plan"
        document = json.loads(result.rows[0][0])
        tree = PlanNode.from_dict(document["plan"])
        assert tree.to_dict() == document["plan"]
        assert tree.find("IndexScan").estimated_cost == 401.0

    def test_explain_analyze_format_json(self, session):
        _seed(session)
        result = session.execute(
            "explain (analyze, format json) "
            "select * from emps where dept = 3"
        )
        document = json.loads(result.rows[0][0])
        assert document["total_rows"] == 100
        assert document["total_ms"] >= 0.0
        tree = PlanNode.from_dict(document["plan"])
        assert tree.find("IndexScan").actual_rows == 100

    def test_explain_unknown_option_rejected(self, session):
        session.execute("create table t (a int)")
        with pytest.raises(errors.SQLException):
            session.execute("explain (format yaml) select * from t")

    def test_text_explain_unchanged_without_stats(self, session):
        session.execute("create table t (a int)")
        session.execute("insert into t values (1)")
        result = session.execute("explain select a from t where a = 1")
        lines = [row[0] for row in result.rows]
        assert lines == [
            "Project (1 columns)",
            "  Filter (a = 1)",
            "    SeqScan on t",
        ]

    def test_text_explain_shows_costs_and_rejects(self, session):
        _seed(session)
        result = session.execute(
            "explain select * from emps where dept = 3"
        )
        text = "\n".join(row[0] for row in result.rows)
        assert "(cost=401.0 rows=100)" in text
        assert "Rejected: SeqScan on emps (cost=1000.0)" in text

    def test_format_plan_shim_warns(self, session):
        from repro.engine.planner import plan_query
        from repro.engine.parser import parse_statement

        session.execute("create table t (a int)")
        statement = parse_statement("select a from t")
        plan, _shape = plan_query(statement, session)
        with pytest.warns(DeprecationWarning):
            lines = format_plan(plan.root)
        assert lines[0] == "Project (1 columns)"

    def test_connection_explain(self):
        with repro.connect() as conn:
            cur = conn.cursor()
            cur.execute("create table t (a int)")
            cur.execute("insert into t values (1)")
            conn.commit()
            tree = conn.explain("select a from t")
            assert isinstance(tree, PlanNode)
            assert tree.find("SeqScan") is not None


# ---------------------------------------------------------------------------
# over the wire
# ---------------------------------------------------------------------------


class TestRemoteExplain:
    @pytest.fixture
    def server(self):
        srv = ReproServer().start_background()
        yield srv
        srv.stop_background()

    def test_remote_explain_round_trip(self, server):
        url = f"repro://127.0.0.1:{server.port}/planremote"
        with repro.connect(url) as conn:
            cur = conn.cursor()
            cur.execute("create table t (a int, b int)")
            cur.execute("create index t_a on t (a)")
            cur.executemany(
                "insert into t values (?, ?)",
                [(i % 100, i) for i in range(1000)],
            )
            conn.commit()
            cur.execute("analyze t")
            conn.commit()
            tree = conn.session.explain("select * from t where a = 5")
            assert isinstance(tree, PlanNode)
            scan = tree.find("IndexScan")
            assert scan is not None
            assert scan.estimated_cost == pytest.approx(41.0)
            assert [a.description for a in scan.rejected] == [
                "SeqScan on t"
            ]
            # The text rendering works on the client-side tree too.
            assert format_plan_tree(tree)[0].startswith("Project")


# ---------------------------------------------------------------------------
# statistics view and durability
# ---------------------------------------------------------------------------


class TestStatisticsSurface:
    def test_statistics_view_rows(self, session):
        _seed(session)
        rows = session.execute(
            "select table_name, column_name, row_count, ndv, "
            "null_fraction, stats_version from repro_stats.statistics "
            "where table_name = 'emps' order by column_name"
        ).rows
        assert [r[1] for r in rows] == ["dept", "id", "sal"]
        dept = rows[0]
        assert dept[2] == 1000 and dept[3] == 10 and dept[4] == 0.0
        assert dept[5] >= 1

    def test_statistics_view_empty_until_analyze(self, session):
        session.execute("create table t (a int)")
        rows = session.execute(
            "select * from repro_stats.statistics"
        ).rows
        assert rows == []

    def test_statistics_survive_checkpoint_restore(self, tmp_path):
        from repro.engine.persistence import (
            load_database,
            save_database,
        )

        session = Database(name="p").create_session(autocommit=True)
        _seed(session)
        path = tmp_path / "db.bin"
        save_database(session.database, path)
        restored = load_database(path)
        stats = restored.catalog.get_statistics("emps")
        assert stats.row_count == 1000
        assert stats.column("dept").ndv == 10
        assert restored.catalog.stats_version >= 1

    def test_statistics_survive_wal_recovery(self, tmp_path):
        data_dir = str(tmp_path)
        conn = repro.connect(data_dir=data_dir)
        cur = conn.cursor()
        cur.execute("create table t (a int)")
        cur.executemany(
            "insert into t values (?)", [(i,) for i in range(50)]
        )
        conn.commit()
        cur.execute("analyze t")
        conn.commit()
        # Reopen without a clean shutdown: recovery replays the WAL,
        # including the ANALYZE record.
        conn2 = repro.connect(data_dir=data_dir)
        stats = conn2.session.database.catalog.get_statistics("t")
        assert stats is not None and stats.row_count == 50
        tree = conn2.explain("select * from t where a = 1")
        assert tree.find("SeqScan").estimated_rows == 50.0


# ---------------------------------------------------------------------------
# differential: cost-based vs rule-based on a generated corpus
# ---------------------------------------------------------------------------


class TestDifferential:
    @pytest.mark.parametrize("seed", (11, 23))
    def test_cost_based_matches_rule_based(self, seed):
        gen = WorkloadGenerator(seed=seed)
        statements = (
            [gen.ddl()] + gen.seed_statements(40) + gen.statements(50)
        )
        cost = Database(name=f"c{seed}").create_session(autocommit=True)
        rule = Database(name=f"r{seed}").create_session(autocommit=True)
        _rule_based(rule)
        analyze_every = 10
        for index, statement in enumerate(statements):
            outcomes = []
            for runner in (cost, rule):
                try:
                    result = runner.execute(statement)
                except errors.SQLException as exc:
                    outcomes.append(("error", type(exc).__name__))
                    continue
                if result.is_rowset:
                    rows = sorted(
                        (tuple(r) for r in result.rows), key=repr
                    )
                    outcomes.append(("rows", rows))
                else:
                    outcomes.append(("count", result.update_count))
            assert outcomes[0] == outcomes[1], (
                f"seed={seed} stmt#{index} diverged: {statement}"
            )
            if index % analyze_every == 0:
                cost.execute("analyze")  # only the cost-based arm
        final = f"SELECT * FROM {gen.table}"
        cost_rows = sorted(
            (tuple(r) for r in cost.execute(final).rows), key=repr
        )
        rule_rows = sorted(
            (tuple(r) for r in rule.execute(final).rows), key=repr
        )
        assert cost_rows == rule_rows
