"""Multi-version concurrency control: versions, snapshots, transactions.

The engine stores every table as an append-only list of
:class:`RowVersion` objects.  A version carries its creating
transaction (``xmin``) and that transaction's commit stamp (``begin``),
plus — once deleted or replaced — the deleting transaction (``xmax``)
and *its* commit stamp (``end``).  Readers decide per version whether
their snapshot can see it; nothing is ever modified in place, so
readers never block writers and writers never block readers.

Commit stamps come from one global commit-sequence counter owned by the
:class:`TransactionManager`.  A snapshot is just the counter value at
the moment the transaction's first statement ran: version ``v`` is
visible iff it was committed with ``begin <= snapshot`` and not deleted
with ``end <= snapshot`` (own uncommitted writes are always visible,
own deletions never).  Commit is atomic with respect to snapshots: the
counter is advanced and every version stamped *inside* the manager's
lock, so no snapshot can observe a half-committed transaction.

Write-write conflicts are detected eagerly, first-updater-wins: an
UPDATE/DELETE *claims* the target version by writing its transaction id
into ``xmax`` (under the owning table's mutation lock).  Finding the
version already claimed by a live transaction raises
:class:`WriteConflict` — internal control flow; the session layer waits
for the blocker to finish and retries the statement.  Finding it
deleted by a transaction that committed *after* this snapshot raises
:class:`repro.errors.SerializationFailureError` (SQLSTATE 40001): the
caller lost the race and must retry on a fresh snapshot.

Dead versions (``end`` stamped at or below every live snapshot) are
physically reclaimed by vacuum — see ``Database.vacuum`` in
:mod:`repro.engine.database`.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any, Dict, List, Optional

from repro.observability import metrics as _metrics

__all__ = [
    "RowVersion",
    "MvccTransaction",
    "TransactionManager",
    "WriteConflict",
]

#: Pseudo transaction id for bootstrap rows (bulk loads, snapshot
#: restore): committed "since forever" with commit stamp 0.
TXN_BOOTSTRAP = 0

_TXN_COMMITS = _metrics.registry.counter("mvcc.commits")
_TXN_ABORTS = _metrics.registry.counter("mvcc.aborts")
_TXN_CONFLICT_WAITS = _metrics.registry.counter("mvcc.conflict_waits")


class WriteConflict(Exception):
    """A write touched a version claimed by a live transaction.

    Internal control flow, never user-visible: the session layer
    catches it, rolls the statement back, waits for ``blocker`` to
    commit or abort, and re-executes the statement.  If the blocker
    committed and this transaction's snapshot is pinned, the retry
    surfaces :class:`repro.errors.SerializationFailureError` instead.
    """

    def __init__(self, blocker: int) -> None:
        super().__init__(f"row claimed by transaction {blocker}")
        self.blocker = blocker


class RowVersion:
    """One immutable row image plus its visibility interval.

    ``row`` is the value list; it is never replaced after creation (an
    UPDATE creates a *new* version).  ``begin``/``end`` are commit
    stamps (``None`` while the creating/deleting transaction is still
    in flight); ``xmin``/``xmax`` are the transaction ids that wrote
    them.  ``xmax`` doubles as the row-level write claim.

    ``rid`` is the version's durable row id under the LSM storage
    engine (see :mod:`repro.engine.lsm`): ``None`` until the version is
    first flushed to an SSTable run, then a globally unique integer
    that names its on-disk data entry (tombstones reference the same
    id).  The snapshot engine never assigns it.
    """

    __slots__ = ("row", "xmin", "begin", "xmax", "end", "rid")

    def __init__(
        self,
        row: List[Any],
        xmin: int = TXN_BOOTSTRAP,
        begin: Optional[int] = 0,
    ) -> None:
        self.row = row
        self.xmin = xmin
        self.begin = begin
        self.xmax: Optional[int] = None
        self.end: Optional[int] = None
        self.rid: Optional[int] = None

    def committed_live(self) -> bool:
        """Committed and not (even provisionally) deleted or replaced."""
        return self.begin is not None and self.end is None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<RowVersion {self.row!r} xmin={self.xmin} "
            f"begin={self.begin} xmax={self.xmax} end={self.end}>"
        )


class MvccTransaction:
    """Per-transaction MVCC state: snapshot plus write sets.

    ``created``/``claimed`` are identity sets of the versions this
    transaction inserted / write-claimed; commit stamps them, rollback
    undo actions remove them again (the storage layer keeps the sets in
    step with the undo log, so a partial statement rollback or a
    ROLLBACK TO SAVEPOINT never leaves a stale entry to be stamped).
    """

    __slots__ = (
        "id", "snapshot_seq", "created", "claimed", "pristine", "started",
    )

    def __init__(self, txn_id: int, snapshot_seq: int) -> None:
        self.id = txn_id
        self.snapshot_seq = snapshot_seq
        self.created: set = set()
        self.claimed: set = set()
        #: True until the first statement completes: while pristine the
        #: snapshot may still be replaced (used to transparently retry
        #: a conflicting first statement on a fresh snapshot).
        self.pristine = True
        self.started = True

    def has_writes(self) -> bool:
        return bool(self.created or self.claimed)

    # ------------------------------------------------------------------
    # visibility
    # ------------------------------------------------------------------
    def sees(self, version: RowVersion) -> bool:
        """Snapshot-isolation visibility of ``version`` to this txn.

        Reads of ``begin``/``end`` race with concurrent commits on
        purpose: a commit that lands after this snapshot was taken
        always receives a stamp greater than ``snapshot_seq``, so both
        the pre-stamp (``None``) and post-stamp readings classify the
        version identically.
        """
        if version.xmin == self.id:
            pass  # own insert: visible (unless self-deleted below)
        else:
            begin = version.begin
            if begin is None or begin > self.snapshot_seq:
                return False
        xmax = version.xmax
        if xmax is None:
            return True
        if xmax == self.id:
            return False  # own delete/update claim
        end = version.end
        return end is None or end > self.snapshot_seq


class TransactionManager:
    """Owns the commit-sequence counter and the live-transaction table.

    One per :class:`repro.engine.database.Database`.  All state changes
    happen under one condition variable, which is also what conflicting
    writers wait on (:meth:`wait_for`): every transaction end —
    commit or abort — wakes the waiters.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        self._next_txn = 1
        self._commit_seq = 0
        self._active: Dict[int, MvccTransaction] = {}
        #: Committed-dead versions since the last vacuum (advisory; the
        #: database layer uses it to decide when to trigger vacuum).
        self.dead_versions = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def begin(
        self, snapshot_seq: Optional[int] = None
    ) -> MvccTransaction:
        """Start a transaction with a consistent snapshot.

        ``snapshot_seq`` forces the snapshot (crash-recovery replay
        reproduces the original execution's visibility); normally the
        snapshot is simply the current commit counter.
        """
        with self._cond:
            txn_id = self._next_txn
            self._next_txn += 1
            if snapshot_seq is None:
                snapshot_seq = self._commit_seq
            txn = MvccTransaction(txn_id, snapshot_seq)
            self._active[txn_id] = txn
            return txn

    def refresh_snapshot(self, txn: MvccTransaction) -> None:
        """Re-take the snapshot (only valid while no statement has
        completed in the transaction — the session layer guards this
        with ``txn.pristine``)."""
        with self._cond:
            txn.snapshot_seq = self._commit_seq

    def stamp(
        self, txn: MvccTransaction, stamp: Optional[int] = None
    ) -> Optional[int]:
        """Allocate the commit stamp and make the writes visible.

        Advances the commit counter and stamps every created version's
        ``begin`` and every claimed version's ``end`` while holding the
        manager lock, so a concurrent :meth:`begin` observes either
        none or all of the transaction's writes.  ``stamp`` forces the
        commit stamp (recovery replay); it must be greater than any
        stamp issued so far.  Returns the stamp, or None for a
        read-only transaction.  The transaction stays *active* until
        :meth:`finish` — the session layer appends the WAL commit
        marker in between, keeping marker order equal to stamp order
        even for transactions currently blocked on this one.
        """
        with self._cond:
            if not txn.has_writes() and stamp is None:
                return None  # read-only: nothing to stamp
            if stamp is None:
                stamp = self._commit_seq + 1
            self._commit_seq = max(self._commit_seq, stamp)
            for version in txn.created:
                version.begin = stamp
            for version in txn.claimed:
                version.end = stamp
            self.dead_versions += len(txn.claimed)
            return stamp

    def finish(self, txn: MvccTransaction) -> None:
        """Retire a stamped transaction and wake conflict waiters."""
        with self._cond:
            self._active.pop(txn.id, None)
            self._cond.notify_all()
        _TXN_COMMITS.increment()

    def commit(
        self, txn: MvccTransaction, stamp: Optional[int] = None
    ) -> Optional[int]:
        """Stamp and finish in one step (non-durable commit path)."""
        result = self.stamp(txn, stamp)
        self.finish(txn)
        return result

    def abort(self, txn: MvccTransaction) -> None:
        """Finish an aborted transaction.

        The caller must have run the undo log *first*: undo physically
        removes created versions and releases claims, so by the time
        waiters wake up here the heap carries no trace of the
        transaction.
        """
        with self._cond:
            self._active.pop(txn.id, None)
            self._cond.notify_all()
        _TXN_ABORTS.increment()

    # ------------------------------------------------------------------
    # conflict waits
    # ------------------------------------------------------------------
    def wait_for(self, txn_id: int, timeout: float) -> bool:
        """Block until transaction ``txn_id`` commits or aborts.

        Returns False on timeout (suspected deadlock: the caller holds
        claims the blocker may in turn be waiting on, so it must give
        up with SQLSTATE 40001 rather than wait forever).
        """
        _TXN_CONFLICT_WAITS.increment()
        deadline = _time.monotonic() + timeout
        with self._cond:
            while txn_id in self._active:
                remaining = deadline - _time.monotonic()
                if remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def is_active(self, txn_id: int) -> bool:
        with self._cond:
            return txn_id in self._active

    # ------------------------------------------------------------------
    # introspection / recovery
    # ------------------------------------------------------------------
    @property
    def commit_seq(self) -> int:
        with self._cond:
            return self._commit_seq

    def restore(self, commit_seq: int) -> None:
        """Fast-forward the counter after loading a checkpoint, so new
        stamps continue above everything already durable."""
        with self._cond:
            self._commit_seq = max(self._commit_seq, commit_seq)

    def oldest_visible_seq(self) -> int:
        """Vacuum horizon: versions with ``end <=`` this are invisible
        to every live snapshot and may be physically reclaimed."""
        with self._cond:
            if not self._active:
                return self._commit_seq
            return min(
                min(t.snapshot_seq for t in self._active.values()),
                self._commit_seq,
            )

    def active_transactions(self) -> List[MvccTransaction]:
        with self._cond:
            return list(self._active.values())
