"""EXPLAIN: textual rendering of compiled query plans.

``EXPLAIN <query>`` returns one row per plan line, e.g.::

    Sort (1 key)
      Project
        Filter (sales > 100)
          SeqScan on emps

Plans are rule-based and deterministic (see the planner), so EXPLAIN
output is stable enough to assert on in tests.

``EXPLAIN ANALYZE <query>`` executes the query with an instrumented plan
(:func:`repro.engine.executor.instrument_plan`) and renders the same
tree through :func:`format_plan`'s ``annotate`` hook, appending each
node's actual row count and cumulative time::

    Project (4 columns) (actual rows=3 time=0.041 ms)
      SeqScan on emps (actual rows=10 time=0.012 ms)
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.engine.executor import (
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    IndexScan,
    Limit,
    NestedLoopJoin,
    Operator,
    Project,
    SeqScan,
    SingleRow,
    Sort,
    UnionOp,
    operator_children,
)
from repro.engine.virtual import VirtualScan

__all__ = ["describe_operator", "format_plan"]


def describe_operator(operator: Operator) -> str:
    """One-line description of a single operator."""
    if isinstance(operator, VirtualScan):
        return f"VirtualScan on {operator.table.name}"
    if isinstance(operator, SeqScan):
        return f"SeqScan on {operator.table.name}"
    if isinstance(operator, IndexScan):
        line = (
            f"IndexScan using {operator.index.name} "
            f"on {operator.table.name}"
        )
        if operator.description:
            line = f"{line} ({operator.description})"
        return line
    if isinstance(operator, SingleRow):
        return "Result (no table)"
    if isinstance(operator, Filter):
        if operator.description:
            return f"Filter ({operator.description})"
        return "Filter"
    if isinstance(operator, Project):
        return f"Project ({len(operator.items)} columns)"
    if isinstance(operator, NestedLoopJoin):
        return f"NestedLoopJoin ({operator.kind})"
    if isinstance(operator, HashJoin):
        line = f"HashJoin ({operator.kind})"
        if operator.description:
            line = f"{line} ({operator.description})"
        return line
    if isinstance(operator, Sort):
        keys = len(operator.keys)
        return f"Sort ({keys} key{'s' if keys != 1 else ''})"
    if isinstance(operator, Limit):
        return "Limit"
    if isinstance(operator, Distinct):
        return "Distinct"
    if isinstance(operator, GroupAggregate):
        return (
            f"GroupAggregate ({len(operator.keys)} group keys, "
            f"{len(operator.aggregates)} aggregates)"
        )
    if isinstance(operator, UnionOp):
        label = operator.op.capitalize()
        return f"{label} ALL" if operator.all_rows else label
    return type(operator).__name__


def format_plan(
    operator: Operator,
    indent: int = 0,
    annotate: Optional[Callable[[Operator], Optional[str]]] = None,
) -> List[str]:
    """Render the operator tree as indented lines, root first.

    ``annotate`` may return a per-node suffix (EXPLAIN ANALYZE passes
    the instrumentation's actual-rows/timing summary); None or an empty
    string leaves the line bare.
    """
    line = "  " * indent + describe_operator(operator)
    if annotate is not None:
        suffix = annotate(operator)
        if suffix:
            line = f"{line} ({suffix})"
    lines = [line]
    for child in operator_children(operator):
        lines.extend(format_plan(child, indent + 1, annotate))
    return lines
