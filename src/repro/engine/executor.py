"""Iterator-model query operators.

Each operator exposes ``rows(ctx)`` returning an iterator of value lists.
``ctx`` carries the executing session, the statement's dynamic parameters
and (for correlated subqueries) the enclosing row environment.  Plans are
fully compiled — operators hold closures produced by
:class:`repro.engine.expressions.ExpressionCompiler`, so per-row work is
plain Python calls.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, \
    Sequence, Tuple

from repro import errors, faultpoints
from repro.engine.catalog import Table
from repro.engine.expressions import Env, RowShape
from repro.observability import metrics as _metrics
from repro.observability import stats as _stats
from repro.sqltypes import compare_values
from repro.sqltypes.values import sort_key

_ROWS_SCANNED = _metrics.registry.counter("rows.scanned")
_INDEX_LOOKUPS = _metrics.registry.counter("index.lookups")

#: sort_key() image of SQL NULL (see HashJoin key handling).
_NULL_SORT_KEY = sort_key(None)

__all__ = [
    "RuntimeContext",
    "Operator",
    "SingleRow",
    "SeqScan",
    "IndexScan",
    "Filter",
    "Project",
    "NestedLoopJoin",
    "HashJoin",
    "Sort",
    "Limit",
    "Distinct",
    "GroupAggregate",
    "UnionOp",
    "QueryPlan",
    "AGGREGATE_FACTORIES",
    "OperatorStats",
    "PlanInstrumentation",
    "instrument_plan",
    "operator_children",
]


class RuntimeContext:
    """Execution-time state shared by all operators of one run."""

    __slots__ = ("session", "params", "outer_env")

    def __init__(
        self,
        session: Any,
        params: Sequence[Any],
        outer_env: Optional[Env] = None,
    ) -> None:
        self.session = session
        self.params = params
        self.outer_env = outer_env

    def env(self, row: Sequence[Any]) -> Env:
        return Env(row, self.params, self.outer_env, self.session)


class Operator:
    """Base operator; subclasses implement :meth:`rows`."""

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        raise NotImplementedError


class SingleRow(Operator):
    """Produces exactly one empty row (``SELECT 1`` with no FROM)."""

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        yield []


class SeqScan(Operator):
    """Full scan over a base table's heap."""

    def __init__(self, table: Table) -> None:
        self.table = table

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        # Iterate over a list() copy so DML statements reading their own
        # target table (e.g. INSERT INTO t SELECT ... FROM t) terminate,
        # and so concurrent appends by other transactions cannot disturb
        # the iteration (the heap is append-only; claimed/dead versions
        # are filtered by the snapshot, never removed mid-scan).
        txn = ctx.session.mvcc_txn
        visible = [
            version.row
            for version in list(self.table.versions)
            if txn.sees(version)
        ]
        _ROWS_SCANNED.increment(len(visible))
        _stats.note_scan(len(visible))
        return iter(visible)


class IndexScan(Operator):
    """Probe a secondary index instead of scanning the heap.

    Either an equality probe over the index's full key (``equal`` holds
    one compiled closure per key column, evaluated against the empty
    row — they may reference parameters but no columns) or a range
    probe on a single-column index (``lower``/``upper`` bound closures,
    either may be absent).  A bound or probe value evaluating to NULL
    yields no rows: no SQL comparison against NULL is TRUE.
    """

    def __init__(
        self,
        index: Any,
        table: Table,
        equal: Optional[List[Callable[[Env], Any]]] = None,
        lower: Optional[Callable[[Env], Any]] = None,
        upper: Optional[Callable[[Env], Any]] = None,
        lower_inclusive: bool = True,
        upper_inclusive: bool = True,
        description: Optional[str] = None,
    ) -> None:
        self.index = index
        self.table = table
        self.equal = equal
        self.lower = lower
        self.upper = upper
        self.lower_inclusive = lower_inclusive
        self.upper_inclusive = upper_inclusive
        #: SQL rendering of the probe predicate, for EXPLAIN output.
        self.description = description

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        _INDEX_LOOKUPS.increment()
        env = ctx.env([])
        if self.equal is not None:
            values = tuple(fn(env) for fn in self.equal)
            candidates = list(self.index.lookup(values))
        else:
            lower = upper = None
            if self.lower is not None:
                lower = self.lower(env)
                if lower is None:
                    return iter(())
            if self.upper is not None:
                upper = self.upper(env)
                if upper is None:
                    return iter(())
            candidates = list(
                self.index.range(
                    lower, upper,
                    self.lower_inclusive, self.upper_inclusive,
                )
            )
        # Index buckets hold every version regardless of visibility;
        # apply the reading snapshot exactly as SeqScan does.
        txn = ctx.session.mvcc_txn
        matches = [
            version.row for version in candidates if txn.sees(version)
        ]
        _ROWS_SCANNED.increment(len(matches))
        _stats.note_scan(len(matches))
        return iter(matches)


class Filter(Operator):
    def __init__(
        self,
        child: Operator,
        predicate: Callable[[Env], bool],
        description: Optional[str] = None,
    ) -> None:
        self.child = child
        self.predicate = predicate
        #: Optional SQL rendering of the predicate, for EXPLAIN output.
        self.description = description

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        predicate = self.predicate
        for row in self.child.rows(ctx):
            if predicate(ctx.env(row)):
                yield row


class Project(Operator):
    def __init__(
        self, child: Operator, items: List[Callable[[Env], Any]]
    ) -> None:
        self.child = child
        self.items = items

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        items = self.items
        for row in self.child.rows(ctx):
            env = ctx.env(row)
            yield [item(env) for item in items]


class NestedLoopJoin(Operator):
    """Nested-loop join supporting INNER/LEFT/RIGHT/FULL/CROSS."""

    def __init__(
        self,
        kind: str,
        left: Operator,
        right: Operator,
        predicate: Optional[Callable[[Env], bool]],
        left_width: int,
        right_width: int,
    ) -> None:
        self.kind = kind
        self.left = left
        self.right = right
        self.predicate = predicate
        self.left_width = left_width
        self.right_width = right_width

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        right_rows = list(self.right.rows(ctx))
        right_matched = [False] * len(right_rows)
        null_right = [None] * self.right_width
        null_left = [None] * self.left_width
        predicate = self.predicate
        kind = self.kind

        for left_row in self.left.rows(ctx):
            matched = False
            for index, right_row in enumerate(right_rows):
                combined = list(left_row) + list(right_row)
                if predicate is None or predicate(ctx.env(combined)):
                    matched = True
                    right_matched[index] = True
                    yield combined
            if not matched and kind in ("LEFT", "FULL"):
                yield list(left_row) + null_right

        if kind in ("RIGHT", "FULL"):
            for index, right_row in enumerate(right_rows):
                if not right_matched[index]:
                    yield null_left + list(right_row)


class HashJoin(Operator):
    """Hash join on equality keys, for INNER/LEFT/RIGHT/FULL joins.

    ``left_keys`` / ``right_keys`` are compiled against the *merged*
    row shape but reference only their own side's columns, so each side
    is evaluated with the other side padded with NULLs.  Keys are
    normalised with :func:`sort_key` (``1 = 1.0 = DECIMAL '1'``, CHAR
    pad spaces insignificant), matching SQL ``=``.

    The hash table is strictly a *candidate* filter: every candidate
    pair is re-checked with ``predicate`` — the full compiled ON
    condition (equalities plus any residual conjuncts) — so semantics
    are identical to :class:`NestedLoopJoin` with the same predicate.
    That also gives graceful degradation: a build row whose key cannot
    be hashed (exotic Part 2 object, normally rejected at plan time)
    joins the ``loose`` list and is linearly probed; a probe row whose
    key cannot be hashed falls back to scanning all build rows.

    ``build`` selects which child is materialised into the hash table:
    ``"right"`` (the historical default) buckets the right child and
    streams the left; ``"left"`` buckets the left child and streams the
    right.  The cost-based planner picks the side with the smaller
    estimated cardinality.  Output columns are always ``left + right``
    regardless of build side; only row order differs.
    """

    def __init__(
        self,
        kind: str,
        left: Operator,
        right: Operator,
        left_keys: List[Callable[[Env], Any]],
        right_keys: List[Callable[[Env], Any]],
        predicate: Optional[Callable[[Env], bool]],
        left_width: int,
        right_width: int,
        description: Optional[str] = None,
        build: str = "right",
    ) -> None:
        self.kind = kind
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.predicate = predicate
        self.left_width = left_width
        self.right_width = right_width
        #: SQL rendering of the join keys, for EXPLAIN output.
        self.description = description
        #: which child is hashed: ``"right"`` or ``"left"``.
        self.build = build

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        if self.build == "left":
            yield from self._rows_build_left(ctx)
            return
        yield from self._rows_build_right(ctx)

    def _rows_build_left(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        """Mirror image of the default path: hash left, stream right."""
        left_rows = list(self.left.rows(ctx))
        left_matched = [False] * len(left_rows)
        null_right = [None] * self.right_width
        null_left = [None] * self.left_width
        predicate = self.predicate
        kind = self.kind

        buckets: Dict[tuple, List[Tuple[int, List[Any]]]] = {}
        loose: List[Tuple[int, List[Any]]] = []
        for index, left_row in enumerate(left_rows):
            env = ctx.env(list(left_row) + null_right)
            try:
                key = tuple(
                    sort_key(fn(env)) for fn in self.left_keys
                )
                if _NULL_SORT_KEY in key:
                    continue
                buckets.setdefault(key, []).append((index, left_row))
            except TypeError:
                loose.append((index, left_row))

        for right_row in self.right.rows(ctx):
            env = ctx.env(null_left + list(right_row))
            try:
                key = tuple(sort_key(fn(env)) for fn in self.right_keys)
                if _NULL_SORT_KEY in key:
                    candidates = loose
                else:
                    candidates = buckets.get(key, [])
                    if loose:
                        candidates = candidates + loose
            except TypeError:
                candidates = list(enumerate(left_rows))
            matched = False
            for index, left_row in candidates:
                combined = list(left_row) + list(right_row)
                if predicate is None or predicate(ctx.env(combined)):
                    matched = True
                    left_matched[index] = True
                    yield combined
            if not matched and kind in ("RIGHT", "FULL"):
                yield null_left + list(right_row)

        if kind in ("LEFT", "FULL"):
            for index, left_row in enumerate(left_rows):
                if not left_matched[index]:
                    yield list(left_row) + null_right

    def _rows_build_right(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        right_rows = list(self.right.rows(ctx))
        right_matched = [False] * len(right_rows)
        null_right = [None] * self.right_width
        null_left = [None] * self.left_width
        predicate = self.predicate
        kind = self.kind

        # Build: bucket right rows by normalised key.  NULL keys can
        # never satisfy an equality, so those rows are left unbucketed
        # (they surface only through RIGHT/FULL null extension).
        buckets: Dict[tuple, List[Tuple[int, List[Any]]]] = {}
        loose: List[Tuple[int, List[Any]]] = []
        for index, right_row in enumerate(right_rows):
            env = ctx.env(null_left + list(right_row))
            try:
                key = tuple(
                    sort_key(fn(env)) for fn in self.right_keys
                )
                if _NULL_SORT_KEY in key:
                    continue
                buckets.setdefault(key, []).append((index, right_row))
            except TypeError:
                loose.append((index, right_row))

        # Probe with left rows.
        for left_row in self.left.rows(ctx):
            env = ctx.env(list(left_row) + null_right)
            try:
                key = tuple(sort_key(fn(env)) for fn in self.left_keys)
                if _NULL_SORT_KEY in key:
                    candidates = loose
                else:
                    candidates = buckets.get(key, [])
                    if loose:
                        candidates = candidates + loose
            except TypeError:
                candidates = list(enumerate(right_rows))
            matched = False
            for index, right_row in candidates:
                combined = list(left_row) + list(right_row)
                if predicate is None or predicate(ctx.env(combined)):
                    matched = True
                    right_matched[index] = True
                    yield combined
            if not matched and kind in ("LEFT", "FULL"):
                yield list(left_row) + null_right

        if kind in ("RIGHT", "FULL"):
            for index, right_row in enumerate(right_rows):
                if not right_matched[index]:
                    yield null_left + list(right_row)


class Sort(Operator):
    def __init__(
        self,
        child: Operator,
        keys: List[Tuple[Callable[[Env], Any], bool]],
    ) -> None:
        self.child = child
        self.keys = keys

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        materialised = list(self.child.rows(ctx))
        # Stable multi-key sort: apply keys right-to-left.
        for key_fn, ascending in reversed(self.keys):
            materialised.sort(
                key=lambda row, fn=key_fn: sort_key(fn(ctx.env(row))),
                reverse=not ascending,
            )
        return iter(materialised)


class Limit(Operator):
    def __init__(
        self,
        child: Operator,
        limit: Optional[Callable[[Env], Any]],
        offset: Optional[Callable[[Env], Any]],
    ) -> None:
        self.child = child
        self.limit = limit
        self.offset = offset

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        empty_env = ctx.env([])
        remaining = None
        if self.limit is not None:
            remaining = int(self.limit(empty_env))
            if remaining < 0:
                raise errors.DataError("LIMIT must be non-negative")
        to_skip = 0
        if self.offset is not None:
            to_skip = int(self.offset(empty_env))
            if to_skip < 0:
                raise errors.DataError("OFFSET must be non-negative")
        for row in self.child.rows(ctx):
            if to_skip > 0:
                to_skip -= 1
                continue
            if remaining is not None:
                if remaining == 0:
                    return
                remaining -= 1
            yield row


#: Skeleton placeholder for a value whose sort_key cannot be hashed.
_UNKEYABLE = object()


def _row_skeleton(key: tuple) -> Tuple[tuple, Tuple[int, ...]]:
    """Hashable skeleton of a row key that itself failed to hash.

    Each element becomes its :func:`sort_key` image (hashable for every
    scalar, and normalising ``1``/``1.0``/``Decimal('1')`` to one key);
    elements whose sort_key is unhashable too (exotic Part 2 objects)
    become a sentinel, and their positions are returned so callers
    linear-probe *only those positions* within a skeleton bucket —
    turning the old O(n²) whole-row fallback into a hash lookup plus a
    comparison over the truly incomparable values.
    """
    skeleton: List[Any] = []
    loose: List[int] = []
    for position, value in enumerate(key):
        try:
            image = sort_key(value)
            hash(image)
        except Exception:
            image = _UNKEYABLE
            loose.append(position)
        skeleton.append(image)
    return tuple(skeleton), tuple(loose)


class _RowSet:
    """Duplicate detector tolerating unhashable (Part 2 object) values."""

    def __init__(self) -> None:
        self._hashed: set = set()
        self._buckets: Dict[tuple, List[tuple]] = {}

    @staticmethod
    def _normalise(value: Any) -> Any:
        if isinstance(value, str):
            return value.rstrip(" ")  # CHAR padding is insignificant
        return value

    @staticmethod
    def _values_equal(left: Any, right: Any) -> bool:
        """NULL-as-a-value equality used for DISTINCT/GROUP BY."""
        if left is None or right is None:
            return left is None and right is None
        return compare_values(left, right) == 0

    def add(self, row: Sequence[Any]) -> bool:
        """Add the row; returns True if it was new."""
        key = tuple(self._normalise(v) for v in row)
        try:
            if key in self._hashed:
                return False
            self._hashed.add(key)
            return True
        except TypeError:
            skeleton, loose = _row_skeleton(key)
            bucket = self._buckets.setdefault(skeleton, [])
            for seen in bucket:
                if all(
                    self._values_equal(seen[p], key[p]) for p in loose
                ):
                    return False
            bucket.append(key)
            return True


class Distinct(Operator):
    def __init__(self, child: Operator) -> None:
        self.child = child

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        seen = _RowSet()
        for row in self.child.rows(ctx):
            if seen.add(row):
                yield row


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------


class _Accumulator:
    """Base aggregate accumulator."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class _CountStar(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        self.count += 1

    def result(self) -> int:
        return self.count


class _Count(_Accumulator):
    def __init__(self) -> None:
        self.count = 0

    def add(self, value: Any) -> None:
        if value is not None:
            self.count += 1

    def result(self) -> int:
        return self.count


class _Sum(_Accumulator):
    def __init__(self) -> None:
        self.total: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self) -> Any:
        return self.total


class _Avg(_Accumulator):
    def __init__(self) -> None:
        self.total: Any = None
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value
        self.count += 1

    def result(self) -> Any:
        if self.count == 0:
            return None
        if isinstance(self.total, float):
            return self.total / self.count
        import decimal

        return decimal.Decimal(self.total) / decimal.Decimal(self.count)


class _MinMax(_Accumulator):
    def __init__(self, want_max: bool) -> None:
        self.want_max = want_max
        self.best: Any = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None:
            self.best = value
            return
        comparison = compare_values(value, self.best)
        if comparison is None:
            return
        if (comparison > 0) == self.want_max and comparison != 0:
            self.best = value

    def result(self) -> Any:
        return self.best


class _DistinctWrapper(_Accumulator):
    """Feeds only first occurrences of each value into ``inner``."""

    def __init__(self, inner: _Accumulator) -> None:
        self.inner = inner
        self.seen = _RowSet()

    def add(self, value: Any) -> None:
        if value is None or self.seen.add([value]):
            self.inner.add(value)

    def result(self) -> Any:
        return self.inner.result()


AGGREGATE_FACTORIES = {
    "COUNT*": _CountStar,
    "COUNT": _Count,
    "SUM": _Sum,
    "AVG": _Avg,
    "MIN": functools.partial(_MinMax, want_max=False),
    "MAX": functools.partial(_MinMax, want_max=True),
}


class AggregateSpec:
    """One aggregate to compute: factory + optional argument closure."""

    def __init__(
        self,
        name: str,
        argument: Optional[Callable[[Env], Any]],
        distinct: bool,
    ) -> None:
        self.name = name
        self.argument = argument
        self.distinct = distinct
        key = "COUNT*" if name == "COUNT" and argument is None else name
        self.factory = AGGREGATE_FACTORIES[key]

    def new_accumulator(self) -> _Accumulator:
        accumulator = self.factory()
        if self.distinct:
            accumulator = _DistinctWrapper(accumulator)
        return accumulator


class GroupAggregate(Operator):
    """Hash aggregation.

    Output rows are ``group-key values ++ aggregate results``.  With no
    GROUP BY keys the whole input forms one group, and an empty input
    still yields that single group (COUNT = 0, SUM = NULL) per SQL.
    """

    def __init__(
        self,
        child: Operator,
        keys: List[Callable[[Env], Any]],
        aggregates: List[AggregateSpec],
    ) -> None:
        self.child = child
        self.keys = keys
        self.aggregates = aggregates

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        groups: dict = {}
        order: List[Any] = []
        # Unhashable keys bucket by their _row_skeleton; within a
        # bucket only the truly incomparable positions are probed
        # linearly (see _row_skeleton).
        unhashable_buckets: Dict[tuple, List[Tuple[tuple, tuple]]] = {}
        unhashable_order: List[Tuple[list, list]] = []

        for row in self.child.rows(ctx):
            env = ctx.env(row)
            key_values = [key(env) for key in self.keys]
            key = tuple(
                v.rstrip(" ") if isinstance(v, str) else v
                for v in key_values
            )
            try:
                state = groups.get(key)
                if state is None:
                    state = (
                        key_values,
                        [spec.new_accumulator() for spec in self.aggregates],
                    )
                    groups[key] = state
                    order.append(key)
            except TypeError:
                skeleton, loose = _row_skeleton(key)
                bucket = unhashable_buckets.setdefault(skeleton, [])
                state = None
                for existing_key, existing_state in bucket:
                    if all(
                        _RowSet._values_equal(existing_key[p], key[p])
                        for p in loose
                    ):
                        state = existing_state
                        break
                if state is None:
                    state = (
                        key_values,
                        [spec.new_accumulator() for spec in self.aggregates],
                    )
                    bucket.append((key, state))
                    unhashable_order.append(state)
            for spec, accumulator in zip(self.aggregates, state[1]):
                accumulator.add(
                    spec.argument(env) if spec.argument is not None else 0
                )

        if not groups and not unhashable_order and not self.keys:
            yield [acc.result() for acc in (
                spec.new_accumulator() for spec in self.aggregates
            )]
            return

        for key in order:
            key_values, accumulators = groups[key]
            yield list(key_values) + [a.result() for a in accumulators]
        for key_values, accumulators in unhashable_order:
            yield list(key_values) + [a.result() for a in accumulators]


class UnionOp(Operator):
    """UNION / INTERSECT / EXCEPT, with or without ALL.

    Bag semantics for the ALL variants follow the SQL standard:
    INTERSECT ALL keeps min(m, n) duplicates, EXCEPT ALL keeps
    max(m - n, 0).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        all_rows: bool,
        op: str = "UNION",
    ):
        self.left = left
        self.right = right
        self.all_rows = all_rows
        self.op = op

    @staticmethod
    def _key(row: Sequence[Any]) -> tuple:
        return tuple(
            v.rstrip(" ") if isinstance(v, str) else v for v in row
        )

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        if self.op == "UNION":
            yield from self._union(ctx)
        elif self.op == "INTERSECT":
            yield from self._intersect(ctx)
        else:
            yield from self._except(ctx)

    def _union(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        if self.all_rows:
            yield from self.left.rows(ctx)
            yield from self.right.rows(ctx)
            return
        seen = _RowSet()
        for source in (self.left, self.right):
            for row in source.rows(ctx):
                if seen.add(row):
                    yield row

    def _intersect(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        counts: dict = {}
        for row in self.right.rows(ctx):
            key = self._key(row)
            counts[key] = counts.get(key, 0) + 1
        emitted = set()
        for row in self.left.rows(ctx):
            key = self._key(row)
            if counts.get(key, 0) > 0:
                if self.all_rows:
                    counts[key] -= 1
                    yield row
                elif key not in emitted:
                    emitted.add(key)
                    yield row

    def _except(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        counts: dict = {}
        for row in self.right.rows(ctx):
            key = self._key(row)
            counts[key] = counts.get(key, 0) + 1
        emitted = set()
        for row in self.left.rows(ctx):
            key = self._key(row)
            if self.all_rows:
                if counts.get(key, 0) > 0:
                    counts[key] -= 1
                else:
                    yield row
            else:
                if counts.get(key, 0) == 0 and key not in emitted:
                    emitted.add(key)
                    yield row


# ---------------------------------------------------------------------------
# Plan introspection and instrumentation
# ---------------------------------------------------------------------------


def operator_children(operator: Operator) -> List[Operator]:
    """The operator's input operators, in plan order."""
    if isinstance(operator, (UnionOp, NestedLoopJoin, HashJoin)):
        return [operator.left, operator.right]
    child = getattr(operator, "child", None)
    return [child] if child is not None else []


class OperatorStats:
    """Actual row count and cumulative wall time for one plan node.

    ``seconds`` is inclusive (it covers time spent pulling rows from the
    node's children, as in PostgreSQL's EXPLAIN ANALYZE actual times).
    """

    __slots__ = ("rows_out", "seconds")

    def __init__(self) -> None:
        self.rows_out = 0
        self.seconds = 0.0

    def describe(self) -> str:
        return (
            f"actual rows={self.rows_out} "
            f"time={self.seconds * 1000.0:.3f} ms"
        )


class PlanInstrumentation:
    """Per-node statistics for one instrumented plan."""

    def __init__(self) -> None:
        self._stats: Dict[int, OperatorStats] = {}

    def stats_for(self, operator: Operator) -> Optional[OperatorStats]:
        return self._stats.get(id(operator))

    def annotate(self, operator: Operator) -> Optional[str]:
        """EXPLAIN ANALYZE suffix for ``operator`` (None if unknown)."""
        stats = self.stats_for(operator)
        return None if stats is None else stats.describe()

    def _attach(self, operator: Operator) -> None:
        stats = self._stats.setdefault(id(operator), OperatorStats())
        inner = operator.rows
        timer = time.perf_counter

        def rows(ctx: RuntimeContext) -> Iterator[List[Any]]:
            begin = timer()
            iterator = iter(inner(ctx))
            stats.seconds += timer() - begin
            while True:
                begin = timer()
                try:
                    row = next(iterator)
                except StopIteration:
                    stats.seconds += timer() - begin
                    return
                stats.seconds += timer() - begin
                stats.rows_out += 1
                yield row

        # Shadow the bound method on the instance; the wrapper keeps the
        # original via closure, so instrumenting twice stacks harmlessly.
        operator.rows = rows  # type: ignore[method-assign]


def instrument_plan(root: Operator) -> PlanInstrumentation:
    """Wrap every node's ``rows`` to record rows-out and cumulative time.

    Mutates the plan in place, so only instrument plans built for one
    execution (EXPLAIN ANALYZE plans its query freshly; never instrument
    a cached prepared plan you intend to keep using untimed).
    """
    instrumentation = PlanInstrumentation()
    stack = [root]
    while stack:
        node = stack.pop()
        instrumentation._attach(node)
        stack.extend(operator_children(node))
    return instrumentation


def _wrap_operator_error(exc: Exception) -> errors.OperatorExecutionError:
    """Name the innermost operator on ``exc``'s traceback."""
    operator: Optional[Operator] = None
    traceback = exc.__traceback__
    while traceback is not None:
        candidate = traceback.tb_frame.f_locals.get("self")
        if isinstance(candidate, Operator):
            operator = candidate
        traceback = traceback.tb_next
    if operator is None:
        where = "query plan"
    elif isinstance(operator, SeqScan):
        where = f"SeqScan on {operator.table.name}"
    elif isinstance(operator, IndexScan):
        where = (
            f"IndexScan using {operator.index.name} "
            f"on {operator.table.name}"
        )
    else:
        where = type(operator).__name__
    return errors.OperatorExecutionError(
        f"{type(exc).__name__} in {where}: {exc}"
    )


class QueryPlan:
    """A compiled query: root operator plus output shape."""

    def __init__(self, root: Operator, shape: RowShape) -> None:
        self.root = root
        self.shape = shape

    def run(
        self, session: Any, params: Sequence[Any] = ()
    ) -> List[List[Any]]:
        """Execute and materialise all rows."""
        faultpoints.trigger("executor.run")
        ctx = RuntimeContext(session, params)
        try:
            return [list(row) for row in self.root.rows(ctx)]
        except errors.SQLException:
            raise
        except Exception as exc:
            raise _wrap_operator_error(exc) from exc

    def run_correlated(
        self,
        session: Any,
        outer_env: Env,
        limit: Optional[int] = None,
    ) -> List[List[Any]]:
        """Execute as a correlated subquery of ``outer_env``'s row."""
        ctx = RuntimeContext(session, outer_env.params, outer_env)
        rows: List[List[Any]] = []
        try:
            for row in self.root.rows(ctx):
                rows.append(list(row))
                if limit is not None and len(rows) >= limit:
                    break
        except errors.SQLException:
            raise
        except Exception as exc:
            raise _wrap_operator_error(exc) from exc
        return rows
