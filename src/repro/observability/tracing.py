"""Hierarchical spans over the statement pipeline.

A :class:`Span` is one timed region (``statement``, ``parse``, ``plan``,
``execute``, ``fetch``, ``sqlj.clause``, ``procedure``, ...).  Spans nest:
entering a span while another is open on the same thread makes it a
child, so one SQLJ clause produces a tree like::

    sqlj.query
      sqlj.clause
        statement
          execute

When the root span of a tree closes it is handed to the tracer's *sink*,
which renders it as JSON lines (one object per span, parents first) or
as an indented tree.

Tracing is off by default: the active tracer is a shared
:class:`NullTracer` with ``enabled`` False, and every hook threaded
through the engine checks that flag before building a span, so the
disabled cost per hook is an attribute load and a branch.  Enable
tracing with the ``REPRO_TRACE`` environment variable (``json``,
``tree``, or ``1``), the translator CLI's ``--trace`` flag, or
:func:`enable_tracing`.
"""

from __future__ import annotations

import collections
import json
import os
import sys
import time
from typing import Any, Callable, Deque, Iterator, List, Optional, TextIO, \
    Tuple

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "span",
    "tracing_enabled",
    "enable_tracing",
    "disable_tracing",
    "configure_from_environment",
    "json_lines_sink",
    "tree_sink",
    "ENV_VAR",
]

ENV_VAR = "REPRO_TRACE"


def _new_id() -> str:
    """A 64-bit random hex id (W3C-trace-context sized span id)."""
    return os.urandom(8).hex()


class Span:
    """One timed region; acts as its own context manager.

    ``start_time`` / ``end_time`` come from ``time.perf_counter`` — they
    order and measure spans but are not wall-clock timestamps.

    Identity: every span gets a random ``span_id`` when opened; child
    spans inherit ``trace_id`` from their parent and record its span id
    as ``parent_id``, so a whole tree shares one trace id.  A span may
    also be parented on a *remote* span (:meth:`set_remote_parent`) —
    that is how the protocol-v2 server continues a client's trace: the
    server-side root keeps the client's trace id and points its
    ``parent_id`` at the client's span, producing one connected tree
    across the wire.
    """

    __slots__ = (
        "name",
        "attributes",
        "start_time",
        "end_time",
        "children",
        "trace_id",
        "span_id",
        "parent_id",
        "_tracer",
    )

    def __init__(
        self,
        name: str,
        attributes: Optional[dict] = None,
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.name = name
        self.attributes = dict(attributes) if attributes else {}
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self.children: List["Span"] = []
        self.trace_id: Optional[str] = None
        self.span_id: Optional[str] = None
        self.parent_id: Optional[str] = None
        self._tracer = tracer

    def set_remote_parent(
        self,
        trace_id: Optional[str],
        span_id: Optional[str] = None,
    ) -> "Span":
        """Adopt a trace/span id propagated from another process.

        Must be called before ``__enter__``; the tracer then keeps the
        remote trace id instead of minting a fresh one.  Returns self.
        """
        if trace_id:
            self.trace_id = str(trace_id)
        if span_id:
            self.parent_id = str(span_id)
        return self

    # ------------------------------------------------------------------
    @property
    def duration(self) -> Optional[float]:
        """Span length in seconds, or None while still open."""
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def annotate(self, **attributes: Any) -> "Span":
        """Attach attributes after the span was opened; returns self."""
        self.attributes.update(attributes)
        return self

    # ------------------------------------------------------------------
    # context-manager protocol (drives the tracer's per-thread stack)
    # ------------------------------------------------------------------
    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._open(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._tracer is not None:
            self._tracer._close(self)

    # ------------------------------------------------------------------
    # rendering
    # ------------------------------------------------------------------
    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Pre-order traversal yielding ``(span, depth)``."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def to_dict(self, depth: int = 0) -> dict:
        duration = self.duration
        record = {
            "name": self.name,
            "depth": depth,
            "start": self.start_time,
            "duration_ms": None if duration is None else duration * 1000.0,
        }
        if self.trace_id is not None:
            record["trace_id"] = self.trace_id
            record["span_id"] = self.span_id
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attributes:
            record["attributes"] = self.attributes
        return record

    def json_lines(self) -> List[str]:
        """The whole tree as JSON lines, parents before children."""
        return [
            json.dumps(node.to_dict(depth), default=str)
            for node, depth in self.walk()
        ]

    def tree_lines(self) -> List[str]:
        """The whole tree as an indented, human-readable listing."""
        lines = []
        for node, depth in self.walk():
            duration = node.duration
            timing = "..." if duration is None \
                else f"{duration * 1000.0:.3f} ms"
            attrs = "".join(
                f" {key}={value!r}"
                for key, value in node.attributes.items()
            )
            lines.append(f"{'  ' * depth}{node.name} [{timing}]{attrs}")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Span {self.name!r} children={len(self.children)}>"


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def annotate(self, **attributes: Any) -> "_NullSpan":
        return self

    def set_remote_parent(self, *ids: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: every hook gets the singleton no-op span."""

    enabled = False

    def span(self, name: str, /, **attributes: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None


class Tracer:
    """Collects span trees per thread and emits finished roots.

    ``sink`` is called with each completed *root* span.  The most recent
    roots are also retained on :attr:`finished` so tests and tools can
    inspect traces without a sink.
    """

    enabled = True

    def __init__(
        self,
        sink: Optional[Callable[[Span], None]] = None,
        clock: Callable[[], float] = time.perf_counter,
        keep: int = 64,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.finished: Deque[Span] = collections.deque(maxlen=keep)
        # One stack per thread; threading.local would also work but a
        # plain dict keyed by ident avoids its attribute-machinery cost.
        self._stacks: dict = {}

    # ------------------------------------------------------------------
    def _stack(self) -> List[Span]:
        import threading

        ident = threading.get_ident()
        stack = self._stacks.get(ident)
        if stack is None:
            stack = self._stacks[ident] = []
        return stack

    def span(self, name: str, /, **attributes: Any) -> Span:
        return Span(name, attributes, tracer=self)

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # called by Span.__enter__/__exit__
    # ------------------------------------------------------------------
    def _open(self, span_: Span) -> None:
        stack = self._stack()
        if stack:
            parent = stack[-1]
            parent.children.append(span_)
            if span_.trace_id is None:
                span_.trace_id = parent.trace_id
            if span_.parent_id is None:
                span_.parent_id = parent.span_id
        elif span_.trace_id is None:
            # Root of a fresh tree (no remote parent adopted).
            span_.trace_id = _new_id()
        span_.span_id = _new_id()
        stack.append(span_)
        span_.start_time = self.clock()

    def _close(self, span_: Span) -> None:
        span_.end_time = self.clock()
        stack = self._stack()
        # Tolerate mispaired exits instead of corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span_:
                break
        if not stack:
            self.finished.append(span_)
            if self.sink is not None:
                self.sink(span_)


# ---------------------------------------------------------------------------
# sinks
# ---------------------------------------------------------------------------


def json_lines_sink(stream: Optional[TextIO] = None) \
        -> Callable[[Span], None]:
    """Sink writing each finished trace as JSON lines."""

    def emit(root: Span) -> None:
        out = stream if stream is not None else sys.stderr
        for line in root.json_lines():
            out.write(line + "\n")

    return emit


def tree_sink(stream: Optional[TextIO] = None) -> Callable[[Span], None]:
    """Sink writing each finished trace as an indented tree."""

    def emit(root: Span) -> None:
        out = stream if stream is not None else sys.stderr
        for line in root.tree_lines():
            out.write(line + "\n")

    return emit


# ---------------------------------------------------------------------------
# process-wide tracer management
# ---------------------------------------------------------------------------

_NULL_TRACER = NullTracer()

#: The active tracer.  Hot paths read this module attribute directly
#: (``tracing.current.enabled``) so the disabled check costs two
#: attribute loads instead of a function call; everyone else should go
#: through :func:`get_tracer` / :func:`set_tracer`.
current: Any = _NULL_TRACER


def get_tracer() -> Any:
    """The active tracer (a :class:`NullTracer` unless enabled)."""
    return current


def set_tracer(tracer: Optional[Any]) -> None:
    """Install ``tracer`` process-wide; None restores the null tracer."""
    global current
    current = tracer if tracer is not None else _NULL_TRACER


def span(name: str, /, **attributes: Any) -> Any:
    """Open a span on the active tracer (no-op when disabled)."""
    return current.span(name, **attributes)


def tracing_enabled() -> bool:
    return current.enabled


def enable_tracing(
    mode: str = "json", stream: Optional[TextIO] = None
) -> Tracer:
    """Install a real tracer emitting ``json`` lines or a ``tree``."""
    if mode in ("json", "jsonl", "1", "true", "on"):
        sink = json_lines_sink(stream)
    elif mode == "tree":
        sink = tree_sink(stream)
    else:
        raise ValueError(f"unknown trace mode {mode!r}")
    tracer = Tracer(sink=sink)
    set_tracer(tracer)
    return tracer


def disable_tracing() -> None:
    set_tracer(None)


def configure_from_environment(env: Optional[dict] = None) -> Any:
    """Apply ``REPRO_TRACE`` from ``env`` (default ``os.environ``).

    Unset / empty / ``0`` / ``false`` / ``off`` leave tracing disabled.
    An unrecognised value prints a warning and leaves tracing disabled
    rather than raising — a typo in the environment must not make the
    library unimportable.  Returns the tracer now active.
    """
    value = (env if env is not None else os.environ).get(ENV_VAR, "")
    value = value.strip().lower()
    if value and value not in ("0", "false", "off"):
        try:
            enable_tracing(value)
        except ValueError:
            sys.stderr.write(
                f"repro: ignoring unknown {ENV_VAR} mode {value!r} "
                "(expected json, tree, or on/off)\n"
            )
            disable_tracing()
    else:
        disable_tracing()
    return get_tracer()


configure_from_environment()
