"""Database facade and sessions.

:class:`Database` owns the catalog, the privilege manager and the dialect;
:class:`Session` is one user's connection-like handle: it parses,
dispatches and executes statements, holds the open transaction, and is the
object the dbapi layer and the SQLJ runtime drive.

At construction a database bootstraps the SQLJ system procedures
(``sqlj.install_par`` and friends, Part 1) by delegating to
:mod:`repro.procedures`; the import happens lazily to keep the engine
package free of upward dependencies.
"""

from __future__ import annotations

import contextlib
import threading
import time
from time import perf_counter as _perf_counter
import weakref
from typing import Any, Iterator, List, Optional, Sequence, Union

from repro import errors, faultpoints
from repro.observability import metrics as _metrics
from repro.observability import slowlog as _slowlog
from repro.observability import stats as _stats
from repro.observability import tracing as _tracing
from repro.engine import ast
from repro.engine.catalog import Catalog, InstalledPar, Routine, \
    Table, UserDefinedType
from repro.engine.dialects import DIALECTS, STANDARD, Dialect
from repro.engine.executor import QueryPlan
from repro.engine.expressions import RowShape
from repro.engine.locks import ReadWriteLock
from repro.engine.mvcc import TransactionManager, WriteConflict
from repro.engine.parser import Parser
from repro.engine.plancache import CachedPlan, PlanCache
from repro.engine.planner import DEFAULT_PLANNER_OPTIONS, plan_query
from repro.engine.privileges import PrivilegeManager
from repro.engine.storage import TransactionLog
from repro.sqltypes import ObjectType

__all__ = ["Database", "Session", "StatementResult", "PreparedStatementPlan"]

# Counter handles cached at import time: the per-statement path must not
# pay a name format plus registry lookup per execution (metrics.reset()
# zeroes counters in place, so these handles stay registered).
_ROWS_RETURNED = _metrics.registry.counter("rows.returned")
_STATEMENT_SECONDS = _metrics.registry.histogram("statement.seconds")
_STATEMENT_COUNTERS: dict = {}
#: Batch fast-path traffic: batches executed and parameter rows bound
#: through them; ``batch.rows / batch.executed`` is the mean batch size.
_BATCH_EXECUTED = _metrics.registry.counter("batch.executed")
_BATCH_ROWS = _metrics.registry.counter("batch.rows")

#: Statement kinds that may run concurrently under the database's
#: shared lock.  With MVCC row versioning this is everything except
#: DDL (which rewrites the catalog that planning reads) and CALL
#: (a routine body may execute arbitrary nested statements, including
#: DDL): reads see a consistent snapshot without blocking, and DML
#: serializes per row through version claims, not through the engine
#: lock.  Transaction control is shared too — commit stamping has its
#: own mutex and rollback undo only touches rows this transaction
#: already claimed or created.
_SHARED_STATEMENTS = (
    ast.Select,
    ast.SetOperation,
    ast.Explain,
    ast.Analyze,
    ast.Insert,
    ast.Update,
    ast.Delete,
    ast.Commit,
    ast.Rollback,
    ast.Savepoint,
    ast.RollbackTo,
    ast.ReleaseSavepoint,
)

#: Statements that are redo-logged as their own immediately-committed
#: transaction when durability is on.  DDL in this engine is
#: non-transactional (it creates no undo entries and takes effect at
#: once), so its WAL record must not wait for a session COMMIT that may
#: never come.
_DDL_STATEMENTS = (
    ast.CreateTable,
    ast.CreateView,
    ast.AlterTable,
    ast.CreateIndex,
    ast.CreateRoutine,
    ast.CreateType,
    ast.Drop,
    ast.Grant,
    ast.Revoke,
    # ANALYZE rides the same path: its statistics take effect at once
    # and must survive recovery, so replay re-runs the collection
    # against the recovered heaps.
    ast.Analyze,
)

#: Statements that join the session's open durable transaction: their
#: redo records become durable when the transaction's COMMIT marker is
#: fsynced.  Savepoint statements are included so a replayed
#: ROLLBACK TO reproduces partial rollbacks.
_TXN_STATEMENTS = (
    ast.Insert,
    ast.Update,
    ast.Delete,
    ast.Call,
    ast.Savepoint,
    ast.RollbackTo,
    ast.ReleaseSavepoint,
)


def _statement_counter(statement_type: type) -> _metrics.Counter:
    counter = _STATEMENT_COUNTERS.get(statement_type)
    if counter is None:
        counter = _metrics.registry.counter(
            "statements." + statement_type.__name__.lower()
        )
        _STATEMENT_COUNTERS[statement_type] = counter
    return counter


class StatementResult:
    """Uniform result of executing one statement.

    Attributes
    ----------
    kind:
        ``"rowset"``, ``"update"``, ``"ddl"``, ``"call"`` or
        ``"analyze"`` (``update_count`` = tables analyzed).
    rows / shape:
        Materialised rows and their :class:`RowShape` (rowset results).
    update_count:
        Affected-row count for DML (0 for DDL).
    out_values:
        For CALL: list aligned with the procedure's OUT/INOUT parameters.
    result_sets:
        For CALL: dynamic result sets produced by the procedure, each a
        ``(rows, shape)`` pair (SQLJ Part 1 "dynamic result sets").
    """

    def __init__(
        self,
        kind: str,
        rows: Optional[List[List[Any]]] = None,
        shape: Optional[RowShape] = None,
        update_count: int = 0,
        out_values: Optional[List[Any]] = None,
        result_sets: Optional[List[Any]] = None,
        function_value: Any = None,
    ) -> None:
        self.kind = kind
        self.rows = rows if rows is not None else []
        self.shape = shape
        self.update_count = update_count
        self.out_values = out_values or []
        self.result_sets = result_sets or []
        self.function_value = function_value

    @property
    def is_rowset(self) -> bool:
        return self.kind == "rowset"

    def column_names(self) -> List[str]:
        if self.shape is None:
            return []
        return [column.name for column in self.shape.columns]


class PreparedStatementPlan:
    """A statement prepared once and executable many times.

    Queries keep their compiled :class:`QueryPlan`; other statements keep
    the parsed AST (re-binding names per execution, which is what lets
    prepared DML observe later catalog changes).
    """

    def __init__(self, session: "Session", sql: str) -> None:
        self.session = session
        self.sql = sql
        self.statement = Parser(sql, session.database.dialect) \
            .parse_statement()
        self._query_plan: Optional[QueryPlan] = None
        self._plan_version = -1
        if isinstance(self.statement, (ast.Select, ast.SetOperation)):
            # Planning reads the catalog, so it must not race a DDL
            # statement rewriting it.
            with session.database.lock.read():
                self._replan()

    def _replan(self) -> None:
        """(Re)plan the query; caller holds the shared lock."""
        self._query_plan, self._shape = plan_query(
            self.statement, self.session
        )
        catalog = self.session.catalog
        self._plan_version = (catalog.version, catalog.stats_version)

    def _run_planned(self, params: Sequence[Any]) -> List[List[Any]]:
        """Execute under the already-held shared lock, replanning if the
        catalog changed since the statement was prepared (DDL between
        executions: new indexes, dropped columns, revoked privileges —
        or ANALYZE, whose fresh statistics may cost a different plan)."""
        catalog = self.session.catalog
        if self._plan_version != (catalog.version, catalog.stats_version):
            self._replan()
        return self._query_plan.run(self.session, params)

    def execute(self, params: Sequence[Any] = ()) -> StatementResult:
        if self._query_plan is not None:
            # Pre-planned query: runs outside execute_statement, so it
            # carries its own span, counters and statistics hooks.  The
            # reused plan is recorded as a plan-cache hit — preparing IS
            # this path's plan cache.
            counter = _STATEMENT_COUNTERS.get(self.statement.__class__)
            if counter is None:
                counter = _statement_counter(self.statement.__class__)
            counter.increment()
            tracer = _tracing.current
            session = self.session
            collect = _stats.enabled
            context = _stats.begin() if collect else None
            lock = session.database.lock
            if not tracer.enabled:
                start = _perf_counter() if collect else 0.0
                try:
                    with lock.read():
                        rows = self._run_planned(params)
                        result = session.finish_rowset(
                            rows, self._shape
                        )
                        session._after_read_statement()
                except errors.SQLException as exc:
                    session._after_read_statement(failed=True)
                    _metrics.increment(f"errors.{exc.sqlstate}")
                    if context is not None:
                        session._record_statement(
                            context,
                            self.sql,
                            _perf_counter() - start,
                            error_sqlstate=exc.sqlstate,
                            cache_hit=True,
                        )
                        context = None
                    raise
                except BaseException:
                    if context is not None:
                        _stats.abandon(context)
                    raise
                _ROWS_RETURNED.increment(len(rows))
                if context is not None:
                    session._record_statement(
                        context,
                        self.sql,
                        _perf_counter() - start,
                        len(rows),
                        None,
                        True,
                    )
                return result
            with tracer.span("statement", sql=self.sql, prepared=True):
                start = _perf_counter()
                try:
                    with tracer.span("execute"), lock.read():
                        rows = self._run_planned(params)
                    _STATEMENT_SECONDS.observe(_perf_counter() - start)
                    _ROWS_RETURNED.increment(len(rows))
                    with tracer.span("fetch"), lock.read():
                        result = session.finish_rowset(rows, self._shape)
                        session._after_read_statement()
                except errors.SQLException as exc:
                    session._after_read_statement(failed=True)
                    _metrics.increment(f"errors.{exc.sqlstate}")
                    if context is not None:
                        session._record_statement(
                            context,
                            self.sql,
                            _perf_counter() - start,
                            error_sqlstate=exc.sqlstate,
                            cache_hit=True,
                        )
                        context = None
                    raise
                except BaseException:
                    if context is not None:
                        _stats.abandon(context)
                    raise
                if context is not None:
                    session._record_statement(
                        context,
                        self.sql,
                        _perf_counter() - start,
                        len(rows),
                        None,
                        True,
                    )
                return result
        return self.session.execute_statement(
            self.statement, params, sql=self.sql
        )


class Database:
    """One database instance: catalog + privileges + dialect."""

    def __init__(
        self,
        name: str = "db",
        dialect: Union[str, Dialect] = STANDARD,
        admin_user: str = "dba",
        plan_cache_size: int = 128,
    ) -> None:
        if isinstance(dialect, str):
            try:
                dialect = DIALECTS[dialect]
            except KeyError:
                raise errors.ConnectionError_(
                    f"unknown dialect {dialect!r}"
                ) from None
        self.name = name
        self.dialect = dialect
        self.admin_user = admin_user
        self.catalog = Catalog()
        self.privileges = PrivilegeManager(admin_user)
        #: Statement-granularity reader-writer lock: queries share it,
        #: mutating statements hold it exclusively (see engine/locks.py).
        self.lock = ReadWriteLock()
        #: Compiled SELECT plans keyed by (sql, dialect, user), invalidated
        #: by catalog-version bumps.  ``plan_cache_size=0`` disables it.
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        #: Feature switches for the planner's fast-path rewrites
        #: (pushdown / index scans / hash joins); see engine/planner.py.
        self.planner_options = DEFAULT_PLANNER_OPTIONS
        #: Durability manager (WAL + checkpointing), attached by
        #: ``repro.open_database``; ``None`` for an in-memory database.
        #: Duck-typed to avoid an import cycle with engine.durability.
        self.durability: Optional[Any] = None
        #: LSM run store when the database uses the LSM storage engine
        #: (attached by ``repro.open_database(storage="lsm")`` *before*
        #: recovery replay, so vacuum and DDL hooks fire during replay
        #: too); ``None`` under the snapshot engine.  Duck-typed for
        #: the same import-cycle reason as ``durability``.
        self.lsm_store: Optional[Any] = None
        #: MVCC transaction manager: snapshots, commit stamps,
        #: write-conflict waits (see engine/mvcc.py).
        self.transactions = TransactionManager()
        #: Serializes commit-stamp allocation with WAL commit-marker
        #: appends and snapshot capture, so marker order == stamp order
        #: and no snapshot observes a commit whose marker is not yet in
        #: the log.  Always acquired *after* the engine lock, never the
        #: other way around.
        self.commit_mutex = threading.Lock()
        #: Committed-dead version count that triggers a background
        #: vacuum pass (see :meth:`vacuum`).
        self.vacuum_threshold = 1000
        self._vacuum_gate = threading.Lock()
        self._vacuum_thread: Optional[threading.Thread] = None
        #: Per-normalized-statement execution profile, served by the
        #: ``repro_stats.statements``/``.locks`` views (observability/stats).
        self.statement_stats = _stats.StatementStats()
        #: Live sessions of this database (``repro_stats.sessions``);
        #: weak so an abandoned session never outlives its last reference.
        self.sessions: "weakref.WeakSet[Session]" = weakref.WeakSet()
        self._bootstrap()

    def _bootstrap(self) -> None:
        # Lazy imports avoid a package cycle: procedures/datatypes build on
        # the engine, and the engine only reaches them through these hooks.
        from repro.procedures.invocation import execute_call, invoke_function
        from repro.procedures.registration import execute_create_routine
        from repro.procedures.system import register_system_routines
        from repro.datatypes.registration import execute_create_type
        from repro.engine.virtual import register_stats_views

        self._invoke_function = invoke_function
        self._execute_call = execute_call
        self._execute_create_routine = execute_create_routine
        self._execute_create_type = execute_create_type
        register_system_routines(self)
        register_stats_views(self)

    def create_session(
        self, user: Optional[str] = None, autocommit: bool = False
    ) -> "Session":
        return Session(self, user or self.admin_user, autocommit)

    def checkpoint(self) -> bool:
        """Fold the write-ahead log into the snapshot now.

        Returns True if a checkpoint was taken, False when the database
        is not durable or a transaction is still in flight.
        """
        if self.durability is None:
            return False
        return self.durability.checkpoint()

    def vacuum(self) -> int:
        """Physically reclaim dead row versions; returns versions removed.

        A version is reclaimable once its ``end`` stamp is at or below
        every live snapshot — no transaction can ever see it again.
        Runs under the exclusive engine lock (brief and occasional) so
        lock-free scans never observe a heap shrink mid-iteration;
        vacuum is *not* WAL-logged, so a crash mid-vacuum is
        recovery-neutral: replay rebuilds the same committed state and
        simply leaves the garbage for the next pass.

        Storage-aware: under the LSM engine, reclaiming a version that
        was already flushed to a run hands its tombstone to the store
        (so the deletion still reaches disk at the next flush), and the
        pass finishes by offering the store a compaction — the
        threshold trigger does useful on-disk work instead of only
        sweeping heap versions.
        """
        from repro.engine.virtual import VirtualTable

        store = self.lsm_store
        horizon = self.transactions.oldest_visible_seq()
        removed = 0
        with self.lock.write():
            for table in list(self.catalog.tables.values()):
                if isinstance(table, VirtualTable):
                    continue
                # Fires once per table, so fault injection can model a
                # crash after *some* tables were already reclaimed.
                faultpoints.trigger("storage.vacuum")
                with table.mutation_lock:
                    dead = [
                        v for v in table.versions
                        if v.end is not None and v.end <= horizon
                    ]
                    if not dead:
                        continue
                    dead_ids = {id(v) for v in dead}
                    table.versions = [
                        v for v in table.versions
                        if id(v) not in dead_ids
                    ]
                    for index in table.indexes:
                        for version in dead:
                            index.remove(version)
                    removed += len(dead)
                if store is not None:
                    for version in dead:
                        store.note_vacuumed(table.name, version)
            self.transactions.dead_versions = 0
        if removed:
            _metrics.increment("mvcc.vacuumed", removed)
        if store is not None:
            store.maybe_compact(self)
        return removed

    def notify_rows_rewritten(self, table: Any) -> None:
        """DDL hook: every row image of ``table`` was rewritten in
        place (column add/drop).  The LSM store must invalidate the
        table's on-disk runs — their row images are stale; the snapshot
        engine needs nothing (its checkpoint always rewrites)."""
        if self.lsm_store is not None:
            self.lsm_store.invalidate_table(table)

    def _maybe_vacuum(self) -> None:
        """Kick off a background vacuum once enough garbage accumulated.

        Called after commits with no engine lock required; at most one
        vacuum thread runs at a time and it is a daemon, so it never
        blocks interpreter shutdown.
        """
        if self.transactions.dead_versions < self.vacuum_threshold:
            return
        with self._vacuum_gate:
            thread = self._vacuum_thread
            if thread is not None and thread.is_alive():
                return
            thread = threading.Thread(
                target=self._vacuum_quietly,
                name=f"repro-vacuum-{self.name}",
                daemon=True,
            )
            self._vacuum_thread = thread
            thread.start()

    def _vacuum_quietly(self) -> None:
        try:
            self.vacuum()
        except errors.ReproError:
            pass  # injected faults target the foreground vacuum tests

    def close(self) -> None:
        """Close the database, checkpointing and closing the WAL if it
        is durable.  Idempotent; an in-memory database is a no-op."""
        thread = self._vacuum_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
        if self.durability is not None:
            self.durability.close()


class Session:
    """One user's connection to a database."""

    def __init__(
        self, database: Database, user: str, autocommit: bool = False
    ) -> None:
        self.database = database
        self.user = user
        self.autocommit = autocommit
        self.transaction_log = TransactionLog()
        self._routine_depth = 0
        #: Open MVCC transaction, begun lazily by the first statement
        #: that needs a snapshot (see :attr:`mvcc_txn`).
        self._mvcc_txn: Optional[Any] = None
        #: Crash-recovery replay overrides: pin the next transaction's
        #: snapshot / the next commit's stamp to the values recorded in
        #: the WAL, reproducing the original execution's visibility.
        self._forced_snapshot: Optional[int] = None
        self._forced_commit_stamp: Optional[int] = None
        #: How long a statement waits for a conflicting transaction
        #: before giving up with SQLSTATE 40001 (suspected deadlock).
        self.lock_timeout = 10.0
        #: Open durable (WAL) transaction id, or None.  Allocated
        #: lazily by the first redo-logged statement, resolved by the
        #: next commit/rollback.
        self._durable_txn: Optional[int] = None
        #: Rows affected by the most recent DML statement (see
        #: :meth:`after_mutation`).
        self.last_rows_affected = 0
        #: Statements recorded by the statistics collector for this
        #: session (``repro_stats.sessions``).
        self.statements_executed = 0
        #: Per-session slow-query threshold in milliseconds; overrides
        #: the global ``REPRO_SLOW_QUERY_MS`` setting when not None.
        self.slow_query_ms: Optional[float] = None
        #: Bound once: the statistics fold runs on every statement, and
        #: the three-attribute chain it replaces is measurable against
        #: the <5% observability budget.
        self._stats_record = database.statement_stats.record
        self.closed = False
        database.sessions.add(self)

    # ------------------------------------------------------------------
    # convenience accessors
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        return self.database.catalog

    @property
    def dialect(self) -> Dialect:
        return self.database.dialect

    # ------------------------------------------------------------------
    # privilege helpers used across the engine
    # ------------------------------------------------------------------
    def check_table_privilege(self, privilege: str, name: str) -> None:
        relation = self.catalog.get_relation(name)
        self.database.privileges.require(
            self.user, privilege, "TABLE", name, relation.owner
        )

    def check_execute_privilege(self, routine: Routine) -> None:
        self.database.privileges.require(
            self.user, "EXECUTE", "ROUTINE", routine.name, routine.owner
        )

    def check_usage_privilege(
        self, obj: Union[UserDefinedType, InstalledPar]
    ) -> None:
        if isinstance(obj, UserDefinedType):
            kind = "DATATYPE"
        else:
            kind = "PAR"
        self.database.privileges.require(
            self.user, "USAGE", kind, obj.name, obj.owner
        )

    @contextlib.contextmanager
    def impersonate(self, user: str) -> Iterator[None]:
        """Temporarily run as ``user`` (definer's-rights execution)."""
        previous = self.user
        self.user = user
        try:
            yield
        finally:
            self.user = previous

    # ------------------------------------------------------------------
    # MVCC transaction lifecycle
    # ------------------------------------------------------------------
    @property
    def mvcc_txn(self) -> Any:
        """The session's open MVCC transaction, begun on first use.

        The snapshot is captured here — at the transaction's first
        statement, not at BEGIN — under the commit mutex so it can
        never land between a concurrent commit's stamp allocation and
        its WAL marker append.
        """
        txn = self._mvcc_txn
        if txn is None:
            with self.database.commit_mutex:
                txn = self.database.transactions.begin(
                    self._forced_snapshot
                )
            self._mvcc_txn = txn
        return txn

    def _end_mvcc(self, commit: bool) -> None:
        """Finish the open MVCC transaction without stamping (read-only
        commit, or abort after undo has run)."""
        txn = self._mvcc_txn
        if txn is None:
            return
        self._mvcc_txn = None
        if commit:
            self.database.transactions.commit(txn)
        else:
            self.database.transactions.abort(txn)

    def _after_read_statement(self, failed: bool = False) -> None:
        """Close out the implicit transaction of a bare query.

        Autocommit queries end their snapshot immediately (read-only
        commit, or abort on failure); inside an explicit transaction a
        completed query pins the snapshot (``pristine`` off) so later
        statements repeat exactly the same reads.
        """
        if self._routine_depth > 0:
            return
        if self.autocommit:
            if not failed and self.transaction_log.active:
                self.transaction_log.commit()
            self._end_mvcc(commit=not failed)
        elif not failed:
            txn = self._mvcc_txn
            if txn is not None:
                txn.pristine = False

    def _wait_for_conflict(self, blocker: int) -> None:
        """Wait out a write-write conflict; called with NO engine lock
        held, after the conflicting statement rolled itself back.

        A transaction that has not completed a statement yet may take a
        fresh snapshot and transparently absorb the blocker's outcome;
        a pinned snapshot retries the statement as-is and surfaces
        SQLSTATE 40001 from the claim if the blocker committed.
        """
        tm = self.database.transactions
        if not tm.wait_for(blocker, self.lock_timeout):
            raise errors.SerializationFailureError(
                "timed out waiting for a conflicting transaction "
                "(suspected deadlock); roll back and retry the "
                "transaction"
            )
        txn = self._mvcc_txn
        if txn is not None and txn.pristine:
            with self.database.commit_mutex:
                tm.refresh_snapshot(txn)

    # ------------------------------------------------------------------
    # statement execution
    # ------------------------------------------------------------------
    def _record_statement(
        self,
        context: "_stats.StatementContext",
        sql_text: str,
        seconds: float,
        rows: int = 0,
        error_sqlstate: Optional[str] = None,
        cache_hit: bool = False,
        batch_rows: Optional[int] = None,
    ) -> None:
        """Finish one statement's statistics: emit a slow-query record
        when the statement crossed the threshold, then fold the
        execution into the per-statement collector (which consumes the
        wait-attribution context and closes the bracket opened by
        ``_stats.begin``).  Called exactly once per statement on every
        exit path of the three terminal executors."""
        self.statements_executed += 1
        # Module-global peek before the call: with no threshold set
        # anywhere (the default) the slow-query log must cost two
        # attribute reads, not a function call per statement.  Logging
        # runs *before* the record() below resets the context, while
        # its wait breakdown still describes this statement.
        if (
            self.slow_query_ms is not None
            or _slowlog._threshold_ms is not None
        ):
            _slowlog.maybe_log(
                self,
                sql=sql_text,
                key=_stats.normalize_statement(sql_text),
                seconds=seconds,
                rows=rows,
                context=context,
                error_sqlstate=error_sqlstate,
                batch_rows=batch_rows,
            )
        self._stats_record(
            sql_text,
            seconds,
            rows,
            context,
            error_sqlstate,
            cache_hit,
        )

    def execute(
        self, sql: str, params: Sequence[Any] = ()
    ) -> StatementResult:
        """Parse and execute one statement."""
        self._check_open()
        tracer = _tracing.current
        cache = self.database.plan_cache
        key = (sql, self.dialect.name, self.user)
        if cache is not None:
            # Optimistic peek before parsing: a hit skips the parser and
            # planner entirely.  The catalog version is re-validated under
            # the shared lock in _execute_query_cached, so a DDL statement
            # racing this peek can at worst force a replan, never a stale
            # execution.  peek (not get): the statement may turn out to
            # be uncacheable DML, which must not count as a miss.
            entry = cache.peek(
                key, self.catalog.version, self.catalog.stats_version
            )
            if entry is not None:
                return self._execute_query_cached(
                    sql, key, entry.statement, entry, params
                )
        if not tracer.enabled:
            statement = Parser(sql, self.dialect).parse_statement()
            if cache is not None and isinstance(
                statement, (ast.Select, ast.SetOperation)
            ):
                return self._execute_query_cached(
                    sql, key, statement, None, params
                )
            return self.execute_statement(statement, params, sql=sql)
        with tracer.span("statement", sql=sql):
            with tracer.span("parse"):
                statement = Parser(sql, self.dialect).parse_statement()
            if cache is not None and isinstance(
                statement, (ast.Select, ast.SetOperation)
            ):
                return self._execute_query_cached(
                    sql, key, statement, None, params, in_span=True
                )
            return self.execute_statement(statement, params, sql=sql)

    def _execute_query_cached(
        self,
        sql: str,
        key: Any,
        statement: ast.Statement,
        entry: Optional[CachedPlan],
        params: Sequence[Any],
        in_span: bool = False,
    ) -> StatementResult:
        """Run a SELECT/set-operation through the plan cache.

        Mirrors :meth:`execute_statement` exactly (counters, shared lock,
        statement-level atomicity, autocommit, error accounting), but
        reuses the cached plan instead of replanning — or plans once and
        stores the result.  ``entry`` is None on a cache miss.
        """
        cache = self.database.plan_cache
        if entry is None:
            cache.miss()
        counter = _STATEMENT_COUNTERS.get(statement.__class__)
        if counter is None:
            counter = _statement_counter(statement.__class__)
        counter.increment()
        tracer = _tracing.current
        timed = tracer.enabled
        collect = _stats.enabled
        context = _stats.begin() if collect else None
        start = _perf_counter() if (timed or collect) else 0.0

        def run_locked() -> StatementResult:
            # Holding the shared lock: DDL (which takes the lock
            # exclusively) cannot change the catalog under us, so this
            # version check is authoritative.
            local = entry
            mark = self.transaction_log.position()
            try:
                version = self.catalog.version
                stats_version = self.catalog.stats_version
                if (
                    local is None
                    or local.catalog_version != version
                    or local.stats_version != stats_version
                ):
                    if timed:
                        with tracer.span("plan"):
                            plan, shape = plan_query(statement, self)
                    else:
                        plan, shape = plan_query(statement, self)
                    local = CachedPlan(
                        statement, plan, shape, version, stats_version
                    )
                    cache.put(key, local)
                if timed:
                    with tracer.span("execute"):
                        rows = local.plan.run(self, params)
                    with tracer.span("fetch"):
                        result = self.finish_rowset(rows, local.shape)
                else:
                    rows = local.plan.run(self, params)
                    result = self.finish_rowset(rows, local.shape)
            except BaseException:
                if self.transaction_log.position() > mark:
                    self.transaction_log.rollback_to_position(mark)
                self._after_read_statement(failed=True)
                raise
            self._after_read_statement()
            return result

        lock = self.database.lock
        try:
            if not timed or in_span:
                # Untraced, or the caller already opened the
                # statement/parse spans.
                with lock.read():
                    result = run_locked()
            else:
                # Cache hit before parsing: no parse span to emit.
                with tracer.span("statement", sql=sql, cached=True):
                    with lock.read():
                        result = run_locked()
        except errors.SQLException as exc:
            _metrics.increment(f"errors.{exc.sqlstate}")
            if context is not None:
                self._record_statement(
                    context,
                    sql,
                    _perf_counter() - start,
                    error_sqlstate=exc.sqlstate,
                    cache_hit=entry is not None,
                )
                context = None
            raise
        except BaseException:
            if context is not None:
                _stats.abandon(context)
            raise
        if timed:
            _STATEMENT_SECONDS.observe(_perf_counter() - start)
        _ROWS_RETURNED.increment(len(result.rows))
        if context is not None:
            self._record_statement(
                context,
                sql,
                _perf_counter() - start,
                len(result.rows),
                None,
                entry is not None,
            )
        return result

    def prepare(self, sql: str) -> PreparedStatementPlan:
        """Parse (and for queries, plan) once for repeated execution."""
        self._check_open()
        return PreparedStatementPlan(self, sql)

    def execute_statement(
        self,
        statement: ast.Statement,
        params: Sequence[Any] = (),
        sql: Optional[str] = None,
    ) -> StatementResult:
        """Execute a pre-parsed statement.

        ``sql`` is the statement's original text when the caller has it
        (``execute``, prepared statements); redo logging falls back to
        rendering the AST when it is absent (profile-driven execution).
        """
        self._check_open()
        counter = _STATEMENT_COUNTERS.get(statement.__class__)
        if counter is None:
            counter = _statement_counter(statement.__class__)
        counter.increment()
        timed = _tracing.current.enabled
        collect = _stats.enabled
        context = _stats.begin() if collect else None
        start = _perf_counter() if (timed or collect) else 0.0
        lock = self.database.lock
        guard = (
            lock.read
            if isinstance(statement, _SHARED_STATEMENTS)
            else lock.write
        )
        pending: Optional[int] = None
        try:
            # Write-write conflicts retry the whole statement: the
            # failed attempt rolled itself back under the lock, then the
            # wait for the blocking transaction happens with NO engine
            # lock held (the blocker needs the lock to finish).
            while True:
                try:
                    with guard():
                        mark = self.transaction_log.position()
                        try:
                            if timed:
                                result = self._dispatch_traced(
                                    statement, params
                                )
                            else:
                                result = self._dispatch(statement, params)
                            # Redo-log only statements that succeeded; a
                            # logging failure (unpicklable parameter,
                            # unrenderable AST) rolls the statement back
                            # below, keeping the WAL and the heap in
                            # agreement.
                            pending = self._log_durable(
                                statement, params, sql
                            )
                        except BaseException:
                            # Statement-level atomicity: a failing
                            # statement (including one killed by an
                            # injected fault) backs out its own partial
                            # mutations before propagating.
                            if self.transaction_log.position() > mark:
                                self.transaction_log.rollback_to_position(
                                    mark
                                )
                            if (
                                self.autocommit
                                and self._routine_depth == 0
                            ):
                                # The implicit per-statement transaction
                                # holds no surviving work; end it so its
                                # snapshot stops pinning the vacuum
                                # horizon and conflict waiters move on.
                                self._end_mvcc(commit=False)
                            raise
                        if self.autocommit and self._routine_depth == 0:
                            committed = self._commit_all()
                            if committed is not None:
                                pending = committed
                        else:
                            txn = self._mvcc_txn
                            if txn is not None:
                                txn.pristine = False
                    break
                except WriteConflict as conflict:
                    if self.database.lock.held_exclusive_by_me():
                        # Still inside an outer exclusive statement (a
                        # routine body): the blocker can never finish
                        # while we hold the engine lock, so waiting is
                        # futile — fail fast, retryably.  Ownership
                        # matters: an unrelated thread holding the
                        # exclusive lock will release it, so that case
                        # falls through to the normal wait below.
                        raise errors.SerializationFailureError(
                            "write-write conflict inside an exclusive "
                            "statement; roll back and retry the "
                            "transaction"
                        ) from None
                    self._wait_for_conflict(conflict.blocker)
        except errors.SQLException as exc:
            _metrics.increment(f"errors.{exc.sqlstate}")
            if context is not None:
                self._record_statement(
                    context,
                    sql if sql is not None
                    else f"<{type(statement).__name__}>",
                    _perf_counter() - start,
                    error_sqlstate=exc.sqlstate,
                )
                context = None
            raise
        except BaseException:
            if context is not None:
                _stats.abandon(context)
            raise
        if pending is not None:
            # fsync AFTER the engine lock is released: concurrent
            # committers pile onto one group-commit fsync instead of
            # serialising the whole engine behind the disk.  The wait
            # context is still active here so the fsync stall is charged
            # to this statement (waits.wal.sync).
            self._after_commit(pending)
        if timed:
            # Per-statement latency is only sampled while tracing is on:
            # two clock reads plus a histogram update are measurable next
            # to the fastest prepared statements.
            _STATEMENT_SECONDS.observe(_perf_counter() - start)
        if result.kind == "rowset":
            _ROWS_RETURNED.increment(len(result.rows))
        if context is not None:
            self._record_statement(
                context,
                sql if sql is not None else f"<{type(statement).__name__}>",
                _perf_counter() - start,
                len(result.rows) if result.kind == "rowset" else 0,
            )
        return result

    def execute_batch(
        self,
        sql: str,
        param_rows: Sequence[Sequence[Any]],
    ) -> List[int]:
        """Execute one DML statement against many parameter rows as a
        single atomic unit.

        This is the engine end of ``executemany`` / JDBC
        ``executeBatch``: the statement is parsed once, ``INSERT ...
        VALUES`` batches take the bulk heap path
        (:func:`repro.engine.dml.execute_insert_batch` — one
        ``mutation_lock`` span, amortized unique checks, one deferred
        index pass), and durability writes ONE logical WAL record for
        the whole batch, so group commit fsyncs once per batch.

        The batch is one statement for every purpose that matters:

        * **atomicity** — any failure rolls back every row of the batch
          (statement-level rollback to the batch's start); in
          autocommit mode nothing is committed, inside an explicit
          transaction the surrounding transaction stays open and
          undisturbed;
        * **observability** — one ``repro_stats.statements`` entry with
          the total affected-row count, one slow-query record carrying
          the batch size and per-row mean.

        Returns the per-parameter-row affected counts (JDBC
        ``updateCounts``).
        """
        self._check_open()
        from repro.engine import dml

        rows = [list(row) for row in param_rows]
        if not rows:
            return []
        statement = Parser(sql, self.dialect).parse_statement()
        if not isinstance(statement, (ast.Insert, ast.Update, ast.Delete)):
            raise errors.FeatureNotSupportedError(
                "execute_batch supports only INSERT, UPDATE and DELETE "
                "statements"
            )
        counter = _STATEMENT_COUNTERS.get(statement.__class__)
        if counter is None:
            counter = _statement_counter(statement.__class__)
        counter.increment()
        _BATCH_EXECUTED.increment()
        _BATCH_ROWS.increment(len(rows))
        fast_insert = isinstance(statement, ast.Insert) and isinstance(
            statement.source, ast.ValuesSource
        )
        tracer = _tracing.current
        collect = _stats.enabled
        context = _stats.begin() if collect else None
        start = _perf_counter() if (tracer.enabled or collect) else 0.0
        span = (
            tracer.span("statement", sql=sql, batch=len(rows))
            if tracer.enabled
            else contextlib.nullcontext()
        )
        lock = self.database.lock
        pending: Optional[int] = None
        counts: List[int] = []
        try:
            with span:
                while True:
                    try:
                        with lock.read():
                            mark = self.transaction_log.position()
                            counts = []
                            try:
                                if fast_insert:
                                    counts = dml.execute_insert_batch(
                                        statement, self, rows
                                    )
                                else:
                                    # UPDATE / DELETE / INSERT..SELECT:
                                    # no bulk heap path, but the parse,
                                    # the WAL record and the commit are
                                    # still amortized over the batch.
                                    for row_params in rows:
                                        result = self._dispatch(
                                            statement, row_params
                                        )
                                        counts.append(result.update_count)
                                    self.after_mutation(rows=sum(counts))
                                self._log_durable_batch(
                                    statement, rows, sql
                                )
                            except BaseException:
                                # All-or-nothing: back out every row of
                                # the batch before propagating.
                                if self.transaction_log.position() > mark:
                                    self.transaction_log \
                                        .rollback_to_position(mark)
                                if (
                                    self.autocommit
                                    and self._routine_depth == 0
                                ):
                                    self._end_mvcc(commit=False)
                                raise
                            if (
                                self.autocommit
                                and self._routine_depth == 0
                            ):
                                committed = self._commit_all()
                                if committed is not None:
                                    pending = committed
                            else:
                                txn = self._mvcc_txn
                                if txn is not None:
                                    txn.pristine = False
                        break
                    except WriteConflict as conflict:
                        if self.database.lock.held_exclusive_by_me():
                            raise errors.SerializationFailureError(
                                "write-write conflict inside an "
                                "exclusive statement; roll back and "
                                "retry the transaction"
                            ) from None
                        self._wait_for_conflict(conflict.blocker)
                if pending is not None:
                    # fsync after the engine lock is released so
                    # concurrent committers share one group-commit
                    # flush — one barrier for the whole batch.
                    self._after_commit(pending)
        except errors.SQLException as exc:
            _metrics.increment(f"errors.{exc.sqlstate}")
            if context is not None:
                self._record_statement(
                    context,
                    sql,
                    _perf_counter() - start,
                    error_sqlstate=exc.sqlstate,
                    batch_rows=len(rows),
                )
                context = None
            raise
        except BaseException:
            if context is not None:
                _stats.abandon(context)
            raise
        if tracer.enabled:
            _STATEMENT_SECONDS.observe(_perf_counter() - start)
        if context is not None:
            self._record_statement(
                context,
                sql,
                _perf_counter() - start,
                rows=sum(counts),
                batch_rows=len(rows),
            )
        return counts

    def _dispatch_traced(
        self, statement: ast.Statement, params: Sequence[Any]
    ) -> StatementResult:
        """Tracing-enabled dispatch: pipeline stages under spans."""
        tracer = _tracing.current
        if isinstance(statement, (ast.Select, ast.SetOperation)):
            with tracer.span("plan"):
                plan, shape = plan_query(statement, self)
            with tracer.span("execute"):
                rows = plan.run(self, params)
            with tracer.span("fetch"):
                return self.finish_rowset(rows, shape)
        with tracer.span("execute", statement=type(statement).__name__):
            return self._dispatch(statement, params)

    def _dispatch(
        self, statement: ast.Statement, params: Sequence[Any]
    ) -> StatementResult:
        from repro.engine import ddl, dml

        if isinstance(statement, (ast.Select, ast.SetOperation)):
            plan, shape = plan_query(statement, self)
            rows = plan.run(self, params)
            return self.finish_rowset(rows, shape)
        if isinstance(statement, ast.Insert):
            count = dml.execute_insert(statement, self, params)
            return StatementResult("update", update_count=count)
        if isinstance(statement, ast.Update):
            count = dml.execute_update(statement, self, params)
            return StatementResult("update", update_count=count)
        if isinstance(statement, ast.Delete):
            count = dml.execute_delete(statement, self, params)
            return StatementResult("update", update_count=count)
        if isinstance(statement, ast.CreateTable):
            ddl.execute_create_table(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.CreateView):
            ddl.execute_create_view(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.AlterTable):
            ddl.execute_alter_table(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.CreateIndex):
            ddl.execute_create_index(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.CreateRoutine):
            self.database._execute_create_routine(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.CreateType):
            self.database._execute_create_type(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.Drop):
            ddl.execute_drop(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.Grant):
            ddl.execute_grant(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.Revoke):
            ddl.execute_revoke(statement, self)
            return StatementResult("ddl")
        if isinstance(statement, ast.Call):
            return self.database._execute_call(statement, self, params)
        if isinstance(statement, ast.Explain):
            return self._explain(statement, params)
        if isinstance(statement, ast.Analyze):
            return self._analyze(statement)
        if isinstance(statement, ast.Commit):
            self.commit()
            return StatementResult("ddl")
        if isinstance(statement, ast.Rollback):
            self.rollback()
            return StatementResult("ddl")
        if isinstance(statement, ast.Savepoint):
            self.transaction_log.set_savepoint(statement.name)
            return StatementResult("ddl")
        if isinstance(statement, ast.RollbackTo):
            self.transaction_log.rollback_to(statement.name)
            return StatementResult("ddl")
        if isinstance(statement, ast.ReleaseSavepoint):
            self.transaction_log.release(statement.name)
            return StatementResult("ddl")
        raise errors.FeatureNotSupportedError(
            f"cannot execute {type(statement).__name__}"
        )

    def _explain_tree(
        self,
        query: ast.QueryExpr,
        params: Sequence[Any],
        analyze: bool,
    ) -> "tuple":
        """Plan (and for ANALYZE, execute) ``query``; returns
        ``(PlanNode, total_rows, total_seconds)`` — the latter two are
        None unless ``analyze``.  Caller holds the shared lock."""
        from repro.engine.explain import build_plan_tree

        plan, _shape = plan_query(query, self)
        if not analyze:
            return build_plan_tree(plan.root), None, None
        from repro.engine.executor import instrument_plan

        # EXPLAIN ANALYZE plans its query freshly above, so in-place
        # instrumentation never touches a cached plan.
        instrumentation = instrument_plan(plan.root)
        start = _perf_counter()
        result_rows = plan.run(self, params)
        elapsed = _perf_counter() - start
        tree = build_plan_tree(plan.root, instrumentation)
        return tree, len(result_rows), elapsed

    def _explain(
        self, statement: ast.Explain, params: Sequence[Any] = ()
    ) -> StatementResult:
        import json

        from repro.engine.explain import format_plan_tree
        from repro.sqltypes import VarCharType
        from repro.engine.expressions import ColumnInfo

        tree, total_rows, elapsed = self._explain_tree(
            statement.query, params, statement.analyze
        )
        shape = RowShape(
            [ColumnInfo(None, "query_plan", VarCharType(None))]
        )
        if statement.format == "json":
            document: dict = {"plan": tree.to_dict()}
            if statement.analyze:
                document["total_rows"] = total_rows
                document["total_ms"] = elapsed * 1000.0
            rows = [[json.dumps(document)]]
            return StatementResult("rowset", rows=rows, shape=shape)
        lines = format_plan_tree(tree)
        if statement.analyze:
            lines.append(
                f"Total: rows={total_rows} "
                f"time={elapsed * 1000.0:.3f} ms"
            )
        rows = [[line] for line in lines]
        return StatementResult("rowset", rows=rows, shape=shape)

    def explain(
        self,
        sql: str,
        params: Sequence[Any] = (),
        analyze: bool = False,
    ) -> Any:
        """Structured plan introspection: the typed :class:`PlanNode`
        tree for ``sql`` (a query, or an EXPLAIN statement whose
        options are honoured).

        With ``analyze=True`` (or ``EXPLAIN ANALYZE`` text) the query
        is executed through an instrumented plan and each node carries
        actual row counts and times.  The tree includes the planner's
        estimated rows/costs and the alternatives it rejected, when
        ANALYZE statistics made a cost model available.
        """
        self._check_open()
        statement = Parser(sql, self.dialect).parse_statement()
        if isinstance(statement, ast.Explain):
            query = statement.query
            analyze = analyze or statement.analyze
        elif isinstance(statement, (ast.Select, ast.SetOperation)):
            query = statement
        else:
            raise errors.FeatureNotSupportedError(
                "explain() takes a query (SELECT / set operation)"
            )
        with self.database.lock.read():
            try:
                tree, _rows, _elapsed = self._explain_tree(
                    query, params, analyze
                )
            except BaseException:
                self._after_read_statement(failed=True)
                raise
            self._after_read_statement()
        return tree

    def _analyze(self, statement: ast.Analyze) -> StatementResult:
        """Collect planner statistics for one table or every base table.

        Reads the session's MVCC snapshot (the same rows a SELECT would
        see) and publishes per-table row counts, per-column NDV, null
        fractions, min/max, and equi-width histograms into the catalog,
        bumping its ``stats_version`` so cached plans are re-costed.
        """
        from repro.engine.statistics import collect_table_statistics
        from repro.engine.virtual import VirtualTable

        catalog = self.catalog
        if statement.table is not None:
            relation = catalog.get_relation(statement.table)
            if not isinstance(relation, Table) or isinstance(
                relation, VirtualTable
            ):
                raise errors.FeatureNotSupportedError(
                    f"ANALYZE targets base tables; "
                    f"{statement.table!r} is not one"
                )
            targets = [relation]
        else:
            targets = [
                table
                for table in catalog.tables.values()
                if not isinstance(table, VirtualTable)
            ]
        txn = self.mvcc_txn
        for table in targets:
            self.check_table_privilege("SELECT", table.name)
        for table in targets:
            visible = [
                version.row
                for version in list(table.versions)
                if txn.sees(version)
            ]
            stats = collect_table_statistics(
                table, visible, analyzed_txn=txn.id
            )
            catalog.set_statistics(table.name, stats)
        _metrics.increment("analyze.tables", len(targets))
        return StatementResult("analyze", update_count=len(targets))

    def finish_rowset(
        self, rows: List[List[Any]], shape: RowShape
    ) -> StatementResult:
        """Copy object-typed values out of storage (value semantics)."""
        import copy
        import datetime
        import decimal

        scalars = (
            str, int, float, bool, bytes, decimal.Decimal,
            datetime.date, datetime.time, datetime.datetime, type(None),
        )
        object_positions = [
            index
            for index, column in enumerate(shape.columns)
            if isinstance(column.descriptor, ObjectType)
            or column.descriptor is None
        ]
        if object_positions:
            for row in rows:
                for index in object_positions:
                    value = row[index]
                    if not isinstance(value, scalars):
                        row[index] = copy.deepcopy(value)
        return StatementResult("rowset", rows=rows, shape=shape)

    # ------------------------------------------------------------------
    # routines
    # ------------------------------------------------------------------
    def invoke_function(self, routine: Routine, args: List[Any]) -> Any:
        """Invoke a Part 1 external function from an expression."""
        return self.database._invoke_function(self, routine, args)

    @contextlib.contextmanager
    def routine_call(self) -> Iterator[None]:
        """Marks the dynamic extent of an external routine invocation
        (suppresses autocommit for statements the routine runs)."""
        self._routine_depth += 1
        try:
            yield
        finally:
            self._routine_depth -= 1

    # ------------------------------------------------------------------
    # durability (redo logging)
    # ------------------------------------------------------------------
    def _log_durable(
        self,
        statement: ast.Statement,
        params: Sequence[Any],
        sql: Optional[str],
    ) -> Optional[int]:
        """Append the redo record for a just-executed statement.

        Returns a WAL position the caller must make durable after
        releasing the engine lock (DDL commits immediately), or None
        (reads, non-durable databases, statements that join the
        session transaction and become durable at its COMMIT).

        Statements executed inside an external routine are *not*
        logged: the outer CALL is, and replaying it re-runs the body.
        """
        durability = self.database.durability
        if durability is None or self._routine_depth > 0:
            return None
        # Record the snapshot the statement actually executed with, so
        # crash-recovery replay reproduces its visibility even when the
        # original history interleaved with concurrent commits.
        open_txn = self._mvcc_txn
        snapshot = (
            open_txn.snapshot_seq
            if open_txn is not None
            else self.database.transactions.commit_seq
        )
        if isinstance(statement, _DDL_STATEMENTS):
            text = sql if sql is not None else self._render_for_log(
                statement
            )
            txn = durability.begin()
            durability.log_statement(txn, self.user, text, params, snapshot)
            return durability.log_commit(txn)
        if isinstance(statement, _TXN_STATEMENTS):
            text = sql if sql is not None else self._render_for_log(
                statement
            )
            if self._durable_txn is None:
                self._durable_txn = durability.begin()
            durability.log_statement(
                self._durable_txn, self.user, text, params, snapshot
            )
            return None
        return None  # reads, EXPLAIN, COMMIT/ROLLBACK (logged as markers)

    def _log_durable_batch(
        self,
        statement: ast.Statement,
        param_rows: Sequence[Sequence[Any]],
        sql: Optional[str],
    ) -> None:
        """Append ONE logical redo record for a whole executed batch.

        The record carries the statement text plus every parameter row,
        so a batch of N rows costs one WAL append (and, at commit, one
        group-commit fsync barrier) instead of N statement records.
        Recovery replays the batch through :meth:`execute_batch`, which
        restores its all-or-nothing semantics.
        """
        durability = self.database.durability
        if durability is None or self._routine_depth > 0:
            return
        open_txn = self._mvcc_txn
        snapshot = (
            open_txn.snapshot_seq
            if open_txn is not None
            else self.database.transactions.commit_seq
        )
        text = sql if sql is not None else self._render_for_log(statement)
        if self._durable_txn is None:
            self._durable_txn = durability.begin()
        durability.log_batch(
            self._durable_txn, self.user, text, param_rows, snapshot
        )

    def _render_for_log(self, statement: ast.Statement) -> str:
        from repro.engine.render import render_statement

        return render_statement(statement, self.dialect)

    def _commit_durable(self, stamp: Optional[int] = None) -> Optional[int]:
        """Write the COMMIT marker (carrying the MVCC commit stamp) for
        the session's open durable transaction; returns its WAL
        position, or None."""
        if self._durable_txn is None:
            return None
        txn, self._durable_txn = self._durable_txn, None
        durability = self.database.durability
        if durability is None:
            return None
        return durability.log_commit(txn, stamp)

    def _commit_all(self) -> Optional[int]:
        """Commit the session's open work: undo log, MVCC stamps, WAL
        COMMIT marker.

        Stamp allocation and marker append happen together under the
        database's commit mutex, so the WAL's marker order equals
        commit-stamp order — crash recovery replays commits in exactly
        the order their stamps made them visible.  Waiting
        transactions are only released (``finish``) after the marker is
        in the log, which keeps *their* subsequent statement records
        behind this commit in the WAL.  The fsync wait stays with the
        caller, outside every lock.
        """
        txn = self._mvcc_txn
        forced = self._forced_commit_stamp
        self._forced_commit_stamp = None
        has_writes = (
            (txn is not None and txn.has_writes())
            or forced is not None
            or self._durable_txn is not None
        )
        if not has_writes:
            # Read-only: nothing to stamp, log or order.  Committing
            # the (empty) undo log still clears any savepoints.
            self.transaction_log.commit()
            self._end_mvcc(commit=True)
            return None
        tm = self.database.transactions
        self._mvcc_txn = None
        pending: Optional[int] = None
        with self.database.commit_mutex:
            self.transaction_log.commit()
            try:
                stamp = tm.stamp(txn, forced) if txn is not None else forced
                faultpoints.trigger("mvcc.commit")
                pending = self._commit_durable(stamp)
            finally:
                if txn is not None:
                    tm.finish(txn)
        self.database._maybe_vacuum()
        return pending

    def _abort_durable(self) -> None:
        if self._durable_txn is None:
            return
        txn, self._durable_txn = self._durable_txn, None
        durability = self.database.durability
        if durability is not None:
            durability.log_abort(txn)

    def _after_commit(self, pending: Optional[int]) -> None:
        """Durability barrier, called with no engine lock held: wait
        for the group-commit fsync covering ``pending``, then give the
        checkpointer a chance to run."""
        durability = self.database.durability
        if durability is None or pending is None:
            return
        durability.wait_durable(pending)
        durability.maybe_checkpoint()

    # ------------------------------------------------------------------
    # transactions / lifecycle
    # ------------------------------------------------------------------
    def after_mutation(self, rows: int = 0) -> None:
        """Hook called by DML execution with the affected-row count."""
        self.last_rows_affected = rows

    def commit(self) -> None:
        self._check_open()
        # The shared lock suffices: commit touches only this
        # transaction's own versions (stamping under the commit mutex)
        # and must not exclude concurrent readers or writers.
        with self.database.lock.read():
            pending = self._commit_all()
        # The fsync happens outside the engine lock so that concurrent
        # committers share one group-commit flush.
        self._after_commit(pending)

    def rollback(self) -> None:
        # Undo replays against table heaps, but every action touches
        # only versions this transaction created or claimed — invisible
        # or irrelevant to everyone else — and takes the per-table
        # mutation lock for structural changes, so the shared engine
        # lock is enough.
        self._check_open()
        with self.database.lock.read():
            self.transaction_log.rollback()
            self._end_mvcc(commit=False)
            self._abort_durable()

    def close(self) -> None:
        if not self.closed:
            if (
                self.transaction_log.active
                or self._durable_txn is not None
                or self._mvcc_txn is not None
            ):
                with self.database.lock.read():
                    self.transaction_log.rollback()
                    self._end_mvcc(commit=False)
                    self._abort_durable()
            self.closed = True

    def _check_open(self) -> None:
        if self.closed:
            raise errors.ConnectionClosedError("session is closed")
