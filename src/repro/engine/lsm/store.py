"""The LSM store: memtable flushes, run bookkeeping, compaction.

One :class:`LsmStore` owns a durable database directory's run files
and manifest.  The *memtable* is the un-flushed portion of the live
MVCC heap — versions whose ``rid`` is still None, made durable by the
existing WAL exactly as under the snapshot engine.  What changes is the
checkpoint: instead of pickling the whole database (O(database)), a
flush writes only the delta since the previous flush (O(new data)) as
one immutable SSTable run per table:

* a **data entry** per committed-live version not yet on disk (the
  version's ``rid`` is staged during collection and assigned only once
  the manifest install succeeds, so a failed flush leaves the heap
  re-flushable);
* a **tombstone** per flushed version whose ``end`` stamp landed since
  the last flush (plus tombstones handed over by vacuum for versions it
  physically reclaimed before they could be flushed).

Versions born *and* deleted between two flushes never touch disk at
all.  After the runs are written the manifest is atomically installed
and the WAL truncated — same crash discipline as the snapshot
checkpoint, same recovery contract: the manifest covers everything with
``seq <= last_seq``; the WAL replays the rest.

Background **size-tiered compaction** merges adjacent similarly-sized
runs of a table once enough accumulate, annihilating (data, tombstone)
pairs whose ``end`` stamp is at or below the MVCC vacuum horizon
(:meth:`~repro.engine.mvcc.TransactionManager.oldest_visible_seq`) —
the same bound vacuum uses for heap versions, so no live snapshot can
lose a row it could still see.  Compaction never blocks the engine:
run files are immutable, the merge happens off-lock, and only the
manifest install takes the store lock.

Fault-injection sites: ``lsm.flush`` (before a flush writes anything),
``lsm.manifest`` (runs written, manifest not yet installed),
``lsm.flush.install`` (manifest installed, WAL not yet truncated),
``lsm.compact`` (before the merged run is written) and
``lsm.compact.install`` (merged manifest installed, victim runs not yet
unlinked).  Every window is recovery-neutral by construction.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro import errors, faultpoints
from repro.observability import metrics as _metrics
from repro.engine.lsm.manifest import (
    MANIFEST_FILENAME,
    MANIFEST_VERSION,
    read_manifest,
    write_manifest,
)
from repro.engine.lsm.sstable import Entry, SSTableReader, write_sstable

__all__ = ["LsmStore", "MANIFEST_FILENAME"]

_FLUSHES = _metrics.registry.counter("lsm.flushes")
_COMPACTIONS = _metrics.registry.counter("lsm.compactions")
_STALL_MS = _metrics.registry.histogram("lsm.stall_ms")
_RUNS_WRITTEN = _metrics.registry.counter("lsm.runs_written")
_TOMBSTONES_GCED = _metrics.registry.counter("lsm.tombstones_gced")
_COMPACT_CORRUPTION = _metrics.registry.counter("lsm.compact.corruption")

_RUN_PREFIX = "run-"
_RUN_SUFFIX = ".run"


class LsmStore:
    """Run files + manifest for one durable database directory.

    Thread-safety: ``_lock`` guards the run lists, watermarks, rid
    allocation and manifest writes.  :meth:`flush` is only ever called
    under the exclusive engine lock (by the durability manager's
    checkpoint), vacuum's tombstone handoff runs under the same engine
    lock, and compaction touches only immutable files outside the store
    lock — so the lock is held for bookkeeping, never for I/O-sized
    work except the manifest install itself.
    """

    def __init__(self, directory: str, *, compact_threshold: int = 4) -> None:
        self.directory = directory
        #: Merge once this many similarly-sized adjacent runs accumulate.
        self.compact_threshold = compact_threshold
        self._lock = threading.RLock()
        #: Live runs per table, oldest first (newest-first merges
        #: iterate in reverse).
        self.runs: Dict[str, List[SSTableReader]] = {}
        #: Commit stamps <= this are fully covered by the runs.
        self.flushed_stamp = 0
        #: Highest WAL seq folded into the runs at the last flush.
        self.last_seq = 0
        self.next_rid = 1
        self._next_file = 1
        #: Vacuum handoff: tombstones for flushed versions the heap no
        #: longer holds (table -> {rid: end stamp}).
        self._pending: Dict[str, Dict[int, int]] = {}
        #: Tables whose runs must be rewritten wholesale at the next
        #: flush (a column add/drop rewrote every row image in place).
        self._doomed: Set[str] = set()
        #: Schema image from the manifest (None on a fresh store).
        self._image: Optional[Any] = None
        self._image_blob: Optional[bytes] = None
        self._compact_gate = threading.Lock()
        self._compact_thread: Optional[threading.Thread] = None
        #: First DataError a background compaction hit (CRC mismatch in
        #: a run frame = real on-disk corruption).  Non-None disables
        #: further background passes; surfaced by ``lsm.compact.corruption``.
        self.corruption_error: Optional[BaseException] = None
        self.closed = False

    # ------------------------------------------------------------------
    # open / recovery
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, directory: str) -> "LsmStore":
        """Load the manifest (if any) and sweep orphaned files.

        Files the manifest does not reference — runs from a crashed
        flush or compaction, ``.tmp`` leftovers — are deleted: the
        atomic manifest install means they were never part of the
        durable state.
        """
        store = cls(directory)
        payload = read_manifest(directory)
        referenced: Set[str] = set()
        if payload is not None:
            store._image_blob = payload["image_blob"]
            try:
                store._image = pickle.loads(store._image_blob)
            except Exception as exc:
                raise errors.DataError(
                    f"cannot load LSM manifest schema: {exc}"
                ) from exc
            store.flushed_stamp = int(payload["commit_seq"])
            store.last_seq = int(payload["last_seq"])
            store.next_rid = int(payload["next_rid"])
            store._next_file = int(payload["next_file"])
            for name, filenames in payload["runs"].items():
                readers = []
                for filename in filenames:
                    path = os.path.join(directory, filename)
                    if not os.path.exists(path):
                        raise errors.DataError(
                            f"LSM manifest references missing run "
                            f"file {filename!r}"
                        )
                    readers.append(SSTableReader(path))
                    referenced.add(filename)
                store.runs[name] = readers
        for filename in os.listdir(directory):
            if filename in referenced:
                continue
            is_orphan_run = (
                filename.startswith(_RUN_PREFIX)
                and filename.endswith(_RUN_SUFFIX)
            )
            is_tmp = filename.endswith(".tmp") and (
                filename.startswith(_RUN_PREFIX)
                or filename.startswith(MANIFEST_FILENAME)
            )
            if is_orphan_run or is_tmp:
                try:
                    os.unlink(os.path.join(directory, filename))
                except OSError:  # pragma: no cover - race with cleanup
                    pass
        return store

    def initialise(self, database: Any) -> None:
        """Install the creation-time manifest for a brand-new directory.

        The manifest is what marks a directory as LSM-format on
        reopen, so it must exist from the moment the database does —
        otherwise a crash before the first flush would silently reopen
        the directory under the snapshot engine.  Empty run set,
        ``last_seq`` 0: the WAL replays everything, exactly as it
        would have before this manifest was written.
        """
        with self._lock:
            self._install_manifest(
                database, {}, commit_seq=0, last_seq=0
            )

    def build_database(
        self,
        *,
        name: str,
        dialect: Any,
        admin_user: str,
        plan_cache_size: int,
    ) -> Any:
        """Reconstruct the database the manifest + runs describe.

        The catalog comes from the manifest's schema image; every
        table's heap is rebuilt by the newest-first merged run scan,
        preserving each row's ``rid`` and original MVCC ``begin`` stamp
        (so post-recovery snapshots see exactly the committed history).
        Secondary indexes are rebuilt from the loaded heaps.  WAL
        replay — run by :func:`repro.engine.durability.open_database`
        afterwards — then refills the memtable.
        """
        from repro.engine.database import Database
        from repro.engine.mvcc import TXN_BOOTSTRAP, RowVersion
        from repro.engine.persistence import restore_database
        from repro.engine.virtual import VirtualTable

        if self._image is None:
            return Database(
                name=name,
                dialect=dialect,
                admin_user=admin_user,
                plan_cache_size=plan_cache_size,
            )
        database = restore_database(
            self._image, plan_cache_size=plan_cache_size
        )
        for table in database.catalog.tables.values():
            if isinstance(table, VirtualTable):
                continue
            versions = []
            for rid, begin, row in self.scan_table(table.name):
                version = RowVersion(
                    list(row), xmin=TXN_BOOTSTRAP, begin=begin
                )
                version.rid = rid
                versions.append(version)
            table.versions = versions
            for index in table.indexes:
                index.rebuild()
        return database

    # ------------------------------------------------------------------
    # flush (the LSM checkpoint)
    # ------------------------------------------------------------------
    def flush(self, database: Any, *, last_seq: int) -> int:
        """Flush the memtable delta to one new run per dirty table.

        Called by the durability manager under the exclusive engine
        lock with no durable transaction in flight, so every stamp in
        the heap is <= the current commit counter.  Returns the number
        of runs written.  Crash-safe at every step: runs are written
        before the manifest references them, the manifest is installed
        atomically, and the WAL is truncated by the *caller* only after
        the manifest install succeeded.
        """
        from repro.engine.virtual import VirtualTable

        cutoff = database.transactions.commit_seq
        written = 0
        with self._lock:
            tables = [
                t for t in database.catalog.tables.values()
                if not isinstance(t, VirtualTable)
            ]
            live_names = {t.name for t in tables}
            doomed_files: List[str] = []
            new_runs: Dict[str, List[SSTableReader]] = {}
            # Heap mutations are STAGED until the manifest install
            # succeeds: a version's rid marks it "durable in a run", so
            # assigning rids eagerly and then failing (unpicklable row,
            # ENOSPC) would make the next flush skip those versions and
            # truncate the WAL over them — silent loss of committed
            # data.  On failure the heap is untouched and this
            # attempt's run files are unlinked, so a retry re-emits the
            # identical delta.
            staged_rids: List[Tuple[Any, int]] = []
            staged_paths: List[str] = []
            next_rid = self.next_rid
            try:
                for table in tables:
                    entries: List[Entry] = []
                    with table.mutation_lock:
                        for version in table.versions:
                            if version.rid is None:
                                # Born since the last flush.  Dead-on-
                                # arrival versions (end already stamped)
                                # never reach disk at all.
                                if (
                                    version.begin is not None
                                    and version.end is None
                                ):
                                    rid = next_rid
                                    next_rid += 1
                                    staged_rids.append((version, rid))
                                    entries.append((
                                        "d", rid, version.begin,
                                        list(version.row),
                                    ))
                            elif (
                                version.end is not None
                                and version.end > self.flushed_stamp
                            ):
                                # Flushed earlier, deleted since:
                                # tombstone.
                                entries.append(
                                    ("t", version.rid, version.end)
                                )
                    for rid, end in self._pending.get(
                        table.name, {}
                    ).items():
                        entries.append(("t", rid, end))
                    if table.name in self._doomed:
                        # Every row image was rewritten in place (ALTER
                        # ADD/DROP COLUMN): the old runs hold stale
                        # images, so they are dropped wholesale and the
                        # loop above re-emitted the full table (rids
                        # were reset).
                        base: List[SSTableReader] = []
                        doomed_files.extend(
                            r.path for r in self.runs.get(table.name, ())
                        )
                    else:
                        base = list(self.runs.get(table.name, ()))
                    if entries:
                        entries.sort(key=lambda e: e[1])
                        path = self._allocate_run_path()
                        write_sstable(path, entries, table=table.name)
                        staged_paths.append(path)
                        base.append(SSTableReader(path))
                        written += 1
                    if base:
                        new_runs[table.name] = base
                # Runs of tables dropped from the catalog die with them.
                for name, readers in self.runs.items():
                    if name not in live_names:
                        doomed_files.extend(r.path for r in readers)
                faultpoints.trigger("lsm.manifest")
                self._install_manifest(
                    database, new_runs,
                    commit_seq=cutoff, last_seq=last_seq,
                    next_rid=next_rid,
                )
            except BaseException:
                for path in staged_paths:
                    try:
                        os.unlink(path)
                    except OSError:  # pragma: no cover
                        pass
                raise
            # The manifest is durable — now (and only now) mark the
            # flushed versions and advance the watermarks.
            for version, rid in staged_rids:
                version.rid = rid
            self.next_rid = next_rid
            self.runs = new_runs
            self.flushed_stamp = cutoff
            self.last_seq = last_seq
            self._pending.clear()
            self._doomed.clear()
            for path in doomed_files:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover
                    pass
        _FLUSHES.increment()
        if written:
            _RUNS_WRITTEN.increment(written)
        return written

    def _install_manifest(
        self,
        database: Any,
        runs: Dict[str, List[SSTableReader]],
        *,
        commit_seq: int,
        last_seq: int,
        next_rid: Optional[int] = None,
    ) -> None:
        from repro.engine.persistence import image_of

        image = image_of(database, include_rows=False)
        try:
            blob = pickle.dumps(
                image, protocol=pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise errors.DataError(
                "catalog is not flushable — object defaults may only "
                f"be instances of importable classes: {exc}"
            ) from exc
        write_manifest(self.directory, {
            "version": MANIFEST_VERSION,
            "image_blob": blob,
            "commit_seq": commit_seq,
            "last_seq": last_seq,
            "next_rid": self.next_rid if next_rid is None else next_rid,
            "next_file": self._next_file,
            "runs": {
                name: [os.path.basename(r.path) for r in readers]
                for name, readers in runs.items()
            },
        })
        # Cache the image only once it is durable, so a failed install
        # cannot leave compaction's manifest rewrites holding a schema
        # newer than the watermarks say.
        self._image = image
        self._image_blob = blob

    def _allocate_run_path(self) -> str:
        number = self._next_file
        self._next_file += 1
        return os.path.join(
            self.directory, f"{_RUN_PREFIX}{number:08d}{_RUN_SUFFIX}"
        )

    def note_stall(self, seconds: float) -> None:
        """Record one flush pause (the LSM analogue of the snapshot
        checkpoint's ``wal.checkpoint.seconds``)."""
        _STALL_MS.observe(seconds * 1000.0)

    # ------------------------------------------------------------------
    # merged reads
    # ------------------------------------------------------------------
    def scan_table(
        self, name: str, memtable: Optional[Any] = None
    ) -> Iterator[Tuple[Optional[int], Optional[int], List[Any]]]:
        """Merged committed-row scan: memtable first, runs newest-first.

        Yields ``(rid, begin, row)`` triples.  ``memtable`` is the live
        version heap (iterable of RowVersions) and takes precedence for
        any rid it holds; omitted (recovery, tests over cold runs) the
        scan covers the flushed state only.  Tombstones — from the
        vacuum-handoff buffer, from each run, and from end-stamped
        memtable versions — shadow older data entries; a run's own
        tombstones are unioned *before* its data entries are read, so a
        (data, tombstone) pair kept together by compaction still
        annihilates at read time.
        """
        with self._lock:
            runs = list(self.runs.get(name, ()))
            shadowed: Set[int] = set(self._pending.get(name, ()))
        seen: Set[int] = set()
        if memtable is not None:
            for version in memtable:
                rid = version.rid
                if rid is not None:
                    seen.add(rid)
                    if version.end is not None:
                        shadowed.add(rid)
                if version.committed_live():
                    yield (rid, version.begin, list(version.row))
        for run in reversed(runs):
            shadowed |= run.tombstone_rids
            for entry in run.data_entries():
                rid = entry[1]
                if rid in shadowed or rid in seen:
                    continue
                seen.add(rid)
                yield (rid, entry[2], list(entry[3]))

    def get(self, name: str, rid: int) -> Optional[Entry]:
        """Point lookup of ``rid``'s data entry across a table's runs,
        newest first (Bloom filters skip runs that cannot hold it);
        None if absent or tombstoned."""
        with self._lock:
            runs = list(self.runs.get(name, ()))
            if rid in self._pending.get(name, ()):
                return None
        shadowed = False
        for run in reversed(runs):
            if rid in run.tombstone_rids:
                shadowed = True
            entry = run.get(rid)
            if entry is not None:
                return None if shadowed else entry
        return None

    # ------------------------------------------------------------------
    # engine hooks (vacuum / DDL)
    # ------------------------------------------------------------------
    def note_vacuumed(self, table_name: str, version: Any) -> None:
        """Vacuum handoff: the heap physically reclaimed a flushed
        version whose deletion is not on disk yet — remember the
        tombstone so the next flush writes it.  (Crash before that
        flush is safe: the WAL still holds the deleting statement.)"""
        rid = version.rid
        end = version.end
        if rid is None or end is None:
            return
        with self._lock:
            if end <= self.flushed_stamp:
                return  # deletion already durable in a run
            if table_name in self._doomed:
                return  # whole run set is being rewritten anyway
            self._pending.setdefault(table_name, {})[rid] = end

    def invalidate_table(self, table: Any) -> None:
        """A DDL change rewrote every row image in place (column
        add/drop): on-disk entries are stale, so reset every version's
        rid and doom the table's runs — the next flush rewrites it
        wholesale under the new schema."""
        with self._lock:
            with table.mutation_lock:
                for version in table.versions:
                    version.rid = None
            self._doomed.add(table.name)
            self._pending.pop(table.name, None)

    # ------------------------------------------------------------------
    # compaction
    # ------------------------------------------------------------------
    def maybe_compact(self, database: Any) -> bool:
        """Kick off a background compaction if any table has
        accumulated enough runs.  At most one compaction thread runs at
        a time; it is a daemon and never holds the engine lock."""
        if self.closed or self.corruption_error is not None:
            return False
        with self._lock:
            due = any(
                len(readers) >= self.compact_threshold
                for readers in self.runs.values()
            )
        if not due:
            return False
        with self._compact_gate:
            thread = self._compact_thread
            if thread is not None and thread.is_alive():
                return False
            thread = threading.Thread(
                target=self._compact_quietly,
                args=(database,),
                name=f"repro-lsm-compact-{os.path.basename(self.directory)}",
                daemon=True,
            )
            self._compact_thread = thread
            thread.start()
        return True

    def _compact_quietly(self, database: Any) -> None:
        try:
            self.compact(database)
        except errors.DataError as exc:
            # A corrupt frame in a run file is not a transient
            # condition: record it (counter + attribute) and stop
            # retrying, instead of silently grinding over the damage
            # forever.  A foreground compact() still raises it.
            _COMPACT_CORRUPTION.increment()
            self.corruption_error = exc
        except errors.ReproError:
            pass  # injected faults target the foreground compaction tests
        except OSError:
            # The directory vanished underneath us (an abandoned
            # database in tests, an unmounted volume): background
            # maintenance must never take the process down, and the
            # manifest install is atomic, so the durable state is
            # either the old or the new run set — both consistent.
            pass

    def compact(self, database: Any) -> int:
        """One foreground compaction pass over every table; returns the
        number of merges performed."""
        horizon = database.transactions.oldest_visible_seq()
        merged = 0
        for name in list(self.runs):
            merged += self._compact_table(name, horizon)
        return merged

    def _compact_table(self, name: str, horizon: int) -> int:
        with self._lock:
            readers = list(self.runs.get(name, ()))
            span = self._pick_span(readers)
            if span is None:
                return 0
            lo, hi = span
            victims = readers[lo:hi]
        # Merge off-lock: run files are immutable.  Newer entries win
        # (each rid's data entry exists once, so this is really a union
        # plus tombstone resolution).
        data: Dict[int, Entry] = {}
        tombstones: Dict[int, Entry] = {}
        for reader in victims:
            for entry in reader.entries():
                if entry[0] == "d":
                    data[entry[1]] = entry
                else:
                    tombstones[entry[1]] = entry
        merged: List[Entry] = []
        annihilated: Set[int] = set()
        for rid, entry in data.items():
            tomb = tombstones.get(rid)
            if tomb is not None and tomb[2] <= horizon:
                # Dead below the vacuum horizon: no live snapshot can
                # see the row — data and tombstone annihilate.
                annihilated.add(rid)
            else:
                merged.append(entry)
        for rid, tomb in tombstones.items():
            if rid not in annihilated:
                # Either its data entry lives in an older (unmerged)
                # run, or the horizon still protects a reader — keep it.
                merged.append(tomb)
        merged.sort(key=lambda e: e[1])
        faultpoints.trigger("lsm.compact")
        replacement: List[SSTableReader] = []
        merged_path: Optional[str] = None
        if merged:
            with self._lock:
                merged_path = self._allocate_run_path()
            write_sstable(merged_path, merged, table=name)
            replacement = [SSTableReader(merged_path)]
        with self._lock:
            current = list(self.runs.get(name, ()))
            try:
                start = current.index(victims[0])
            except ValueError:
                start = -1
            if (
                start < 0
                or current[start:start + len(victims)] != victims
            ):
                # The table was rewritten (ALTER/DROP) while we merged;
                # our input no longer exists.  Discard the output.
                if merged_path is not None:
                    try:
                        os.unlink(merged_path)
                    except OSError:  # pragma: no cover
                        pass
                return 0
            self.runs[name] = (
                current[:start]
                + replacement
                + current[start + len(victims):]
            )
            self._write_manifest_locked()
            faultpoints.trigger("lsm.compact.install")
        for reader in victims:
            try:
                os.unlink(reader.path)
            except OSError:  # pragma: no cover
                pass
        _COMPACTIONS.increment()
        if annihilated:
            _TOMBSTONES_GCED.increment(len(annihilated))
        return 1

    def _pick_span(
        self, readers: List[SSTableReader]
    ) -> Optional[Tuple[int, int]]:
        """Size-tiered victim selection: walking from the newest run
        backwards, find the first contiguous group of at least
        ``compact_threshold`` runs in the same size tier (tiers are
        ~4x size buckets).  Contiguity preserves the newest-first
        ordering invariant tombstone resolution depends on."""
        count = len(readers)
        if count < self.compact_threshold:
            return None
        hi = count
        while hi > 0:
            tier = self._tier(readers[hi - 1].size)
            lo = hi - 1
            while lo > 0 and self._tier(readers[lo - 1].size) == tier:
                lo -= 1
            if hi - lo >= self.compact_threshold:
                return (lo, hi)
            hi = lo
        return None

    @staticmethod
    def _tier(size: int) -> int:
        return max(1, size).bit_length() // 2

    def _write_manifest_locked(self) -> None:
        """Re-install the manifest with the current run lists but the
        *last flush's* schema and watermarks — compaction changes which
        files hold the durable state, never what that state is."""
        assert self._image_blob is not None
        write_manifest(self.directory, {
            "version": MANIFEST_VERSION,
            "image_blob": self._image_blob,
            "commit_seq": self.flushed_stamp,
            "last_seq": self.last_seq,
            "next_rid": self.next_rid,
            "next_file": self._next_file,
            "runs": {
                name: [os.path.basename(r.path) for r in readers]
                for name, readers in self.runs.items()
            },
        })

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def run_count(self, name: Optional[str] = None) -> int:
        with self._lock:
            if name is not None:
                return len(self.runs.get(name, ()))
            return sum(len(r) for r in self.runs.values())

    def close(self) -> None:
        """Stop accepting compactions and wait for an in-flight one."""
        self.closed = True
        thread = self._compact_thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=5.0)
