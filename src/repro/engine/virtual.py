"""Virtual system tables: live statistics served through plain SQL.

A :class:`VirtualTable` is a catalog-registered, read-only table whose
rows are *produced* at scan time by a Python callable instead of being
stored in a heap.  The planner pairs it with :class:`VirtualScan`, a
leaf operator that invokes the producer per execution — so a cached
plan over a virtual table always returns fresh rows.  Because the
tables live in the ordinary catalog under dotted names
(``repro_stats.statements`` and friends), a plain ``SELECT`` against
them works identically in-process, through dbapi connections and
pools, from translated SQLJ programs, and over the protocol-v2 server
— the paper's location transparency, extended to observability itself.

Registered views (see ``docs/OBSERVABILITY.md`` for column meanings):

* ``repro_stats.statements`` — per-normalized-statement profile
  (calls, errors by SQLSTATE, total/mean/p99 time, rows, plan-cache
  hits, wait breakdown),
* ``repro_stats.sessions`` — live sessions of this database (with
  their MVCC transaction id and snapshot, when one is open),
* ``repro_stats.transactions`` — live MVCC transactions: snapshot,
  write-set sizes, pristine flag,
* ``repro_stats.locks`` — reader-writer-lock and WAL wait attribution,
* ``repro_stats.statistics`` — ANALYZE statistics per table column
  (row count, NDV, null fraction, min/max, histogram bounds, stats
  version and the analyzing transaction),
* ``repro_stats.metrics`` — the process-wide metrics registry,
* ``repro_stats.pool`` — connection pools of this process,
* ``repro_stats.server`` — network-server counters and timings.

Virtual tables are system-owned and SELECT is granted to ``public``;
DML and DDL against them are rejected by the respective executors
(:mod:`repro.engine.dml`, :mod:`repro.engine.ddl`).  They are never
included in persistence images — bootstrap re-registers them on every
open, exactly like the SQLJ system routines.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List

from repro import errors
from repro.engine.catalog import Column, Table
from repro.engine.executor import Operator, RuntimeContext
from repro.observability import metrics as _metrics
from repro.sqltypes import parse_type

__all__ = [
    "VirtualTable",
    "VirtualScan",
    "register_stats_views",
    "STATS_VIEW_NAMES",
]

#: Producer signature: session -> materialised rows.
Producer = Callable[[Any], List[List[Any]]]


class VirtualTable(Table):
    """A read-only table whose rows come from a producer callable."""

    def __init__(
        self,
        name: str,
        columns: List[Column],
        owner: str,
        producer: Producer,
    ) -> None:
        super().__init__(name, columns, owner)
        self.producer = producer

    def readonly_error(self, action: str) -> errors.SQLException:
        return errors.FeatureNotSupportedError(
            f"cannot {action} {self.name!r}: system statistics views "
            "are read-only"
        )


class VirtualScan(Operator):
    """Leaf operator producing a virtual table's rows.

    Rows are materialised per execution, so statistics are read at
    query time even when the plan itself came from the plan cache.
    Deliberately does not bump ``rows.scanned`` — reading statistics
    must not perturb the statistics being read.
    """

    def __init__(self, table: VirtualTable) -> None:
        self.table = table

    def rows(self, ctx: RuntimeContext) -> Iterator[List[Any]]:
        return iter(self.table.producer(ctx.session))


# ---------------------------------------------------------------------------
# the repro_stats schema
# ---------------------------------------------------------------------------


def _columns(*specs: Any) -> List[Column]:
    return [Column(name, parse_type(spelling)) for name, spelling in specs]


def _statements_rows(session: Any) -> List[List[Any]]:
    return session.database.statement_stats.statement_rows()


def _sessions_rows(session: Any) -> List[List[Any]]:
    rows: List[List[Any]] = []
    for other in list(session.database.sessions):
        if other.closed:
            continue
        txn = other._mvcc_txn
        rows.append([
            other.user,
            bool(other.autocommit),
            bool(
                other.transaction_log.active
                or other._durable_txn is not None
            ),
            other.statements_executed,
            txn.id if txn is not None else None,
            txn.snapshot_seq if txn is not None else None,
        ])
    return rows


def _transactions_rows(session: Any) -> List[List[Any]]:
    manager = session.database.transactions
    rows: List[List[Any]] = []
    for txn in manager.active_transactions():
        rows.append([
            txn.id,
            txn.snapshot_seq,
            len(txn.created),
            len(txn.claimed),
            bool(txn.pristine),
        ])
    rows.sort(key=lambda row: row[0])
    return rows


def _locks_rows(session: Any) -> List[List[Any]]:
    database = session.database
    lock = database.lock
    rows: List[List[Any]] = [[
        "(database)",
        lock.shared_wait_count,
        lock.exclusive_wait_count,
        lock.shared_wait_seconds * 1000.0,
        lock.exclusive_wait_seconds * 1000.0,
        None,
    ]]
    rows.extend(database.statement_stats.lock_rows())
    return rows


def _metrics_rows(session: Any) -> List[List[Any]]:
    snapshot = _metrics.snapshot()
    rows: List[List[Any]] = []
    for name in sorted(snapshot["counters"]):
        rows.append([
            name, "counter", float(snapshot["counters"][name]),
            None, None, None, None, None,
        ])
    for name in sorted(snapshot["histograms"]):
        summary = snapshot["histograms"][name]
        rows.append([
            name, "histogram", None,
            summary["count"], summary["sum"], summary["min"],
            summary["max"], summary["mean"],
        ])
    return rows


def _statistics_rows(session: Any) -> List[List[Any]]:
    import json

    catalog = session.database.catalog
    rows: List[List[Any]] = []
    for table_name in sorted(catalog.statistics):
        stats = catalog.statistics[table_name]
        if not stats.columns:
            rows.append([
                table_name, None, stats.row_count, None, None,
                None, None, None, stats.version, stats.analyzed_txn,
            ])
            continue
        for column_name in sorted(stats.columns):
            column = stats.columns[column_name]
            bounds = (
                json.dumps(column.histogram_bounds)
                if column.histogram_bounds else None
            )
            rows.append([
                table_name,
                column_name,
                stats.row_count,
                column.ndv,
                column.null_fraction,
                None if column.min_value is None else repr(column.min_value),
                None if column.max_value is None else repr(column.max_value),
                bounds,
                stats.version,
                stats.analyzed_txn,
            ])
    return rows


def _pool_rows(session: Any) -> List[List[Any]]:
    from repro.dbapi.driver import DriverManager

    rows: List[List[Any]] = []
    with DriverManager._pools_lock:
        pools = list(DriverManager._pools.items())
    for (_url, user), pool in pools:
        rows.append([
            pool.name,
            pool.url,
            user,
            pool._in_use + len(pool._idle),
            pool._in_use,
            len(pool._idle),
            pool.max_size,
        ])
    return rows


def _server_rows(session: Any) -> List[List[Any]]:
    snapshot = _metrics.snapshot()
    rows: List[List[Any]] = []
    for name in sorted(snapshot["counters"]):
        if name.startswith("server."):
            rows.append([
                name, float(snapshot["counters"][name]), None, None,
            ])
    for name in sorted(snapshot["histograms"]):
        if name.startswith("server."):
            summary = snapshot["histograms"][name]
            rows.append([
                name, None, summary["count"], summary["sum"],
            ])
    return rows


#: (table name, column spec, producer) for every repro_stats view.
_VIEW_SPECS = [
    (
        "repro_stats.statements",
        (
            ("statement", "VARCHAR"),
            ("calls", "INT"),
            ("errors", "INT"),
            ("error_sqlstates", "VARCHAR"),
            ("total_ms", "DOUBLE PRECISION"),
            ("mean_ms", "DOUBLE PRECISION"),
            ("p99_ms", "DOUBLE PRECISION"),
            ("rows_returned", "INT"),
            ("rows_scanned", "INT"),
            ("plan_cache_hits", "INT"),
            ("shared_wait_ms", "DOUBLE PRECISION"),
            ("exclusive_wait_ms", "DOUBLE PRECISION"),
            ("wal_wait_ms", "DOUBLE PRECISION"),
        ),
        _statements_rows,
    ),
    (
        "repro_stats.sessions",
        (
            ("user_name", "VARCHAR"),
            ("autocommit", "BOOLEAN"),
            ("in_txn", "BOOLEAN"),
            ("statements", "INT"),
            ("txn_id", "INT"),
            ("snapshot_seq", "INT"),
        ),
        _sessions_rows,
    ),
    (
        "repro_stats.transactions",
        (
            ("txn_id", "INT"),
            ("snapshot_seq", "INT"),
            ("rows_created", "INT"),
            ("rows_claimed", "INT"),
            ("pristine", "BOOLEAN"),
        ),
        _transactions_rows,
    ),
    (
        "repro_stats.locks",
        (
            ("statement", "VARCHAR"),
            ("shared_waits", "INT"),
            ("exclusive_waits", "INT"),
            ("shared_wait_ms", "DOUBLE PRECISION"),
            ("exclusive_wait_ms", "DOUBLE PRECISION"),
            ("wal_wait_ms", "DOUBLE PRECISION"),
        ),
        _locks_rows,
    ),
    (
        "repro_stats.metrics",
        (
            ("metric", "VARCHAR"),
            ("kind", "VARCHAR"),
            ("value", "DOUBLE PRECISION"),
            ("observations", "INT"),
            ("total", "DOUBLE PRECISION"),
            ("minimum", "DOUBLE PRECISION"),
            ("maximum", "DOUBLE PRECISION"),
            ("mean", "DOUBLE PRECISION"),
        ),
        _metrics_rows,
    ),
    (
        "repro_stats.statistics",
        (
            ("table_name", "VARCHAR"),
            ("column_name", "VARCHAR"),
            ("row_count", "INT"),
            ("ndv", "INT"),
            ("null_fraction", "DOUBLE PRECISION"),
            ("min_value", "VARCHAR"),
            ("max_value", "VARCHAR"),
            ("histogram_bounds", "VARCHAR"),
            ("stats_version", "INT"),
            ("analyzed_txn", "INT"),
        ),
        _statistics_rows,
    ),
    (
        "repro_stats.pool",
        (
            ("pool_name", "VARCHAR"),
            ("url", "VARCHAR"),
            ("user_name", "VARCHAR"),
            ("size", "INT"),
            ("in_use", "INT"),
            ("idle", "INT"),
            ("max_size", "INT"),
        ),
        _pool_rows,
    ),
    (
        "repro_stats.server",
        (
            ("metric", "VARCHAR"),
            ("value", "DOUBLE PRECISION"),
            ("observations", "INT"),
            ("total_seconds", "DOUBLE PRECISION"),
        ),
        _server_rows,
    ),
]

STATS_VIEW_NAMES = tuple(name for name, _cols, _producer in _VIEW_SPECS)


def register_stats_views(database: Any) -> None:
    """Create the ``repro_stats`` virtual tables in ``database``.

    Called from ``Database._bootstrap``; tables are owned by the admin
    user with SELECT granted to ``public`` so any session — including
    the server's default ``PUBLIC`` remote user — can read them.
    """
    admin = database.admin_user
    for name, specs, producer in _VIEW_SPECS:
        table = VirtualTable(name, _columns(*specs), admin, producer)
        database.catalog.create_table(table)
        database.privileges.grant(
            "SELECT", "TABLE", name, ["public"], grantor=admin, owner=admin
        )
