"""Row storage and undo logging.

Tables keep their rows as append-only lists of
:class:`repro.engine.mvcc.RowVersion` objects; what this module adds is
*transactional mutation*: every insert/delete/update goes through a
:class:`TransactionLog` that can undo the work on ROLLBACK, and through
the session's MVCC transaction so concurrent snapshots never observe
uncommitted state.

An INSERT appends a provisional version (``begin`` unstamped until
commit); DELETE/UPDATE never remove anything — they *claim* the target
version by writing the transaction id into ``xmax``, and an UPDATE
additionally appends the replacement as a new version.  Claiming a
version another live transaction already claimed raises
:class:`repro.engine.mvcc.WriteConflict` (the session layer waits and
retries); claiming one a *committed* transaction already ended raises
:class:`repro.errors.SerializationFailureError` — first-updater-wins,
SQLSTATE 40001.

Part 2 objects are stored **by value**: inserting an object deep-copies it
into the heap and fetching copies it back out, so a caller mutating its
own instance never changes stored data — the paper's "objects-by-value"
JDBC semantics.
"""

from __future__ import annotations

import copy
import threading
from typing import Any, Callable, List, Optional

from repro import errors, faultpoints
from repro.engine.catalog import Table
from repro.engine.mvcc import RowVersion, WriteConflict
from repro.observability import metrics as _metrics
from repro.sqltypes import ObjectType

__all__ = ["TransactionLog", "store_value", "fetch_value", "RowStore"]

#: Heap mutations (rows inserted + deleted + replaced) across every
#: table; pairs with the ``wal.*`` counters to show write amplification.
_ROWS_MUTATED = _metrics.registry.counter("rows.mutated")


def store_value(value: Any, descriptor: Any) -> Any:
    """Prepare ``value`` for storage under ``descriptor``.

    UDT instances are deep-copied (stored by value); scalars are already
    immutable in Python.
    """
    if value is not None and isinstance(descriptor, ObjectType):
        return copy.deepcopy(value)
    return value


def fetch_value(value: Any, descriptor: Any) -> Any:
    """Materialise a stored value for a client (copy-out for objects)."""
    if value is not None and isinstance(descriptor, ObjectType):
        return copy.deepcopy(value)
    return value


class TransactionLog:
    """Undo log for one session's open transaction, with savepoints.

    A savepoint records the current undo-log length; rolling back to it
    unwinds only the mutations performed since, and discards any later
    savepoints (standard SQL savepoint semantics).

    The log is owned by one session, but pooled connections migrate
    sessions across threads, so its mutations are guarded by a reentrant
    lock (cheap insurance next to the engine's statement lock).
    """

    def __init__(self) -> None:
        self._undo: List[Callable[[], None]] = []
        self._savepoints: dict = {}
        self._lock = threading.RLock()
        self.active = False

    def record(self, undo: Callable[[], None]) -> None:
        """Register an undo action for a mutation just performed."""
        with self._lock:
            self.active = True
            self._undo.append(undo)

    def commit(self) -> int:
        """Discard undo actions; returns how many mutations were kept."""
        with self._lock:
            count = len(self._undo)
            self._undo.clear()
            self._savepoints.clear()
            self.active = False
            return count

    def rollback(self) -> int:
        """Apply undo actions in reverse order; returns how many ran."""
        with self._lock:
            count = len(self._undo)
            for undo in reversed(self._undo):
                undo()
            self._undo.clear()
            self._savepoints.clear()
            self.active = False
            return count

    # -- statement-level atomicity ---------------------------------------
    def position(self) -> int:
        """Current undo-log position (a mark for partial rollback)."""
        return len(self._undo)

    def rollback_to_position(self, mark: int) -> int:
        """Undo every mutation recorded after ``mark``.

        Backs out the work of a statement that failed midway, so errors
        (including injected faults) never leave half a statement behind.
        """
        with self._lock:
            count = len(self._undo) - mark
            while len(self._undo) > mark:
                self._undo.pop()()
            self._savepoints = {
                name: position
                for name, position in self._savepoints.items()
                if position <= mark
            }
            self.active = bool(self._undo)
            return count

    # -- savepoints ------------------------------------------------------
    def set_savepoint(self, name: str) -> None:
        """Create (or move) the named savepoint at the current position."""
        with self._lock:
            self._savepoints[name] = len(self._undo)

    def rollback_to(self, name: str) -> int:
        """Undo every mutation after the named savepoint."""
        from repro import errors

        with self._lock:
            if name not in self._savepoints:
                raise errors.TransactionError(
                    f"savepoint {name!r} does not exist"
                )
            mark = self._savepoints[name]
            count = len(self._undo) - mark
            while len(self._undo) > mark:
                self._undo.pop()()
            # Savepoints created after this one are gone.
            self._savepoints = {
                n: position
                for n, position in self._savepoints.items()
                if position <= mark
            }
            return count

    def release(self, name: str) -> None:
        """Forget the named savepoint (its changes remain pending)."""
        from repro import errors

        with self._lock:
            if name not in self._savepoints:
                raise errors.TransactionError(
                    f"savepoint {name!r} does not exist"
                )
            del self._savepoints[name]


class RowStore:
    """Transactional mutation interface over a table's version heap.

    Secondary indexes on the table are maintained in step with the
    heap: an insert adds the new version to every index on the forward
    path, and the recorded undo action reverses both the heap change
    *and* the index change, so a rollback leaves indexes consistent
    without a rebuild.  Undo actions also unwind the owning MVCC
    transaction's ``created``/``claimed`` sets — a version backed out
    by ROLLBACK TO SAVEPOINT must never be stamped at commit.
    """

    def __init__(self, table: Table, session: Any) -> None:
        self.table = table
        self.session = session
        self.log: TransactionLog = session.transaction_log
        self.txn = session.mvcc_txn

    def _index_add(self, version: RowVersion) -> None:
        for index in self.table.indexes:
            index.add(version)

    def _index_remove(self, version: RowVersion) -> None:
        for index in self.table.indexes:
            index.remove(version)

    def insert(self, row: List[Any],
               faultpoint: str = "storage.insert",
               precondition: Optional[Callable[[], None]] = None
               ) -> RowVersion:
        """Append a provisional version of ``row`` to the heap.

        ``precondition`` runs under the table's mutation lock
        immediately before the append.  The statement layer passes its
        unique/PRIMARY KEY check here so check-and-insert is one atomic
        step: without the shared lock span, two concurrent INSERTs of
        the same key could each scan the heap before either appends its
        provisional version, and both would pass.  Whatever the
        precondition raises (UniqueViolationError, WriteConflict)
        propagates with the heap untouched.
        """
        faultpoints.trigger(faultpoint)
        version = RowVersion(row, xmin=self.txn.id, begin=None)
        with self.table.mutation_lock:
            if precondition is not None:
                precondition()
            self.table.versions.append(version)
            self._index_add(version)
        self.txn.created.add(version)
        _ROWS_MUTATED.increment()

        def undo(v=version, store=self) -> None:
            with store.table.mutation_lock:
                versions = store.table.versions
                # Remove by identity, newest-first: the version was
                # appended, so it is near the tail.
                for at in range(len(versions) - 1, -1, -1):
                    if versions[at] is v:
                        del versions[at]
                        break
                store._index_remove(v)
            store.txn.created.discard(v)

        self.log.record(undo)
        return version

    def insert_many(
        self,
        rows: List[List[Any]],
        precondition: Optional[Callable[[], None]] = None,
    ) -> List[RowVersion]:
        """Append provisional versions of every row in one lock span.

        The batch counterpart of :meth:`insert`: the table's mutation
        lock is taken once for the whole batch, ``precondition`` (the
        batch-amortized unique check) runs before *any* append so a
        violation leaves the heap untouched, and secondary-index
        maintenance is one deferred pass over the new versions instead
        of an interleaved per-row update.  A single undo action backs
        out the entire batch, so statement-level rollback is one
        closure regardless of batch size.
        """
        faultpoints.trigger("storage.insert")
        txn = self.txn
        versions = [
            RowVersion(row, xmin=txn.id, begin=None) for row in rows
        ]
        with self.table.mutation_lock:
            if precondition is not None:
                precondition()
            self.table.versions.extend(versions)
            for version in versions:
                self._index_add(version)
        created = txn.created
        for version in versions:
            created.add(version)
        _ROWS_MUTATED.increment(len(versions))

        def undo(batch=versions, store=self) -> None:
            with store.table.mutation_lock:
                doomed = {id(v) for v in batch}
                store.table.versions[:] = [
                    v for v in store.table.versions
                    if id(v) not in doomed
                ]
                for v in batch:
                    store._index_remove(v)
            for v in batch:
                store.txn.created.discard(v)

        self.log.record(undo)
        return versions

    def claim(self, version: RowVersion) -> None:
        """Write-claim ``version`` for deletion or replacement.

        First-updater-wins: raises
        :class:`~repro.errors.SerializationFailureError` when a
        transaction that committed after this *pinned* snapshot already
        ended the version, :class:`~repro.engine.mvcc.WriteConflict`
        when a still-running transaction holds the claim — or when the
        claimant committed but this transaction is still pristine, so
        the statement can transparently retry on a fresh snapshot.
        """
        txn = self.txn
        with self.table.mutation_lock:
            xmax = version.xmax
            if xmax == txn.id:
                return  # already claimed by this transaction
            if xmax is not None or version.end is not None:
                if version.end is not None and not txn.pristine:
                    # The claimant committed; its stamp is necessarily
                    # above our snapshot (we could not see the version
                    # otherwise), so we lost the write-write race and
                    # our pinned snapshot cannot absorb the outcome.
                    raise errors.SerializationFailureError(
                        f"could not serialize access to table "
                        f"{self.table.name!r}: row updated by a "
                        f"concurrent transaction; retry the transaction"
                    )
                # Claimant still in flight — or already committed while
                # our snapshot is still pristine, in which case the
                # conflict wait returns immediately, the snapshot is
                # refreshed, and the statement transparently retries.
                raise WriteConflict(xmax)
            version.xmax = txn.id
        txn.claimed.add(version)

        def undo(v=version, owner=txn, store=self) -> None:
            # The mutation lock serializes every xmax check-then-set
            # (see claim above); unclaiming must hold it too so a
            # concurrent claimant never reads a half-released stamp.
            with store.table.mutation_lock:
                v.xmax = None
                owner.claimed.discard(v)

        self.log.record(undo)

    def delete(self, versions: List[RowVersion]) -> int:
        """Mark the given visible versions deleted (claim them all).

        Nothing leaves the heap or the indexes here — the versions stay
        visible to older snapshots until vacuum reclaims them after the
        deleting transaction commits.
        """
        faultpoints.trigger("storage.delete")
        for version in versions:
            self.claim(version)
        _ROWS_MUTATED.increment(len(versions))
        return len(versions)

    def replace(self, new_row: List[Any],
                precondition: Optional[Callable[[], None]] = None
                ) -> RowVersion:
        """Insert the replacement version of an UPDATE.

        The old version must already be claimed (see :meth:`claim`);
        the statement layer claims every target first so unique checks
        can recognise rows being replaced.  ``precondition`` is the
        atomic check-before-append hook, as in :meth:`insert`.
        """
        return self.insert(
            new_row, faultpoint="storage.update", precondition=precondition
        )
