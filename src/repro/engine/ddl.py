"""DDL and access-control statement execution.

CREATE TABLE / VIEW, DROP, GRANT and REVOKE are handled here.  The SQLJ
statements CREATE PROCEDURE/FUNCTION (Part 1) and CREATE TYPE (Part 2)
are dispatched by :mod:`repro.engine.database` to
:mod:`repro.procedures.registration` and
:mod:`repro.datatypes.registration`, which own their resolution rules.

Durability: DDL in this engine is non-transactional — it takes effect
immediately and creates no undo entries — so on a durable database the
session layer redo-logs each DDL statement as its own immediately
committed WAL transaction (see ``_DDL_STATEMENTS`` in
:mod:`repro.engine.database`).  Nothing in this module touches the WAL
directly; it only has to keep being replayable, i.e. driven entirely by
the statement AST and catalog state.
"""

from __future__ import annotations

from typing import Any

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Column, Table, View
from repro.engine.indexes import Index
from repro.engine.planner import plan_query
from repro.engine.virtual import VirtualTable
from repro.observability import metrics as _metrics
from repro.sqltypes import ObjectType

__all__ = [
    "execute_create_table",
    "execute_alter_table",
    "execute_create_view",
    "execute_create_index",
    "execute_drop",
    "execute_grant",
    "execute_revoke",
]

#: Catalog-changing operations executed (all kinds); complements the
#: per-kind ``statements.<kind>`` counters with one schema-churn gauge.
_DDL_OPERATIONS = _metrics.registry.counter("ddl.operations")


def execute_create_table(stmt: ast.CreateTable, session: Any) -> None:
    _DDL_OPERATIONS.increment()
    columns = []
    primary_keys = [d.name for d in stmt.columns if d.primary_key]
    if len(primary_keys) > 1:
        raise errors.SQLSyntaxError(
            f"table {stmt.name!r} declares multiple PRIMARY KEY columns"
        )
    for definition in stmt.columns:
        descriptor = session.catalog.resolve_type(definition.type_spelling)
        columns.append(
            Column(
                definition.name,
                descriptor,
                not_null=definition.not_null,
                default=definition.default,
                unique=definition.unique,
                primary_key=definition.primary_key,
            )
        )
    session.catalog.create_table(Table(stmt.name, columns, session.user))


def execute_alter_table(stmt: ast.AlterTable, session: Any) -> None:
    """ALTER TABLE ADD/DROP COLUMN.

    Adding a column back-fills existing rows with the column's DEFAULT
    (or NULL); a NOT NULL column without a default cannot be added to a
    non-empty table.  A freshly added UNIQUE column with a default only
    works on tables with at most one row, for the same reason it would
    in any SQL engine.
    """
    _DDL_OPERATIONS.increment()
    table = session.catalog.get_table(stmt.table)
    if isinstance(table, VirtualTable):
        raise table.readonly_error("alter")
    _require_ownership(session, table.owner, "TABLE", stmt.table)

    if stmt.action == "ADD":
        definition = stmt.column_def
        assert definition is not None
        descriptor = session.catalog.resolve_type(definition.type_spelling)
        column = Column(
            definition.name,
            descriptor,
            not_null=definition.not_null,
            default=definition.default,
            unique=definition.unique,
            primary_key=definition.primary_key,
        )
        fill = None
        if definition.default is not None:
            from repro.engine.expressions import (
                Env,
                ExpressionCompiler,
                RowShape,
            )

            compiler = ExpressionCompiler(RowShape([]), session)
            fill = descriptor.coerce(
                compiler.compile(definition.default).fn(
                    Env([], (), None, session)
                )
            )
        # DDL runs under the exclusive lock, so the heap is quiescent;
        # every version (even uncommitted or dead) receives the fill
        # value, which keeps old snapshots type-correct.
        if table.versions:
            if column.not_null and fill is None:
                raise errors.NotNullViolationError(
                    f"cannot add NOT NULL column {column.name!r} "
                    "without a default to a non-empty table"
                )
            if column.unique and fill is not None and len(table.versions) > 1:
                raise errors.UniqueViolationError(
                    f"adding UNIQUE column {column.name!r} with a "
                    "default would duplicate the default value"
                )
        table.add_column(column, fill)
        # Row images changed shape in place: the LSM engine must
        # invalidate the table's flushed runs (no-op otherwise).
        session.database.notify_rows_rewritten(table)
        _refresh_indexes(session, table)
        return

    assert stmt.action == "DROP"
    assert stmt.column_name is not None
    # Indexes covering the dropped column are dropped with it; the rest
    # are rebuilt because column positions shift.
    for index in list(table.indexes):
        if index.covers_column(stmt.column_name):
            session.catalog.drop_index(index.name)
    table.remove_column(stmt.column_name)
    session.database.notify_rows_rewritten(table)
    _refresh_indexes(session, table)


def _refresh_indexes(session: Any, table: Table) -> None:
    for index in table.indexes:
        index.rebuild()
    session.catalog.bump_version()


def execute_create_view(stmt: ast.CreateView, session: Any) -> None:
    _DDL_OPERATIONS.increment()
    # Plan once now to validate the query and check privileges; the plan
    # itself is rebuilt at each use so later schema changes are observed.
    plan_query(stmt.query, session)
    session.catalog.create_view(
        View(stmt.name, stmt.query, session.user, stmt.column_names)
    )


def execute_create_index(stmt: ast.CreateIndex, session: Any) -> None:
    """CREATE INDEX: validate, build from existing rows, register."""
    _DDL_OPERATIONS.increment()
    catalog = session.catalog
    table = catalog.get_table(stmt.table)
    if isinstance(table, VirtualTable):
        raise table.readonly_error("index")
    _require_ownership(session, table.owner, "TABLE", stmt.table)
    seen = set()
    for column_name in stmt.columns:
        position = table.column_position(column_name)  # raises if absent
        if column_name in seen:
            raise errors.SQLSyntaxError(
                f"column {column_name!r} listed twice in index "
                f"{stmt.name!r}"
            )
        seen.add(column_name)
        if isinstance(table.columns[position].descriptor, ObjectType):
            raise errors.FeatureNotSupportedError(
                f"cannot index object column {column_name!r}: "
                "user-defined types have no total hashable order"
            )
    catalog.create_index(Index(stmt.name, table, stmt.columns))


def execute_drop(stmt: ast.Drop, session: Any) -> None:
    _DDL_OPERATIONS.increment()
    catalog = session.catalog
    privileges = session.database.privileges
    kind = stmt.kind
    if kind == "TABLE":
        table = catalog.get_table(stmt.name)
        if isinstance(table, VirtualTable):
            raise table.readonly_error("drop")
        _require_ownership(session, table.owner, "TABLE", stmt.name)
        catalog.drop_table(stmt.name)
        privileges.drop_object("TABLE", stmt.name)
    elif kind == "VIEW":
        if stmt.name not in catalog.views:
            raise errors.UndefinedObjectError(
                f"view {stmt.name!r} does not exist"
            )
        view = catalog.views[stmt.name]
        _require_ownership(session, view.owner, "TABLE", stmt.name)
        catalog.drop_view(stmt.name)
        privileges.drop_object("TABLE", stmt.name)
    elif kind in ("PROCEDURE", "FUNCTION"):
        routine = catalog.get_routine(stmt.name)
        if routine.kind != kind:
            raise errors.UndefinedRoutineError(
                f"{stmt.name!r} is a {routine.kind.lower()}, not a "
                f"{kind.lower()}"
            )
        _require_ownership(session, routine.owner, "ROUTINE", stmt.name)
        catalog.drop_routine(stmt.name)
        privileges.drop_object("ROUTINE", stmt.name)
    elif kind == "TYPE":
        udt = catalog.get_type(stmt.name)
        _require_ownership(session, udt.owner, "DATATYPE", stmt.name)
        catalog.drop_type(stmt.name)
        privileges.drop_object("DATATYPE", stmt.name)
    elif kind == "INDEX":
        index = catalog.get_index(stmt.name)
        _require_ownership(
            session, index.table.owner, "TABLE", stmt.name
        )
        catalog.drop_index(stmt.name)
    else:  # pragma: no cover - parser restricts kinds
        raise errors.FeatureNotSupportedError(f"cannot DROP {kind}")


def _require_ownership(
    session: Any, owner: str, kind: str, name: str
) -> None:
    if session.user not in (owner, session.database.admin_user):
        raise errors.PrivilegeError(
            f"user {session.user!r} may not drop {kind.lower()} {name!r}"
        )


def _object_owner(session: Any, kind: str, name: str) -> str:
    catalog = session.catalog
    if kind == "TABLE":
        relation = catalog.get_relation(name)
        return relation.owner
    if kind == "ROUTINE":
        return catalog.get_routine(name).owner
    if kind == "DATATYPE":
        return catalog.get_type(name).owner
    if kind == "PAR":
        return catalog.get_par(name).owner
    raise errors.CatalogError(f"unknown object kind {kind!r}")


def execute_grant(stmt: ast.Grant, session: Any) -> None:
    _DDL_OPERATIONS.increment()
    owner = _object_owner(session, stmt.object_kind, stmt.object_name)
    session.database.privileges.grant(
        stmt.privilege,
        stmt.object_kind,
        stmt.object_name,
        stmt.grantees,
        grantor=session.user,
        owner=owner,
    )
    # Privileges are checked at plan time, so cached plans must not
    # outlive a privilege change.
    session.catalog.bump_version()


def execute_revoke(stmt: ast.Revoke, session: Any) -> None:
    _DDL_OPERATIONS.increment()
    owner = _object_owner(session, stmt.object_kind, stmt.object_name)
    session.database.privileges.revoke(
        stmt.privilege,
        stmt.object_kind,
        stmt.object_name,
        stmt.grantees,
        revoker=session.user,
        owner=owner,
    )
    session.catalog.bump_version()
