"""CREATE PROCEDURE / CREATE FUNCTION execution (SQLJ Part 1).

The paper: "The key role of create procedure is to define an SQL synonym
for the Java method."  Registration resolves the EXTERNAL NAME against an
installed archive (or, for convenience in tests and examples, a directly
importable Python module), validates the callable's signature against the
declared SQL signature, and records the routine in the catalog.
"""

from __future__ import annotations

import importlib
from typing import Any

from repro import errors
from repro.engine import ast
from repro.engine.catalog import Routine, RoutineParam, parse_external_name
from repro.procedures.reflection import validate_signature

__all__ = ["execute_create_routine", "resolve_external"]


def resolve_external(session: Any, external_name: str) -> Any:
    """Resolve an EXTERNAL NAME string to a Python callable.

    ``par:module.member`` resolves through the archive loader (checking
    USAGE on the archive); ``module.member`` without an archive part is
    resolved with the ordinary import machinery.
    """
    par_name, module_name, member = parse_external_name(external_name)
    if par_name is not None:
        par = session.catalog.get_par(par_name)
        session.check_usage_privilege(par)
        loader = session.database.par_loader
        return loader.resolve_member(par, module_name, member)
    if not module_name:
        raise errors.RoutineResolutionError(
            f"EXTERNAL NAME {external_name!r} has no module part"
        )
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise errors.RoutineResolutionError(
            f"cannot import module {module_name!r}: {exc}"
        ) from exc
    try:
        return getattr(module, member)
    except AttributeError:
        raise errors.RoutineResolutionError(
            f"module {module_name!r} has no attribute {member!r}"
        ) from None


def execute_create_routine(stmt: ast.CreateRoutine, session: Any) -> None:
    catalog = session.catalog

    if stmt.language not in ("PYTHON", "JAVA"):
        raise errors.FeatureNotSupportedError(
            f"LANGUAGE {stmt.language} routines are not supported"
        )
    if not stmt.external_name:
        raise errors.SQLSyntaxError(
            f"routine {stmt.name!r} requires an EXTERNAL NAME clause"
        )

    params = []
    for param in stmt.params:
        if stmt.kind == "FUNCTION" and param.mode != "IN":
            raise errors.SQLSyntaxError(
                f"function {stmt.name!r} may not declare "
                f"{param.mode} parameter {param.name!r}"
            )
        params.append(
            RoutineParam(
                param.name,
                catalog.resolve_type(param.type_spelling),
                param.mode,
            )
        )

    returns = (
        catalog.resolve_type(stmt.returns) if stmt.returns is not None
        else None
    )
    if stmt.kind == "PROCEDURE" and returns is not None:
        raise errors.SQLSyntaxError("procedures cannot declare RETURNS")
    if stmt.dynamic_result_sets and stmt.kind == "FUNCTION":
        raise errors.SQLSyntaxError(
            "functions cannot declare DYNAMIC RESULT SETS"
        )

    par_name, _module, _member = parse_external_name(stmt.external_name)
    target = resolve_external(session, stmt.external_name)

    routine = Routine(
        name=stmt.name,
        kind=stmt.kind,
        params=params,
        returns=returns,
        data_access=stmt.data_access,
        dynamic_result_sets=stmt.dynamic_result_sets,
        external_name=stmt.external_name,
        language=stmt.language,
        parameter_style=stmt.parameter_style,
        owner=session.user,
        par_name=par_name,
        callable=target,
    )
    validate_signature(routine, target)
    catalog.create_routine(routine)
