"""Asyncio TCP server multiplexing clients onto the embedded engine.

One :class:`ReproServer` owns a listening socket, a bounded thread-pool
executor for engine work (the engine is thread-safe but blocking), and
one engine :class:`~repro.engine.database.Database` per database name a
client asks for — durable via ``registry.get_or_open_durable`` when the
server is configured with a data directory.

Per client connection the server runs two coroutines:

* a **reader** that decodes frames off the socket and enqueues them.
  CANCEL frames bypass the queue and set the connection's cancel flag,
  which is how a cancel can overtake the statement it targets.
* a **worker** that drains the queue strictly in order, runs engine
  calls on the executor (never on the event loop), and writes exactly
  one response frame per request.

Graceful shutdown enqueues a drain sentinel behind every connection's
pending requests: in-flight and already-queued statements complete and
get their responses, then each session receives GOODBYE and is closed.
Connections that do not drain within the timeout are force-closed.

Statement cancellation is best-effort, as in real servers: a statement
still waiting in the queue is cancelled for certain (SQLSTATE 57014);
a statement already executing runs to completion inside the engine and
its *response* is replaced by the 57014 error.  Each EXECUTE carries a
client-assigned sequence number and CANCEL names the sequence it
targets, so a cancel that loses the race (arriving after its statement
already answered) is discarded instead of killing the next statement.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import hmac
import os
import threading
import time
from typing import Any, Dict, Optional, Tuple

from repro import errors, faultpoints
from repro.dbapi.driver import registry
from repro.observability import metrics as _metrics
from repro.observability import tracing as _tracing
from repro.server import protocol
from repro.server.protocol import (
    MSG_AUTOCOMMIT,
    MSG_CLOSE_CURSOR,
    MSG_COMMIT,
    MSG_ERROR,
    MSG_EXECUTE,
    MSG_EXECUTE_BATCH,
    MSG_FETCH,
    MSG_GOODBYE,
    MSG_HELLO,
    MSG_OK,
    MSG_PING,
    MSG_RESULT,
    MSG_ROLLBACK,
    MSG_ROWS,
    MSG_WELCOME,
)

__all__ = ["ReproServer"]

_CONNECTIONS = _metrics.registry.counter("server.connections")
_REJECTED = _metrics.registry.counter("server.rejected")
_REQUESTS = _metrics.registry.counter("server.requests")
_ERRORS = _metrics.registry.counter("server.errors")
_CANCELLED = _metrics.registry.counter("server.cancelled")
_FETCHES = _metrics.registry.counter("server.fetches")

#: Worker-queue sentinels.  _DRAIN asks the worker to finish everything
#: already queued, say GOODBYE, and exit; _CLOSE means the peer is gone.
_DRAIN = object()
_CLOSE = object()


class _ClientConnection:
    """Per-connection state shared by the reader and worker coroutines."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        session_id: int,
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.session_id = session_id
        self.session: Any = None
        self.database_name = ""
        self.queue: "asyncio.Queue[Any]" = asyncio.Queue()
        self.cancel_event = threading.Event()
        #: Sequence number the armed CANCEL targets (None = any).
        self.cancel_seq: Optional[int] = None
        self.cursors: Dict[int, Tuple[list, int]] = {}
        self.next_cursor = 1
        self.done = asyncio.Event()
        self.task: Optional[asyncio.Task] = None
        self.reader_task: Optional[asyncio.Task] = None


class ReproServer:
    """Serve one or more engine databases over TCP.

    Parameters
    ----------
    host, port:
        Listen address.  ``port=0`` binds an ephemeral port; the bound
        port is available as ``self.port`` after :meth:`start`.
    data_dir:
        When set, databases are opened durably under
        ``<data_dir>/<name>`` (WAL + checkpoints + crash recovery).
        When ``None``, databases are in-memory.
    dialect:
        Engine dialect for databases this server creates.
    max_connections:
        Hard cap on concurrent client connections; clients beyond it
        are refused with SQLSTATE 08004.
    executor_threads:
        Size of the thread pool running engine statements.  Bounds
        engine-side concurrency exactly like a connection pool's
        ``max_size`` does in-process.
    page_size:
        Rows per result page on the wire.  The first page rides on the
        RESULT frame; the remainder is fetched on demand.
    max_cursors:
        Open paged-result cursors a session may pin at once; beyond it
        the least-recently-fetched cursor is dropped, so clients that
        abandon partially read results cannot pin rows server-side
        forever.  (Well-behaved clients CLOSE_CURSOR explicitly.)
    auth_token:
        When set, clients must present the same token in HELLO.  The
        token gates the handshake only — frames are cleartext and
        carry data, not credentials; see ``docs/SERVER.md``.
    slow_query_ms:
        When set, every session this server opens logs statements
        slower than this threshold to the structured slow-query log
        (``docs/OBSERVABILITY.md``); overrides ``REPRO_SLOW_QUERY_MS``.
    durability_options:
        Passed through to ``registry.get_or_open_durable`` (e.g.
        ``group_commit_window=...``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        data_dir: Optional[str] = None,
        dialect: str = "standard",
        max_connections: int = 64,
        executor_threads: int = 8,
        page_size: int = 256,
        max_cursors: int = 64,
        auth_token: Optional[str] = None,
        slow_query_ms: Optional[float] = None,
        **durability_options: Any,
    ) -> None:
        self.host = host
        self.port = port
        self.data_dir = data_dir
        self.dialect = dialect
        self.max_connections = max_connections
        self.page_size = page_size
        self.max_cursors = max_cursors
        self.auth_token = auth_token
        #: Per-session slow-query threshold applied to every session this
        #: server opens; ``None`` falls back to ``REPRO_SLOW_QUERY_MS``.
        self.slow_query_ms = slow_query_ms
        self.durability_options = durability_options
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=executor_threads, thread_name_prefix="repro-server"
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._connections: set = set()
        #: Accepted sockets still inside the HELLO handshake; they count
        #: toward ``max_connections`` so a flood of silent pre-handshake
        #: peers cannot exceed the cap during their 30s HELLO window.
        self._pending: set = set()
        self._closing = False
        self._next_session_id = 1
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> "ReproServer":
        """Bind the listening socket (call from the event loop)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def stop(self, drain_timeout: float = 10.0) -> None:
        """Graceful shutdown: refuse new connections, drain in-flight
        requests, GOODBYE every session, then force-close stragglers."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        conns = list(self._connections)
        for conn in conns:
            conn.queue.put_nowait(_DRAIN)
        if conns:
            waits = [
                asyncio.ensure_future(conn.done.wait()) for conn in conns
            ]
            done, pending = await asyncio.wait(waits, timeout=drain_timeout)
            for fut in pending:
                fut.cancel()
            for conn in conns:
                if not conn.done.is_set() and conn.task is not None:
                    conn.task.cancel()
            await asyncio.gather(
                *(conn.done.wait() for conn in conns), return_exceptions=True
            )
        self._executor.shutdown(wait=True)

    # -- background (own event loop thread) helpers --------------------

    def start_background(self) -> "ReproServer":
        """Run this server on a dedicated event-loop thread.

        Returns once the socket is bound (``self.port`` is final).
        Intended for tests and for embedding a server in an existing
        process; the CLI uses :meth:`serve_forever` directly.
        """
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="repro-server-loop",
            daemon=True,
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(self.start(), self._loop)
        future.result(timeout=30)
        return self

    def stop_background(self, drain_timeout: float = 10.0) -> None:
        """Gracefully stop a server started with :meth:`start_background`."""
        if self._loop is None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.stop(drain_timeout), self._loop
        )
        future.result(timeout=drain_timeout + 30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self._loop.close()
        self._loop = None
        self._thread = None

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            faultpoints.trigger("net.accept")
        except Exception:
            writer.close()
            return
        session_id = self._next_session_id
        self._next_session_id += 1
        conn = _ClientConnection(reader, writer, session_id)
        conn.task = asyncio.current_task()
        try:
            if self._closing or (
                len(self._connections) + len(self._pending)
                >= self.max_connections
            ):
                _REJECTED.increment()
                await self._send(
                    conn,
                    MSG_ERROR,
                    protocol.error_payload(
                        errors.ConnectionError_(
                            "server connection limit reached"
                            if not self._closing
                            else "server is shutting down",
                            sqlstate="08004",
                        )
                    ),
                )
                return
            self._pending.add(conn)
            if not await self._handshake(conn):
                return
            self._connections.add(conn)
            self._pending.discard(conn)
            _CONNECTIONS.increment()
            _metrics.increment(f"server.{conn.database_name}.sessions")
            conn.reader_task = asyncio.ensure_future(self._read_loop(conn))
            try:
                await self._worker_loop(conn)
            finally:
                conn.reader_task.cancel()
                self._connections.discard(conn)
                _metrics.increment(
                    f"server.{conn.database_name}.sessions", -1
                )
        except asyncio.CancelledError:
            pass
        finally:
            self._pending.discard(conn)
            if conn.session is not None and not conn.session.closed:
                try:
                    await self._run_engine(conn.session.close)
                except Exception:
                    pass
            conn.cursors.clear()
            try:
                writer.close()
            except Exception:
                pass
            conn.done.set()

    async def _handshake(self, conn: _ClientConnection) -> bool:
        """Validate HELLO, open the session, answer WELCOME or ERROR."""
        try:
            msg_type, payload = await asyncio.wait_for(
                self._read_frame(conn.reader), timeout=30.0
            )
        except Exception:
            return False
        try:
            if msg_type != MSG_HELLO or not isinstance(payload, dict):
                raise errors.ProtocolError("expected HELLO")
            if payload.get("magic") != protocol.MAGIC:
                raise errors.ProtocolError("bad protocol magic")
            if payload.get("version") != protocol.PROTOCOL_VERSION:
                raise errors.ProtocolError(
                    f"unsupported protocol version "
                    f"{payload.get('version')!r} "
                    f"(server speaks {protocol.PROTOCOL_VERSION})"
                )
            if self.auth_token is not None:
                token = payload.get("auth") or ""
                if not hmac.compare_digest(str(token), self.auth_token):
                    raise errors.AuthorizationError(
                        "invalid authentication token"
                    )
            database_name = payload.get("database") or "db"
            dialect = payload.get("dialect") or self.dialect
            user = payload.get("user") or "PUBLIC"
            autocommit = bool(payload.get("autocommit", True))
            database = await self._run_engine(
                self._open_database, database_name, dialect
            )
            conn.session = await self._run_engine(
                database.create_session, user=user, autocommit=autocommit
            )
            if self.slow_query_ms is not None:
                conn.session.slow_query_ms = self.slow_query_ms
            conn.database_name = database_name
        except Exception as exc:
            _ERRORS.increment()
            await self._send(conn, MSG_ERROR, protocol.error_payload(exc))
            return False
        from repro import __version__

        await self._send(
            conn,
            MSG_WELCOME,
            {
                "server_version": __version__,
                "protocol": protocol.PROTOCOL_VERSION,
                "database": conn.database_name,
                "dialect": conn.session.dialect.name,
                "session_id": conn.session_id,
                "page_size": self.page_size,
            },
        )
        return True

    def _open_database(self, name: str, dialect: str) -> Any:
        if self.data_dir is not None:
            return registry.get_or_open_durable(
                name,
                dialect,
                os.path.join(self.data_dir, name),
                **self.durability_options,
            )
        return registry.get_or_create(name, dialect)

    # ------------------------------------------------------------------
    # Reader / worker
    # ------------------------------------------------------------------

    async def _read_loop(self, conn: _ClientConnection) -> None:
        try:
            while True:
                msg_type, payload = await self._read_frame(conn.reader)
                if msg_type == protocol.MSG_CANCEL:
                    # Out of band: overtake queued work.  The payload
                    # names the EXECUTE sequence it targets so a cancel
                    # landing after its statement already answered
                    # cannot spill onto the next unrelated statement.
                    conn.cancel_seq = (
                        payload.get("seq")
                        if isinstance(payload, dict)
                        else None
                    )
                    conn.cancel_event.set()
                elif msg_type == MSG_GOODBYE:
                    await conn.queue.put(_CLOSE)
                    return
                else:
                    await conn.queue.put((msg_type, payload))
        except asyncio.CancelledError:
            raise
        except Exception:
            # EOF, reset, torn frame: the worker shuts the session down.
            await conn.queue.put(_CLOSE)

    async def _worker_loop(self, conn: _ClientConnection) -> None:
        while True:
            item = await conn.queue.get()
            if item is _CLOSE:
                return
            if item is _DRAIN:
                await self._send(
                    conn, MSG_GOODBYE, {"reason": "server shutting down"}
                )
                return
            msg_type, payload = item
            _REQUESTS.increment()
            start = time.perf_counter()
            try:
                reply_type, reply = await self._dispatch(
                    conn, msg_type, payload
                )
            except Exception as exc:
                _ERRORS.increment()
                if (
                    isinstance(exc, errors.ReproError)
                    and exc.sqlstate == "57014"
                ):
                    _CANCELLED.increment()
                reply_type, reply = MSG_ERROR, protocol.error_payload(exc)
            _metrics.observe(
                "server.request.seconds", time.perf_counter() - start
            )
            try:
                await self._send(conn, reply_type, reply)
            except Exception:
                return  # peer is gone; _handle_client cleans up

    async def _dispatch(
        self, conn: _ClientConnection, msg_type: int, payload: Any
    ) -> Tuple[int, Any]:
        session = conn.session
        if msg_type == MSG_EXECUTE:
            return await self._do_execute(conn, payload or {})
        if msg_type == MSG_EXECUTE_BATCH:
            return await self._do_execute_batch(conn, payload or {})
        if msg_type == MSG_FETCH:
            _FETCHES.increment()
            return self._do_fetch(conn, payload or {})
        if msg_type == MSG_CLOSE_CURSOR:
            conn.cursors.pop((payload or {}).get("cursor"), None)
            return MSG_OK, {"in_txn": self._in_txn(session)}
        if msg_type == MSG_COMMIT:
            await self._run_engine(session.commit)
            return MSG_OK, {"in_txn": self._in_txn(session)}
        if msg_type == MSG_ROLLBACK:
            await self._run_engine(session.rollback)
            return MSG_OK, {"in_txn": self._in_txn(session)}
        if msg_type == MSG_AUTOCOMMIT:
            session.autocommit = bool((payload or {}).get("value", True))
            return MSG_OK, {"in_txn": self._in_txn(session)}
        if msg_type == MSG_PING:
            return MSG_OK, {"in_txn": self._in_txn(session)}
        raise errors.ProtocolError(
            f"unexpected message type "
            f"{protocol.MESSAGE_NAMES.get(msg_type, msg_type)}"
        )

    @staticmethod
    def _consume_cancel(conn: _ClientConnection, seq: Optional[int]) -> bool:
        """True when an armed CANCEL targets statement ``seq``.

        A stale cancel — one naming a statement that already answered —
        is discarded instead of cancelling the next unrelated
        statement; a cancel naming a later, still-queued statement
        stays armed until that statement reaches the worker.
        """
        if not conn.cancel_event.is_set():
            return False
        target = conn.cancel_seq
        if target is None or seq is None or target == seq:
            conn.cancel_event.clear()
            conn.cancel_seq = None
            return True
        if target < seq:
            conn.cancel_event.clear()
            conn.cancel_seq = None
        return False

    async def _do_execute(
        self, conn: _ClientConnection, payload: Dict[str, Any]
    ) -> Tuple[int, Any]:
        seq = payload.get("seq")
        if self._consume_cancel(conn, seq):
            raise errors.QueryCanceledError(
                "statement cancelled before execution"
            )
        sql = payload.get("sql", "")
        params = payload.get("params") or ()
        trace = payload.get("trace")
        start = time.perf_counter()
        tracer = _tracing.current
        if tracer.enabled:
            # Continue the client's trace: the server.execute span
            # adopts the client's span as its remote parent, and it is
            # opened *inside* the engine thread so the engine's own
            # statement/plan/execute spans nest under it — one
            # connected span tree across the wire.
            session = conn.session
            session_id = conn.session_id

            def traced_execute() -> Any:
                span = _tracing.current.span(
                    "server.execute", sql=sql, session=session_id
                )
                if isinstance(trace, dict) and trace.get("trace_id"):
                    span.set_remote_parent(
                        str(trace["trace_id"]),
                        str(trace["span_id"])
                        if trace.get("span_id") else None,
                    )
                with span:
                    return session.execute(sql, params)

            result = await self._run_engine(traced_execute)
        else:
            result = await self._run_engine(conn.session.execute, sql, params)
        _metrics.observe("server.execute.seconds", time.perf_counter() - start)
        if self._consume_cancel(conn, seq):
            # The engine finished anyway (statements are not
            # interruptible mid-flight); honour the cancel by replacing
            # the response, as real servers racing a cancel packet do.
            raise errors.QueryCanceledError("statement cancelled")
        return MSG_RESULT, self._result_payload(conn, result)

    async def _do_execute_batch(
        self, conn: _ClientConnection, payload: Dict[str, Any]
    ) -> Tuple[int, Any]:
        """One EXECUTE_BATCH frame = one engine ``execute_batch`` call.

        The whole parameter-row set arrives in a single frame, runs as
        one atomic statement in the engine (one parse, one WAL record,
        one fsync barrier), and answers with one RESULT frame carrying
        the per-row counts — a 10k-row ingest is one round trip.
        """
        seq = payload.get("seq")
        if self._consume_cancel(conn, seq):
            raise errors.QueryCanceledError(
                "statement cancelled before execution"
            )
        sql = payload.get("sql", "")
        param_rows = payload.get("params") or []
        trace = payload.get("trace")
        start = time.perf_counter()
        tracer = _tracing.current
        if tracer.enabled:
            session = conn.session
            session_id = conn.session_id

            def traced_batch() -> Any:
                span = _tracing.current.span(
                    "server.execute_batch",
                    sql=sql,
                    session=session_id,
                    batch=len(param_rows),
                )
                if isinstance(trace, dict) and trace.get("trace_id"):
                    span.set_remote_parent(
                        str(trace["trace_id"]),
                        str(trace["span_id"])
                        if trace.get("span_id") else None,
                    )
                with span:
                    return session.execute_batch(sql, param_rows)

            counts = await self._run_engine(traced_batch)
        else:
            counts = await self._run_engine(
                conn.session.execute_batch, sql, param_rows
            )
        _metrics.observe(
            "server.execute.seconds", time.perf_counter() - start
        )
        if self._consume_cancel(conn, seq):
            raise errors.QueryCanceledError("statement cancelled")
        return MSG_RESULT, {
            "kind": "update",
            "update_count": sum(counts),
            "update_counts": list(counts),
            "out_values": [],
            "result_sets": [],
            "function_value": None,
            "columns": [],
            "shape": None,
            "rows": [],
            "row_count": 0,
            "cursor": None,
            "in_txn": self._in_txn(conn.session),
        }

    def _do_fetch(
        self, conn: _ClientConnection, payload: Dict[str, Any]
    ) -> Tuple[int, Any]:
        cursor_id = payload.get("cursor")
        entry = conn.cursors.get(cursor_id)
        if entry is None:
            raise errors.InvalidCursorStateError(
                f"unknown or exhausted cursor {cursor_id!r}"
            )
        rows, position = entry
        max_rows = int(payload.get("max_rows") or self.page_size)
        page = rows[position : position + max_rows]
        position += len(page)
        del conn.cursors[cursor_id]
        if position >= len(rows):
            return MSG_ROWS, {"rows": page, "done": True}
        # Re-insert so the dict's order is least-recently-fetched first,
        # which is the eviction order when max_cursors overflows.
        conn.cursors[cursor_id] = (rows, position)
        return MSG_ROWS, {"rows": page, "done": False}

    def _result_payload(
        self, conn: _ClientConnection, result: Any
    ) -> Dict[str, Any]:
        rows = result.rows
        first_page = rows[: self.page_size]
        cursor_id = None
        if len(rows) > self.page_size:
            cursor_id = conn.next_cursor
            conn.next_cursor += 1
            conn.cursors[cursor_id] = (rows, self.page_size)
            while len(conn.cursors) > self.max_cursors:
                conn.cursors.pop(next(iter(conn.cursors)))
        return {
            "kind": result.kind,
            "update_count": result.update_count,
            "out_values": result.out_values,
            "result_sets": [
                {
                    "rows": nested.rows,
                    "shape": protocol.encode_shape(nested.shape),
                }
                for nested in result.result_sets
            ],
            "function_value": result.function_value,
            "columns": result.column_names(),
            "shape": protocol.encode_shape(result.shape),
            "rows": first_page,
            "row_count": len(rows),
            "cursor": cursor_id,
            "in_txn": self._in_txn(conn.session),
        }

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    @staticmethod
    def _in_txn(session: Any) -> bool:
        return bool(
            session is not None
            and not session.closed
            and (
                session.transaction_log.active
                or getattr(session, "_durable_txn", None) is not None
            )
        )

    async def _run_engine(self, fn, *args, **kwargs):
        loop = asyncio.get_event_loop()
        if kwargs:
            return await loop.run_in_executor(
                self._executor, lambda: fn(*args, **kwargs)
            )
        return await loop.run_in_executor(self._executor, fn, *args)

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Tuple[int, Any]:
        header = await reader.readexactly(protocol.HEADER_SIZE)
        length, msg_type = protocol.parse_header(header)
        body = await reader.readexactly(length) if length else b""
        return msg_type, protocol.decode_payload(body)

    async def _send(
        self, conn: _ClientConnection, msg_type: int, payload: Any
    ) -> None:
        try:
            data = protocol.encode_frame(msg_type, payload)
        except Exception as exc:
            # Result outside the data-only vocabulary (e.g. rows or OUT
            # values holding archive-loaded objects, which the README
            # documents as engine-local).  Degrade to a typed error
            # rather than a hung client.
            data = protocol.encode_frame(
                MSG_ERROR,
                protocol.error_payload(
                    errors.FeatureNotSupportedError(
                        f"result is not serialisable over the wire: {exc}"
                    )
                ),
            )
        sent = faultpoints.pipe("net.respond", data)
        conn.writer.write(sent)
        await conn.writer.drain()
        if sent != data:
            # The fault plan tore/garbled this response: the stream is
            # desynchronised, so drop the link the way a real
            # mid-response disconnect would.
            raise ConnectionResetError("response torn by fault injection")
