"""Par files: the Python analogue of the paper's jar files.

A par file is a zip archive whose members are Python module sources
(``module.py``, with package dots encoded as directories) plus an optional
``deployment.sqlj`` descriptor (see
:mod:`repro.procedures.descriptors`).  ``sqlj.install_par`` reads one of
these, registers every module it contains, and retains the archive keyed
by the SQL-level par name — exactly the paper's ``install_jar`` contract.
"""

from __future__ import annotations

import io
import os
import zipfile
from typing import Dict, Optional, Tuple

from repro import errors

__all__ = [
    "DESCRIPTOR_MEMBER",
    "build_par",
    "build_par_bytes",
    "read_par",
    "url_to_path",
]

#: Zip member holding the deployment descriptor.
DESCRIPTOR_MEMBER = "deployment.sqlj"


def _module_to_member(module_name: str) -> str:
    return module_name.replace(".", "/") + ".py"


def _member_to_module(member: str) -> Optional[str]:
    if not member.endswith(".py"):
        return None
    return member[: -len(".py")].replace("/", ".")


def build_par_bytes(
    modules: Dict[str, str], descriptor: Optional[str] = None
) -> bytes:
    """Build a par archive in memory.

    ``modules`` maps dotted module names to Python source text.
    """
    if not modules:
        raise errors.ParInstallationError(
            "a par archive must contain at least one module"
        )
    buffer = io.BytesIO()
    with zipfile.ZipFile(buffer, "w", zipfile.ZIP_DEFLATED) as archive:
        for module_name in sorted(modules):
            archive.writestr(
                _module_to_member(module_name), modules[module_name]
            )
        if descriptor is not None:
            archive.writestr(DESCRIPTOR_MEMBER, descriptor)
    return buffer.getvalue()


def build_par(
    path: str, modules: Dict[str, str], descriptor: Optional[str] = None
) -> str:
    """Write a par archive to ``path`` and return the path."""
    payload = build_par_bytes(modules, descriptor)
    with open(path, "wb") as handle:
        handle.write(payload)
    return path


def url_to_path(url: str) -> str:
    """Resolve the paper's ``file:~/classes/routines1.jar`` style URLs."""
    if url.startswith("file://"):
        url = url[len("file://"):]
    elif url.startswith("file:"):
        url = url[len("file:"):]
    return os.path.expanduser(url)


def read_par(source) -> Tuple[Dict[str, str], Optional[str]]:
    """Read a par archive from a path/URL/bytes.

    Returns ``(modules, descriptor)`` where modules maps dotted module
    names to source text.
    """
    if isinstance(source, (bytes, bytearray)):
        handle = io.BytesIO(bytes(source))
    else:
        path = url_to_path(str(source))
        if not os.path.exists(path):
            raise errors.ParInstallationError(
                f"archive {source!r} does not exist"
            )
        handle = open(path, "rb")

    try:
        with zipfile.ZipFile(handle) as archive:
            modules: Dict[str, str] = {}
            descriptor: Optional[str] = None
            for member in archive.namelist():
                if member.endswith("/"):
                    continue
                if member == DESCRIPTOR_MEMBER:
                    descriptor = archive.read(member).decode("utf-8")
                    continue
                module_name = _member_to_module(member)
                if module_name is None:
                    continue  # ignore non-module payload
                modules[module_name] = archive.read(member).decode("utf-8")
    except zipfile.BadZipFile:
        raise errors.ParInstallationError(
            f"{source!r} is not a valid par archive"
        ) from None
    finally:
        handle.close()

    if not modules:
        raise errors.ParInstallationError(
            f"archive {source!r} contains no Python modules"
        )
    return modules, descriptor
