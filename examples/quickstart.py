"""Quickstart: embedded SQL (SQLJ Part 0) end to end.

Writes a small ``.psqlj`` program, translates it (with ahead-of-time
checking against an exemplar schema), loads the generated module, and
runs it through a connection context — the complete pipeline from the
paper's "SQLJ compilation phases" slides, in one script.

Run:  python examples/quickstart.py
"""

import importlib
import os
import sys
import tempfile

from repro import Database
from repro.profiles.serialization import save_profile
from repro import ConnectionContext
from repro.translator import TranslationOptions, Translator

# An embedded-SQL program: Python plus #sql clauses.  Host variables are
# ':name'; iterator variables are typed with ordinary annotations.
PROGRAM = """
#sql iterator ByPos (str, int);
#sql public iterator ByName (int year, str name);

def add_person(name, year):
    #sql { INSERT INTO people VALUES (:name, :year) };
    pass

def list_positional():
    out = []
    positer: ByPos
    #sql positer = { SELECT name, year FROM people ORDER BY year };
    name = None
    year = 0
    while True:
        #sql { FETCH :positer INTO :name, :year };
        if positer.endfetch():
            break
        out.append((name, year))
    positer.close()
    return out

def list_named():
    out = []
    namiter: ByName
    #sql namiter = { SELECT name, year FROM people ORDER BY year };
    while namiter.next():
        out.append((namiter.name(), namiter.year()))
    namiter.close()
    return out
"""


def main():
    # 1. The database (stands in for any JDBC-reachable DBMS) and the
    #    exemplar schema the translator checks against.
    database = Database(name="quickstart")
    session = database.create_session(autocommit=True)
    session.execute(
        "create table people (name varchar(50), year integer)"
    )

    # 2. Translate.  Errors in the SQL would be reported *now*, not when
    #    the program runs.
    with tempfile.TemporaryDirectory() as workdir:
        source_path = os.path.join(workdir, "peoplesample.psqlj")
        with open(source_path, "w") as handle:
            handle.write(PROGRAM)
        translator = Translator(TranslationOptions(exemplar=database))
        result = translator.translate_file(source_path)
        print(f"translated -> {os.path.basename(result.module_path)}")
        for profile in result.profiles:
            print(f"profile {profile.name}:")
            for entry in profile.data:
                print(f"  {entry.describe()}")

        # 3. Import the generated module and run it.
        ConnectionContext.set_default_context(
            ConnectionContext(database)
        )
        sys.path.insert(0, workdir)
        try:
            module = importlib.import_module("peoplesample")
        finally:
            sys.path.remove(workdir)

        module.add_person("Ada", 1843)
        module.add_person("Grace", 1906)
        module.add_person("Barbara", 1928)

        print("positional iterator:", module.list_positional())
        print("named iterator:     ", module.list_named())


if __name__ == "__main__":
    main()
