"""Durability subsystem tests: WAL framing, group commit, checkpointing,
crash recovery, and the fault-injection crash matrix.

The crash matrix is differential: a deterministic workload runs against
a durable database with one seeded fault injected somewhere in the
write/fsync/checkpoint path, the process "crashes" (the database object
is abandoned without ``close()``), and recovery must yield *exactly* the
state after some statement prefix no shorter than what the client saw
acknowledged — no lost acked commits, no half-applied statements, no
resurrection of rolled-back work.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import errors
from repro.engine.durability import (
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    DurabilityManager,
    open_database,
)
from repro.engine.wal import (
    KIND_ABORT,
    KIND_COMMIT,
    KIND_STATEMENT,
    WalRecord,
    WriteAheadLog,
    encode_record,
    scan_records,
)
from repro.observability import metrics as _metrics
from repro.testing.faults import FaultPlan


def crash(database):
    """Simulate kill -9 before abandoning ``database``.

    A real crash takes background threads down with the process; in
    the test process the LSM store's compaction daemon would survive
    the ``del`` and keep rewriting the directory while recovery reads
    it — which models two live processes owning one data directory,
    explicitly unsupported.  Halting the daemon (its manifest installs
    are atomic, so stopping after any one of them is crash-shaped)
    restores the single-owner premise for the reopen."""
    store = getattr(database, "lsm_store", None)
    if store is not None:
        store.close()


def table_state(database, table="t"):
    """``{k: v}`` snapshot of a two-int-column table."""
    session = database.create_session(autocommit=True)
    try:
        result = session.execute(f"SELECT k, v FROM {table}")
        return {row[0]: row[1] for row in result.rows}
    finally:
        session.close()


@pytest.fixture(params=["snapshot", "lsm"])
def storage(request):
    """Run recovery-sensitive tests against both storage engines.

    Only the *first* open needs the flag — an initialised directory
    dictates its own engine on every reopen, which is itself part of
    the contract under test."""
    return request.param


# ---------------------------------------------------------------------------
# WAL framing
# ---------------------------------------------------------------------------
class TestWalFraming:
    def test_roundtrip(self, tmp_path):
        path = os.path.join(str(tmp_path), "wal.log")
        wal = WriteAheadLog(path, sync=True)
        records = [
            WalRecord(1, KIND_STATEMENT, 1, ("dba", "INSERT ...", (1,))),
            WalRecord(2, KIND_COMMIT, 1, None),
            WalRecord(3, KIND_STATEMENT, 2, ("dba", "DELETE ...", ())),
            WalRecord(4, KIND_ABORT, 2, None),
        ]
        positions = [wal.append(r) for r in records]
        wal.sync_to(positions[-1])
        wal.close()

        with open(path, "rb") as fh:
            data = fh.read()
        decoded, valid = scan_records(data)
        assert valid == len(data)
        assert [r.as_tuple() for r in decoded] == \
            [r.as_tuple() for r in records]

    def test_torn_tail_is_detected(self, tmp_path):
        path = os.path.join(str(tmp_path), "wal.log")
        good = encode_record(WalRecord(1, KIND_COMMIT, 1, None))
        torn = encode_record(
            WalRecord(2, KIND_STATEMENT, 2, ("u", "X", ()))
        )[:-3]
        with open(path, "wb") as fh:
            fh.write(good + torn)
        with open(path, "rb") as fh:
            records, valid = scan_records(fh.read())
        assert len(records) == 1
        assert valid == len(good)

    def test_corrupt_crc_stops_scan(self, tmp_path):
        good = encode_record(WalRecord(1, KIND_COMMIT, 1, None))
        bad = bytearray(
            encode_record(WalRecord(2, KIND_COMMIT, 2, None))
        )
        bad[-1] ^= 0xFF  # flip a payload byte: CRC mismatch
        records, valid = scan_records(good + bytes(bad))
        assert len(records) == 1
        assert valid == len(good)

    def test_unpicklable_payload_raises(self, tmp_path):
        unpicklable = lambda: None  # noqa: E731 - local funcs can't pickle
        record = WalRecord(1, KIND_STATEMENT, 1, ("u", "X", (unpicklable,)))
        with pytest.raises(errors.ReproError):
            encode_record(record)


# ---------------------------------------------------------------------------
# Basic recovery
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_committed_work_survives_reopen(self, tmp_path, storage):
        d = str(tmp_path)
        db = open_database(d, name="recov", storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("INSERT INTO t VALUES (2, 20)")
        s.close()
        db.close()

        db2 = open_database(d)
        assert db2.name == "recov"
        assert table_state(db2) == {1: 10, 2: 20}
        db2.close()

    def test_uncommitted_txn_discarded_on_crash(self, tmp_path, storage):
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.autocommit = False
        s.execute("INSERT INTO t VALUES (2, 20)")  # never committed
        # Crash: abandon without close/commit.
        crash(db)
        del s, db

        db2 = open_database(d)
        assert table_state(db2) == {1: 10}
        db2.close()

    def test_rolled_back_txn_not_replayed(self, tmp_path, storage):
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.autocommit = False
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.rollback()
        s.execute("INSERT INTO t VALUES (2, 20)")
        s.commit()
        crash(db)
        del s, db  # crash before checkpoint: state comes from the WAL

        db2 = open_database(d)
        assert table_state(db2) == {2: 20}
        db2.close()

    def test_ddl_is_durable_without_explicit_commit(
        self, tmp_path, storage
    ):
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=False)  # even in a txn session
        s.execute("CREATE TABLE t (k INT, v INT)")
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        assert table_state(db2) == {}
        db2.close()

    def test_savepoints_replay(self, tmp_path, storage):
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.autocommit = False
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.execute("SAVEPOINT sp1")
        s.execute("INSERT INTO t VALUES (2, 20)")
        s.execute("ROLLBACK TO SAVEPOINT sp1")
        s.execute("INSERT INTO t VALUES (3, 30)")
        s.commit()
        crash(db)
        del s, db  # crash; recovery replays the savepoint dance

        db2 = open_database(d)
        assert table_state(db2) == {1: 10, 3: 30}
        db2.close()

    def test_indexes_rebuilt_consistently(self, tmp_path, storage):
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("CREATE INDEX t_k ON t (k)")
        for i in range(8):
            s.execute(f"INSERT INTO t VALUES ({i}, {i * 10})")
        s.execute("DELETE FROM t WHERE k = 3")
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        table = db2.catalog.tables["t"]
        for index in table.indexes:
            index.verify_against_heap()  # raises on divergence
        s2 = db2.create_session(autocommit=True)
        plan = s2.execute("EXPLAIN SELECT v FROM t WHERE k = 5")
        assert "IndexScan" in "\n".join(
            " ".join(str(c) for c in row) for row in plan.rows
        )
        s2.close()
        db2.close()

    def test_recovery_metrics_flow(self, tmp_path):
        d = str(tmp_path)
        db = open_database(d)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        crash(db)
        del s, db  # crash with WAL content pending

        before = _metrics.snapshot()["counters"]
        db2 = open_database(d)
        after = _metrics.snapshot()["counters"]
        assert after["wal.recoveries"] == before.get("wal.recoveries", 0) + 1
        assert after["wal.recovered_txns"] >= \
            before.get("wal.recovered_txns", 0) + 1
        hist = _metrics.snapshot()["histograms"]
        assert hist["wal.recovery.seconds"]["count"] >= 1
        db2.close()


# ---------------------------------------------------------------------------
# Checkpointing
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_checkpoint_folds_and_truncates(self, tmp_path):
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        wal_path = os.path.join(d, WAL_FILENAME)
        assert os.path.getsize(wal_path) > 0
        assert db.checkpoint() is True
        assert os.path.getsize(wal_path) == 0
        assert os.path.getsize(os.path.join(d, SNAPSHOT_FILENAME)) > 0
        # State must come entirely from the snapshot now.
        crash(db)
        del s, db
        db2 = open_database(d)
        assert table_state(db2) == {1: 10}
        db2.close()

    def test_checkpoint_skipped_while_txn_active(self, tmp_path):
        db = open_database(str(tmp_path), checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.autocommit = False
        s.execute("INSERT INTO t VALUES (1, 10)")
        assert db.checkpoint() is False  # quiesce requirement
        s.commit()
        assert db.checkpoint() is True
        s.close()
        db.close()

    def test_automatic_checkpoint_interval(self, tmp_path):
        before = _metrics.snapshot()["counters"].get("wal.checkpoints", 0)
        db = open_database(str(tmp_path), checkpoint_interval=2)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        for i in range(6):
            s.execute(f"INSERT INTO t VALUES ({i}, {i})")
        after = _metrics.snapshot()["counters"]["wal.checkpoints"]
        assert after >= before + 3
        s.close()
        db.close()

    def test_crash_between_install_and_truncate(self, tmp_path):
        """Snapshot installed but WAL not yet truncated: replay must be
        idempotent (records at or below the snapshot's last_seq skipped)."""
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        plan = FaultPlan(seed=3)
        plan.inject(
            "wal.checkpoint.install",
            error=errors.OperatorExecutionError,
            times=1,
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.checkpoint()
        assert plan.fired["wal.checkpoint.install"] == 1
        # Snapshot exists AND the WAL still holds the same transactions.
        assert os.path.getsize(os.path.join(d, SNAPSHOT_FILENAME)) > 0
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) > 0
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        assert table_state(db2) == {1: 10}  # applied once, not twice
        db2.close()


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------
class TestGroupCommit:
    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        db = open_database(
            str(tmp_path), group_window=0.02, group_size=8
        )
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.close()

        before = _metrics.snapshot()["counters"]
        n_threads, per_thread = 8, 4
        errors_seen = []

        def worker(tid):
            try:
                ws = db.create_session(autocommit=True)
                for j in range(per_thread):
                    ws.execute(
                        f"INSERT INTO t VALUES ({tid * 100 + j}, {j})"
                    )
                ws.close()
            except Exception as exc:  # pragma: no cover - surfaced below
                errors_seen.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,))
            for t in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors_seen
        after = _metrics.snapshot()["counters"]
        commits = after["wal.commits"] - before.get("wal.commits", 0)
        fsyncs = after["wal.fsyncs"] - before.get("wal.fsyncs", 0)
        assert commits == n_threads * per_thread
        # Group commit must have batched at least some of them.
        assert fsyncs < commits
        assert table_state(db) and len(table_state(db)) == commits
        db.close()

    def test_single_threaded_still_durable(self, tmp_path):
        d = str(tmp_path)
        db = open_database(d, group_window=0.005, group_size=4)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 1)")
        crash(db)
        del s, db  # crash right after the acked insert

        db2 = open_database(d)
        assert table_state(db2) == {1: 1}
        db2.close()


# ---------------------------------------------------------------------------
# Crash matrix
# ---------------------------------------------------------------------------
# Deterministic workload over t(k, v): inserts with periodic updates and
# deletes, so every redo record kind and both index maintenance paths
# are exercised.
def _workload_statements(n=12):
    statements = []
    for i in range(n):
        if i % 4 == 3:
            statements.append(
                f"UPDATE t SET v = v + 100 WHERE k = {i - 1}"
            )
        elif i % 5 == 4:
            statements.append(f"DELETE FROM t WHERE k = {i - 2}")
        else:
            statements.append(f"INSERT INTO t VALUES ({i}, {i})")
    return statements


def _shadow_states(statements):
    """State after each statement prefix: list of dicts, index = #applied."""
    states = [{}]
    state = {}
    for sql in statements:
        parts = sql.split()
        if parts[0] == "INSERT":
            k = int(sql.split("(")[1].split(",")[0])
            v = int(sql.split(",")[1].strip(" )"))
            state[k] = v
        elif parts[0] == "UPDATE":
            k = int(parts[-1])
            if k in state:
                state[k] += 100
        else:  # DELETE
            k = int(parts[-1])
            state.pop(k, None)
        states.append(dict(state))
    return states


CRASH_SITES = [
    "storage.insert",
    "storage.update",
    "storage.delete",
    # MVCC commit window: the stamp is allocated (writes visible
    # in-process) but the WAL commit marker was never appended, so the
    # transaction must vanish on recovery.
    "mvcc.commit",
    "wal.append",
    "wal.written",
    "wal.fsync",
    "wal.checkpoint",
    "wal.checkpoint.install",
]

#: The LSM engine dispatches checkpoints to memtable flushes, so the
#: checkpoint crash windows move to the equivalent flush faultpoints
#: (manifest installed / WAL not yet truncated, and the pre-write
#: window); everything else is engine-independent.
LSM_SITE_MAP = {
    "wal.checkpoint": "lsm.flush",
    "wal.checkpoint.install": "lsm.flush.install",
}


class TestCrashMatrix:
    @pytest.mark.parametrize("site", CRASH_SITES)
    @pytest.mark.parametrize("after", [0, 2, 5])
    def test_recovery_yields_exact_committed_prefix(
        self, tmp_path, site, after, storage
    ):
        d = str(tmp_path)
        statements = _workload_statements()
        states = _shadow_states(statements)
        if storage == "lsm":
            site = LSM_SITE_MAP.get(site, site)

        db = open_database(d, checkpoint_interval=3, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("CREATE INDEX t_k ON t (k)")

        plan = FaultPlan(seed=after + 1)
        plan.inject(
            site, error=errors.OperatorExecutionError,
            after=after, times=1,
        )
        acked = 0
        attempted = 0
        with plan.armed():
            for sql in statements:
                attempted += 1
                try:
                    s.execute(sql)
                except errors.ReproError:
                    break  # crash point: abandon everything
                acked += 1
        crash(db)
        del s, db  # crash: no close, no final checkpoint

        db2 = open_database(d)
        recovered = table_state(db2)
        # Exactly some committed prefix, at least everything acked.
        matching = [
            j for j in range(acked, attempted + 1)
            if j < len(states) and states[j] == recovered
        ]
        assert matching, (
            f"site={site} after={after}: recovered state {recovered!r} "
            f"matches no statement prefix >= acked={acked} "
            f"(attempted={attempted})"
        )
        # Index structures must agree with the recovered heap.
        for index in db2.catalog.tables["t"].indexes:
            index.verify_against_heap()
        db2.close()

    @pytest.mark.parametrize("after", [0, 1])
    def test_crash_mid_vacuum_is_recovery_neutral(
        self, tmp_path, after, storage
    ):
        """Vacuum is not WAL-logged, so a crash when only *some* tables
        were reclaimed (``after=1``: the fault fires on the second
        table) must recover the exact committed state regardless."""
        d = str(tmp_path)
        statements = _workload_statements()
        expected = _shadow_states(statements)[-1]

        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("CREATE INDEX t_k ON t (k)")
        s.execute("CREATE TABLE side (k INT, v INT)")
        for sql in statements:
            s.execute(sql)
        s.execute("INSERT INTO side VALUES (1, 1)")
        s.execute("DELETE FROM side WHERE k = 1")

        plan = FaultPlan(seed=after + 11)
        plan.inject(
            "storage.vacuum", error=errors.OperatorExecutionError,
            after=after, times=1,
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                db.vacuum()
        assert plan.fired["storage.vacuum"] == 1
        crash(db)
        del s, db  # crash: no close, no final checkpoint

        db2 = open_database(d)
        assert table_state(db2) == expected
        assert table_state(db2, "side") == {}
        for index in db2.catalog.tables["t"].indexes:
            index.verify_against_heap()
        # The next vacuum pass finishes the job.
        db2.vacuum()
        assert table_state(db2) == expected
        for index in db2.catalog.tables["t"].indexes:
            index.verify_against_heap()
        db2.close()

    def test_commit_window_crash_discards_stamped_txn(
        self, tmp_path, storage
    ):
        """A crash after commit-stamp allocation but before the WAL
        marker append (the ``mvcc.commit`` window) loses the
        transaction: it was never acknowledged, and recovery must
        replay exactly the prefix *without* it."""
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=False)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.commit()

        s.execute("INSERT INTO t VALUES (2, 20)")
        plan = FaultPlan(seed=5)
        plan.inject(
            "mvcc.commit", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                s.commit()
        crash(db)
        del s, db  # crash

        db2 = open_database(d)
        assert table_state(db2) == {1: 10}
        db2.close()

    def test_torn_write_truncated_and_prefix_preserved(
        self, tmp_path, storage
    ):
        """A corrupted frame at crash time is a torn write: recovery
        truncates it and keeps every earlier committed transaction."""
        d = str(tmp_path)
        db = open_database(d, storage=storage)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")

        plan = FaultPlan(seed=9)
        plan.inject(
            "wal.write",
            corrupt=lambda b: b[: max(1, len(b) // 2)],
            times=1,
        )
        # The torn write is a crash: the same statement must not ack.
        plan.inject(
            "wal.written", error=errors.OperatorExecutionError, times=1
        )
        with plan.armed():
            with pytest.raises(errors.ReproError):
                s.execute("INSERT INTO t VALUES (2, 20)")
        assert plan.fired["wal.write"] == 1
        crash(db)
        del s, db  # crash

        before = _metrics.snapshot()["counters"].get(
            "wal.discarded_txns", 0
        )
        db2 = open_database(d)
        assert table_state(db2) == {1: 10}
        assert _metrics.snapshot()["counters"]["wal.discarded_txns"] \
            >= before
        db2.close()


# ---------------------------------------------------------------------------
# DurabilityManager lifecycle
# ---------------------------------------------------------------------------
class TestLifecycle:
    def test_close_checkpoints_and_closes_wal(self, tmp_path):
        d = str(tmp_path)
        db = open_database(d, checkpoint_interval=0)
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT, v INT)")
        s.execute("INSERT INTO t VALUES (1, 10)")
        s.close()
        manager = db.durability
        assert isinstance(manager, DurabilityManager)
        db.close()
        assert manager.closed
        assert os.path.getsize(os.path.join(d, WAL_FILENAME)) == 0

    def test_nondurable_database_unaffected(self):
        from repro import Database

        db = Database(name="plain")
        assert db.durability is None
        assert db.checkpoint() is False
        s = db.create_session(autocommit=True)
        s.execute("CREATE TABLE t (k INT)")
        s.execute("INSERT INTO t VALUES (1)")
        assert s.execute("SELECT k FROM t").rows == [[1]]
        s.close()
        db.close()
