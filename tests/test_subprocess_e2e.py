"""Process-level end-to-end: a translated binary deployed and run in a
*fresh* Python interpreter.

The paper's deployment model separates translation (developer machine)
from execution (any machine with a JDBC driver).  This test enforces
that separation literally: the pjar produced here is unpacked and
imported by a subprocess that never saw the translator."""

import subprocess
import sys
import textwrap

import pytest

from repro import Database
from repro.profiles.customizer import customize_pjar
from repro.profiles.pjar import unpack_pjar
from repro.translator import TranslationOptions, Translator

PROGRAM = """
#sql iterator Earners (str name, float sales);
#sql context Payroll;

def top(ctx, threshold):
    out = []
    it: Earners
    #sql [ctx] it = { SELECT name, sales FROM emps
                      WHERE sales > :threshold
                      ORDER BY sales DESC LIMIT 2 };
    while it.next():
        out.append((it.name(), it.sales()))
    it.close()
    return out
"""

RUNNER = """
import sys
sys.path.insert(0, {deploy_dir!r})

from repro import Database

database = Database(name="runner", dialect={dialect!r})
session = database.create_session(autocommit=True)
session.execute(
    "create table emps (name varchar(50), sales decimal(6,2))")
session.execute(
    "insert into emps values ('A', 10), ('B', 30), ('C', 20)")

import earners
ctx = earners.Payroll(database)
print(earners.top(ctx, 5))
"""


@pytest.mark.parametrize("dialect", ["standard", "acme", "zenith"])
def test_translated_binary_runs_in_fresh_interpreter(tmp_path, dialect):
    exemplar = Database(name="exemplar")
    exemplar.create_session(autocommit=True).execute(
        "create table emps (name varchar(50), sales decimal(6,2))"
    )
    source_path = tmp_path / "earners.psqlj"
    source_path.write_text(PROGRAM)
    translator = Translator(TranslationOptions(exemplar=exemplar))
    result = translator.translate_file(
        str(source_path), output_dir=str(tmp_path / "build"),
        package=True,
    )
    customize_pjar(result.pjar_path, ["standard", "acme", "zenith"])
    deploy_dir = tmp_path / f"deploy_{dialect}"
    unpack_pjar(result.pjar_path, str(deploy_dir))

    script = RUNNER.format(deploy_dir=str(deploy_dir), dialect=dialect)
    completed = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip() == "[('B', 30.0), ('C', 20.0)]"
