"""Rendering AST back to SQL text, dialect-aware.

Used by profile customizers to show (and test) the vendor-specific SQL a
customization produces — e.g. the standard dialect's ``LIMIT n`` becomes
``SELECT TOP n`` for the acme dialect and ``FETCH FIRST n ROWS ONLY`` for
zenith, and ``||`` concatenation becomes ``+`` where required — and by
the durability layer (:mod:`repro.engine.durability`) as the fallback
source of redo-log SQL text when a statement arrives as a bare AST
(profile-driven execution), which is why DDL and savepoint statements
render too.
"""

from __future__ import annotations

from decimal import Decimal
from typing import List

from repro import errors
from repro.engine import ast
from repro.engine.dialects import STANDARD, Dialect

__all__ = ["render_statement", "render_expression"]


class _Renderer:
    def __init__(self, dialect: Dialect) -> None:
        self.dialect = dialect

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def statement(self, node: ast.Statement) -> str:
        if isinstance(node, ast.Select):
            return self.select(node)
        if isinstance(node, ast.SetOperation):
            return self.set_operation(node)
        if isinstance(node, ast.Insert):
            return self.insert(node)
        if isinstance(node, ast.Update):
            return self.update(node)
        if isinstance(node, ast.Delete):
            return self.delete(node)
        if isinstance(node, ast.Call):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"CALL {node.procedure}({args})"
        if isinstance(node, ast.Analyze):
            if node.table:
                return f"ANALYZE {node.table}"
            return "ANALYZE"
        if isinstance(node, ast.Commit):
            return "COMMIT"
        if isinstance(node, ast.Rollback):
            return "ROLLBACK"
        if isinstance(node, ast.CreateTable):
            columns = ", ".join(
                self.column_def(c) for c in node.columns
            )
            return f"CREATE TABLE {node.name} ({columns})"
        if isinstance(node, ast.CreateView):
            text = f"CREATE VIEW {node.name}"
            if node.column_names:
                text += f" ({', '.join(node.column_names)})"
            return f"{text} AS {self.query(node.query)}"
        if isinstance(node, ast.AlterTable):
            if node.action == "ADD":
                return (
                    f"ALTER TABLE {node.table} ADD COLUMN "
                    f"{self.column_def(node.column_def)}"
                )
            return (
                f"ALTER TABLE {node.table} DROP COLUMN "
                f"{node.column_name}"
            )
        if isinstance(node, ast.CreateIndex):
            columns = ", ".join(node.columns)
            return (
                f"CREATE INDEX {node.name} ON {node.table} ({columns})"
            )
        if isinstance(node, ast.Drop):
            exists = "IF EXISTS " if node.if_exists else ""
            return f"DROP {node.kind} {exists}{node.name}"
        if isinstance(node, ast.Grant):
            grantees = ", ".join(node.grantees)
            return (
                f"GRANT {node.privilege} ON {node.object_name} "
                f"TO {grantees}"
            )
        if isinstance(node, ast.Revoke):
            grantees = ", ".join(node.grantees)
            return (
                f"REVOKE {node.privilege} ON {node.object_name} "
                f"FROM {grantees}"
            )
        if isinstance(node, ast.Savepoint):
            return f"SAVEPOINT {node.name}"
        if isinstance(node, ast.RollbackTo):
            return f"ROLLBACK TO SAVEPOINT {node.name}"
        if isinstance(node, ast.ReleaseSavepoint):
            return f"RELEASE SAVEPOINT {node.name}"
        raise errors.FeatureNotSupportedError(
            f"cannot render {type(node).__name__}"
        )

    def column_def(self, definition: ast.ColumnDef) -> str:
        parts = [definition.name, definition.type_spelling]
        if definition.default is not None:
            parts.append(f"DEFAULT {self.expr(definition.default)}")
        if definition.not_null:
            parts.append("NOT NULL")
        if definition.primary_key:
            parts.append("PRIMARY KEY")
        elif definition.unique:
            parts.append("UNIQUE")
        return " ".join(parts)

    def select(self, node: ast.Select) -> str:
        parts: List[str] = ["SELECT"]
        if node.distinct:
            parts.append("DISTINCT")
        if node.limit is not None and self.dialect.limit_style == "top":
            parts.append(f"TOP {self.expr(node.limit)}")
        parts.append(", ".join(self.select_item(i) for i in node.items))
        if node.from_clause:
            parts.append("FROM")
            parts.append(
                ", ".join(self.table_ref(t) for t in node.from_clause)
            )
        if node.where is not None:
            parts.append(f"WHERE {self.expr(node.where)}")
        if node.group_by:
            parts.append(
                "GROUP BY " + ", ".join(self.expr(g) for g in node.group_by)
            )
        if node.having is not None:
            parts.append(f"HAVING {self.expr(node.having)}")
        if node.order_by:
            parts.append(
                "ORDER BY " + ", ".join(
                    self.order_item(o) for o in node.order_by
                )
            )
        if node.limit is not None:
            style = self.dialect.limit_style
            if style == "limit":
                parts.append(f"LIMIT {self.expr(node.limit)}")
                if node.offset is not None:
                    parts.append(f"OFFSET {self.expr(node.offset)}")
            elif style == "fetch_first":
                parts.append(
                    f"FETCH FIRST {self.expr(node.limit)} ROWS ONLY"
                )
            # "top" already emitted
        elif node.offset is not None:
            raise errors.FeatureNotSupportedError(
                "OFFSET without LIMIT cannot be rendered"
            )
        return " ".join(parts)

    def set_operation(self, node: ast.SetOperation) -> str:
        keyword = node.op + (" ALL" if node.all else "")
        text = (
            f"{self.query(node.left)} {keyword} {self.query(node.right)}"
        )
        if node.order_by:
            text += " ORDER BY " + ", ".join(
                self.order_item(o) for o in node.order_by
            )
        return text

    def query(self, node: ast.QueryExpr) -> str:
        if isinstance(node, ast.SetOperation):
            return f"({self.set_operation(node)})"
        return self.select(node)

    def select_item(self, item: ast.Node) -> str:
        if isinstance(item, ast.StarItem):
            return f"{item.table}.*" if item.table else "*"
        assert isinstance(item, ast.SelectItem)
        text = self.expr(item.expression)
        if item.alias:
            text += f" AS {item.alias}"
        return text

    def order_item(self, item: ast.OrderItem) -> str:
        return self.expr(item.expression) + (
            "" if item.ascending else " DESC"
        )

    def table_ref(self, ref: ast.TableRef) -> str:
        if isinstance(ref, ast.TableName):
            return ref.name + (f" {ref.alias}" if ref.alias else "")
        if isinstance(ref, ast.SubqueryRef):
            return f"({self.query(ref.query)}) AS {ref.alias}"
        if isinstance(ref, ast.Join):
            left = self.table_ref(ref.left)
            right = self.table_ref(ref.right)
            if ref.kind == "CROSS":
                return f"{left} CROSS JOIN {right}"
            keyword = {
                "INNER": "JOIN",
                "LEFT": "LEFT OUTER JOIN",
                "RIGHT": "RIGHT OUTER JOIN",
                "FULL": "FULL OUTER JOIN",
            }[ref.kind]
            condition = (
                f" ON {self.expr(ref.condition)}" if ref.condition else ""
            )
            return f"{left} {keyword} {right}{condition}"
        raise errors.FeatureNotSupportedError(
            f"cannot render table ref {type(ref).__name__}"
        )

    def insert(self, node: ast.Insert) -> str:
        text = f"INSERT INTO {node.table}"
        if node.columns:
            text += f" ({', '.join(node.columns)})"
        if isinstance(node.source, ast.ValuesSource):
            rows = ", ".join(
                "(" + ", ".join(self.expr(v) for v in row) + ")"
                for row in node.source.rows
            )
            return f"{text} VALUES {rows}"
        return f"{text} {self.query(node.source)}"

    def update(self, node: ast.Update) -> str:
        assignments = []
        for assignment in node.assignments:
            if isinstance(assignment.target, str):
                target = assignment.target
            else:
                target = assignment.target.column + "".join(
                    f">>{a}" for a in assignment.target.attributes
                )
            assignments.append(f"{target} = {self.expr(assignment.value)}")
        text = f"UPDATE {node.table} SET {', '.join(assignments)}"
        if node.where is not None:
            text += f" WHERE {self.expr(node.where)}"
        return text

    def delete(self, node: ast.Delete) -> str:
        text = f"DELETE FROM {node.table}"
        if node.where is not None:
            text += f" WHERE {self.expr(node.where)}"
        return text

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------
    def expr(self, node: ast.Expression) -> str:
        if isinstance(node, ast.Literal):
            return self.literal(node.value)
        if isinstance(node, ast.ColumnRef):
            return node.display()
        if isinstance(node, ast.Parameter):
            return "?"
        if isinstance(node, ast.Unary):
            if node.op == "NOT":
                return f"NOT ({self.expr(node.operand)})"
            return f"{node.op}({self.expr(node.operand)})"
        if isinstance(node, ast.Binary):
            return self.binary(node)
        if isinstance(node, ast.IsNull):
            keyword = "IS NOT NULL" if node.negated else "IS NULL"
            return f"{self.expr(node.operand)} {keyword}"
        if isinstance(node, ast.Between):
            keyword = "NOT BETWEEN" if node.negated else "BETWEEN"
            return (
                f"{self.expr(node.operand)} {keyword} "
                f"{self.expr(node.low)} AND {self.expr(node.high)}"
            )
        if isinstance(node, ast.InList):
            keyword = "NOT IN" if node.negated else "IN"
            items = ", ".join(self.expr(i) for i in node.items)
            return f"{self.expr(node.operand)} {keyword} ({items})"
        if isinstance(node, ast.InSubquery):
            keyword = "NOT IN" if node.negated else "IN"
            return (
                f"{self.expr(node.operand)} {keyword} "
                f"({self.query(node.subquery)})"
            )
        if isinstance(node, ast.Like):
            keyword = "NOT LIKE" if node.negated else "LIKE"
            text = f"{self.expr(node.operand)} {keyword} " \
                   f"{self.expr(node.pattern)}"
            if node.escape is not None:
                text += f" ESCAPE {self.expr(node.escape)}"
            return text
        if isinstance(node, ast.CaseExpr):
            return self.case(node)
        if isinstance(node, ast.Cast):
            return f"CAST({self.expr(node.operand)} AS {node.target_type})"
        if isinstance(node, ast.FunctionCall):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{node.name}({args})"
        if isinstance(node, ast.AggregateCall):
            if node.argument is None:
                return "COUNT(*)"
            prefix = "DISTINCT " if node.distinct else ""
            return f"{node.name}({prefix}{self.expr(node.argument)})"
        if isinstance(node, ast.ScalarSubquery):
            return f"({self.query(node.query)})"
        if isinstance(node, ast.Exists):
            keyword = "NOT EXISTS" if node.negated else "EXISTS"
            return f"{keyword} ({self.query(node.query)})"
        if isinstance(node, ast.NewObject):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"NEW {node.type_name}({args})"
        if isinstance(node, ast.AttributeRef):
            return f"{self.expr(node.target)}>>{node.attribute}"
        if isinstance(node, ast.MethodCall):
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{self.expr(node.target)}>>{node.method}({args})"
        raise errors.FeatureNotSupportedError(
            f"cannot render expression {type(node).__name__}"
        )

    def binary(self, node: ast.Binary) -> str:
        op = node.op
        if op == "||" and not self.dialect.allows_double_pipe_concat:
            if not self.dialect.plus_concatenates_strings:
                raise errors.CustomizationError(
                    f"dialect {self.dialect.name!r} has no string "
                    "concatenation operator"
                )
            op = "+"
        left = self._operand(node.left)
        right = self._operand(node.right)
        if op in ("AND", "OR"):
            return f"({left}) {op} ({right})"
        return f"{left} {op} {right}"

    def _operand(self, node: ast.Expression) -> str:
        """Render a binary operand, parenthesising compound expressions
        so operator precedence survives the round trip."""
        text = self.expr(node)
        if isinstance(node, (ast.Binary, ast.Unary, ast.CaseExpr)):
            return f"({text})"
        return text

    def case(self, node: ast.CaseExpr) -> str:
        parts = ["CASE"]
        if node.operand is not None:
            parts.append(self.expr(node.operand))
        for when in node.whens:
            parts.append(
                f"WHEN {self.expr(when.condition)} "
                f"THEN {self.expr(when.result)}"
            )
        if node.else_result is not None:
            parts.append(f"ELSE {self.expr(node.else_result)}")
        parts.append("END")
        return " ".join(parts)

    def literal(self, value) -> str:
        if value is None:
            return "NULL"
        if value is True:
            return "TRUE"
        if value is False:
            return "FALSE"
        if isinstance(value, str):
            escaped = value.replace("'", "''")
            return f"'{escaped}'"
        if isinstance(value, (int, float, Decimal)):
            return str(value)
        raise errors.FeatureNotSupportedError(
            f"cannot render literal of type {type(value).__name__}"
        )


def render_statement(
    node: ast.Statement, dialect: Dialect = STANDARD
) -> str:
    """Render a statement AST as SQL text in the given dialect."""
    return _Renderer(dialect).statement(node)


def render_expression(
    node: ast.Expression, dialect: Dialect = STANDARD
) -> str:
    """Render an expression AST as SQL text in the given dialect."""
    return _Renderer(dialect).expr(node)
