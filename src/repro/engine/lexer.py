"""SQL tokenizer.

Produces a stream of :class:`Token` objects for the recursive-descent
parser.  Notable dialect points from the paper:

* ``>>`` is a single operator token — SQLJ Part 2 uses it to reference
  fields and methods of host-language instances inside SQL, "avoiding
  ambiguities with SQL dot-qualified names".
* ``?`` is the dynamic parameter marker (JDBC style); the SQLJ translator
  rewrites ``:hostvar`` references into ``?`` before the engine sees them.
* String literals use single quotes with ``''`` escaping; delimited
  identifiers use double quotes.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro import errors

__all__ = ["Token", "Lexer", "tokenize", "KEYWORDS"]

#: Reserved and semi-reserved words recognised by the parser.  Kept as a
#: frozenset so membership checks in the hot tokenizer loop stay O(1).
KEYWORDS = frozenset(
    """
    ADD ALL ALTER AND AS ASC AVG BEGIN BETWEEN BY CALL CASCADE CASE
    CAST CHAR CHARACTER COLUMN COMMIT CONTAINS COUNT CREATE CROSS
    CURRENT_DATE
    CURRENT_TIME CURRENT_TIMESTAMP CURRENT_USER DATA DATATYPE DECIMAL
    DEFAULT DELETE DESC DISTINCT DROP DYNAMIC ELSE END ESCAPE EXECUTE
    EXCEPT EXISTS EXPLAIN EXTERNAL FALSE FETCH FIRST FROM FULL FUNCTION
    GRANT GROUP INTERSECT HAVING IN INNER INOUT INSERT INTEGER INTO IS JAVA JOIN KEY LANGUAGE
    LEFT LIKE LIMIT MAX METHOD MIN MODIFIES NAME NEW NEXT NO NOT NULL
    OFFSET ON
    ONLY OPTION OR ORDER ORDERING OUT OUTER PAR PARAMETER PRIMARY
    PROCEDURE PUBLIC PYTHON READS RELEASE RESTRICT RESULT RETURNS
    REVOKE RIGHT ROLLBACK ROW ROWS SAVEPOINT SELECT SET SETS SPECIFIC SQL STATIC STYLE SUM
    TABLE THEN TO TOP TRUE TYPE UNDER UNION UNIQUE UPDATE USAGE USING
    VALUES VARCHAR VIEW WHEN WHERE WITH
    """.split()
)

_MULTI_CHAR_OPS = (">>", "<>", "!=", ">=", "<=", "||")
_SINGLE_CHAR_OPS = "+-*/%(),.;=<>?:"


class Token:
    """One lexical token with its source position.

    ``pos`` is the absolute character offset of the token's first
    character; the parser uses it to recover original-case source text for
    case-sensitive fragments such as EXTERNAL NAME clauses.
    """

    __slots__ = ("kind", "value", "line", "column", "pos")

    #: kinds
    KEYWORD = "KEYWORD"
    IDENT = "IDENT"
    STRING = "STRING"
    NUMBER = "NUMBER"
    OP = "OP"
    EOF = "EOF"

    def __init__(
        self, kind: str, value: str, line: int, column: int, pos: int = -1
    ) -> None:
        self.kind = kind
        self.value = value
        self.line = line
        self.column = column
        self.pos = pos

    def matches(self, kind: str, value: Optional[str] = None) -> bool:
        """True if this token has the given kind (and value, if supplied)."""
        if self.kind != kind:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass tokenizer over SQL text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def _error(self, message: str) -> errors.SQLParseError:
        return errors.SQLParseError(message, self.line, self.column)

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text) and self.text[self.pos] == "\n":
                self.line += 1
                self.column = 1
            else:
                self.column += 1
            self.pos += 1

    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_whitespace_and_comments(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "-" and self._peek(1) == "-":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def tokens(self) -> Iterator[Token]:
        """Yield all tokens, ending with a single EOF token."""
        while True:
            self._skip_whitespace_and_comments()
            if self.pos >= len(self.text):
                yield Token(Token.EOF, "", self.line, self.column, self.pos)
                return
            yield self._next_token()

    def _next_token(self) -> Token:
        line, column, start_pos = self.line, self.column, self.pos
        ch = self._peek()

        if ch == "'":
            return self._string_literal(line, column, start_pos)
        if ch == '"':
            return self._delimited_identifier(line, column, start_pos)
        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._number(line, column, start_pos)
        if ch.isalpha() or ch == "_":
            return self._word(line, column, start_pos)

        two = self.text[self.pos: self.pos + 2]
        if two in _MULTI_CHAR_OPS:
            self._advance(2)
            return Token(Token.OP, two, line, column, start_pos)
        if ch in _SINGLE_CHAR_OPS:
            self._advance()
            return Token(Token.OP, ch, line, column, start_pos)
        raise self._error(f"unexpected character {ch!r}")

    def _string_literal(self, line: int, column: int, start_pos: int) -> Token:
        self._advance()  # opening quote
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated string literal")
            ch = self._peek()
            if ch == "'":
                if self._peek(1) == "'":
                    parts.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    return Token(
                        Token.STRING, "".join(parts), line, column, start_pos
                    )
            else:
                parts.append(ch)
                self._advance()

    def _delimited_identifier(self, line: int, column: int, start_pos: int) -> Token:
        self._advance()
        parts: List[str] = []
        while True:
            if self.pos >= len(self.text):
                raise self._error("unterminated delimited identifier")
            ch = self._peek()
            if ch == '"':
                if self._peek(1) == '"':
                    parts.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    if not parts:
                        raise self._error("empty delimited identifier")
                    # Delimited identifiers keep their exact case.
                    return Token(
                        Token.IDENT, "".join(parts), line, column, start_pos
                    )
            else:
                parts.append(ch)
                self._advance()

    def _number(self, line: int, column: int, start_pos: int) -> Token:
        start = self.pos
        seen_dot = False
        seen_exp = False
        while self.pos < len(self.text):
            ch = self._peek()
            if ch.isdigit():
                self._advance()
            elif ch == "." and not seen_dot and not seen_exp:
                seen_dot = True
                self._advance()
            elif ch in "eE" and not seen_exp and (
                self._peek(1).isdigit()
                or (self._peek(1) in "+-" and self._peek(2).isdigit())
            ):
                seen_exp = True
                self._advance(2 if self._peek(1) in "+-" else 1)
            else:
                break
        return Token(
            Token.NUMBER, self.text[start: self.pos], line, column, start_pos
        )

    def _word(self, line: int, column: int, start_pos: int) -> Token:
        start = self.pos
        while self.pos < len(self.text) and (
            self._peek().isalnum() or self._peek() == "_"
        ):
            self._advance()
        word = self.text[start: self.pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(Token.KEYWORD, upper, line, column, start_pos)
        # Regular identifiers fold to lower case (SQL is case-insensitive;
        # we normalise to lower rather than the standard's upper for
        # readability of catalog dumps).
        return Token(Token.IDENT, word.lower(), line, column, start_pos)


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text`` fully and return the token list (incl. EOF)."""
    return list(Lexer(text).tokens())
