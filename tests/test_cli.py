"""Tests for the ``psqlj`` command line."""

import os

import pytest

from repro.dbapi.driver import registry
from repro import Database
from repro.profiles.pjar import read_pjar
from repro.profiles.serialization import load_profile, profile_from_bytes
from repro.translator.cli import main

GOOD = "#sql { DELETE FROM people };\n"
BAD = "#sql { SELEKT 1 };\n"


@pytest.fixture
def exemplar_url():
    database = Database(name="cli_db")
    session = database.create_session(autocommit=True)
    session.execute("create table people (name varchar(50))")
    registry.register(database)
    return "pydbc:standard:cli_db"


def write(tmp_path, name, content):
    path = tmp_path / name
    path.write_text(content)
    return str(path)


class TestTranslateCommand:
    def test_translate_success(self, tmp_path, capsys):
        source = write(tmp_path, "app.psqlj", GOOD)
        status = main([source, "-d", str(tmp_path / "out")])
        captured = capsys.readouterr()
        assert status == 0
        assert "translated" in captured.out
        assert os.path.exists(tmp_path / "out" / "app.py")
        assert os.path.exists(
            tmp_path / "out" / "app_SJProfile0.ser"
        )

    def test_translate_failure_reports_messages(self, tmp_path, capsys):
        source = write(tmp_path, "bad.psqlj", BAD)
        status = main([source])
        captured = capsys.readouterr()
        assert status == 1
        assert "error" in captured.err
        assert "syntax" in captured.err.lower()

    def test_package_flag(self, tmp_path):
        source = write(tmp_path, "app.psqlj", GOOD)
        status = main(
            [source, "-d", str(tmp_path / "out"), "--package"]
        )
        assert status == 0
        pjar = str(tmp_path / "out" / "app.pjar")
        assert set(read_pjar(pjar)) == {"app.py", "app_SJProfile0.ser"}

    def test_exemplar_checking(self, tmp_path, capsys, exemplar_url):
        good = write(
            tmp_path, "ok.psqlj", "#sql { DELETE FROM people };\n"
        )
        assert main([good, "--exemplar", exemplar_url,
                     "-d", str(tmp_path)]) == 0
        bad = write(
            tmp_path, "semantic.psqlj", "#sql { DELETE FROM ghosts };\n"
        )
        assert main([bad, "--exemplar", exemplar_url,
                     "-d", str(tmp_path)]) == 1
        assert "ghosts" in capsys.readouterr().err

    def test_multiple_inputs(self, tmp_path):
        first = write(tmp_path, "one.psqlj", GOOD)
        second = write(tmp_path, "two.psqlj", GOOD)
        assert main([first, second, "-d", str(tmp_path / "out")]) == 0
        assert os.path.exists(tmp_path / "out" / "one.py")
        assert os.path.exists(tmp_path / "out" / "two.py")

    def test_partial_failure_status(self, tmp_path):
        good = write(tmp_path, "one.psqlj", GOOD)
        bad = write(tmp_path, "two.psqlj", BAD)
        assert main([good, bad, "-d", str(tmp_path / "out")]) == 1


class TestCustomizeCommand:
    def test_customize_ser_file(self, tmp_path, capsys):
        source = write(tmp_path, "app.psqlj", GOOD)
        main([source, "-d", str(tmp_path)])
        ser = str(tmp_path / "app_SJProfile0.ser")
        status = main(["--customize", "acme,zenith", ser])
        assert status == 0
        profile = load_profile(ser)
        assert {c.dialect_name for c in profile.customizations} == \
            {"acme", "zenith"}

    def test_customize_pjar(self, tmp_path):
        source = write(tmp_path, "app.psqlj", GOOD)
        main([source, "-d", str(tmp_path), "--package"])
        pjar = str(tmp_path / "app.pjar")
        assert main(["--customize", "acme", pjar]) == 0
        profile = profile_from_bytes(
            read_pjar(pjar)["app_SJProfile0.ser"]
        )
        assert profile.customizations[0].dialect_name == "acme"

    def test_customize_unknown_dialect(self, tmp_path, capsys):
        source = write(tmp_path, "app.psqlj", GOOD)
        main([source, "-d", str(tmp_path)])
        ser = str(tmp_path / "app_SJProfile0.ser")
        assert main(["--customize", "oracle", ser]) == 1
        assert "error" in capsys.readouterr().err


class TestShowCommand:
    def test_show_ser(self, tmp_path, capsys):
        source = write(
            tmp_path, "app.psqlj",
            "def f(x):\n"
            "    #sql { CALL p(:OUT a, :IN x) };\n"
            "    pass\n",
        )
        main([source, "-d", str(tmp_path)])
        capsys.readouterr()
        status = main(
            ["--show", str(tmp_path / "app_SJProfile0.ser")]
        )
        captured = capsys.readouterr()
        assert status == 0
        assert "CALL p(?, ?)" in captured.out
        assert "param :a [OUT]" in captured.out
        assert "param :x" in captured.out

    def test_show_pjar_with_customizations(self, tmp_path, capsys):
        source = write(tmp_path, "app.psqlj", GOOD)
        main([source, "-d", str(tmp_path), "--package"])
        pjar = str(tmp_path / "app.pjar")
        main(["--customize", "acme", pjar])
        capsys.readouterr()
        assert main(["--show", pjar]) == 0
        captured = capsys.readouterr()
        assert "DELETE FROM people" in captured.out
        assert "acme" in captured.out

    def test_show_missing_file(self, tmp_path, capsys):
        assert main(["--show", str(tmp_path / "ghost.ser")]) == 1
        assert "error" in capsys.readouterr().err
